//! Regenerates **Table I** — used hardware experimental setup: SM counts,
//! driver versions, memory frequency, and SM frequency range/steps for the
//! three simulated GPUs.

use latest_gpu_sim::devices;
use latest_report::TextTable;

fn main() {
    let specs = devices::paper_devices();
    let mut t = TextTable::with_header(&[
        "Model",
        "Architecture",
        "SM [#]",
        "Driver version",
        "Mem freq. [MHz]",
        "Max SM freq [MHz]",
        "Nom SM freq [MHz]",
        "Min SM freq [MHz]",
        "SM freq steps [#]",
    ]);
    for s in &specs {
        t.row(&[
            s.name.clone(),
            s.architecture.to_string(),
            s.sm_count.to_string(),
            s.driver_version.to_string(),
            s.mem_freq_mhz.to_string(),
            s.ladder.max().to_string(),
            s.nominal_mhz.to_string(),
            s.ladder.min().to_string(),
            s.ladder.len().to_string(),
        ]);
    }
    println!("TABLE I: Used hardware experimental setup (simulated devices)\n");
    println!("{}", t.render());
    println!(
        "Paper reference: RTX Quadro 6000 (72 SM, 300-2100 MHz, 120 steps), \
         A100 SXM-4 (108 SM, 210-1410 MHz, 81 steps), GH200 (132 SM, 345-1980 MHz, 110 steps)."
    );
}
