//! Ablation: what is switching-latency knowledge *worth* to a DVFS runtime
//! system? (the paper's Sec. I / Sec. VIII motivation, quantified).
//!
//! Measures a latency table on each simulated GPU, then runs four governor
//! policies over three phase-structured workloads and reports energy saving
//! and runtime extension against the run-at-max baseline. The claim under
//! test: the latency-aware governor retains (almost) all of the oblivious
//! governor's savings on amortisable workloads, and avoids its runtime blow-
//! up on hostile ones — and the gap widens on GPUs with slow transitions.

use bench_support::repro_config;
use latest_core::Latest;
use latest_governor::simulate::TransitionReplay;
use latest_governor::{
    simulate_policy, GovernorPolicy, GovernorReport, LatencyAware, LatencyOblivious, LatencyTable,
    PowerModel, RunAtMax, StaticOracle, TraceGenerator,
};
use latest_gpu_sim::devices;
use latest_report::TextTable;

fn report_row(t: &mut TextTable, r: &GovernorReport, baseline: &GovernorReport) {
    t.row(&[
        r.policy.clone(),
        format!("{:.0}", r.runtime_ms),
        format!("{:.0}", r.energy_j),
        r.switches.to_string(),
        format!("{:.1}", 100.0 * r.energy_saving_vs(baseline)),
        format!("{:+.1}", 100.0 * r.runtime_extension_vs(baseline)),
        format!("{:.0}", r.edp()),
    ]);
}

fn main() {
    let sweeps = [
        (devices::a100_sxm4(), 0xAB_01u64),
        (devices::gh200(), 0xAB_02),
        (devices::rtx_quadro_6000(), 0xAB_03),
    ];

    for (spec, seed) in sweeps {
        let name = spec.name.clone();
        let (f_min, f_max) = (spec.ladder.min(), spec.ladder.max());
        let result = Latest::new(repro_config(spec, 8, seed))
            .run()
            .expect("campaign");
        let table = LatencyTable::from_campaign(&result);
        println!(
            "\n=== {name}: table of {} pairs, typical {:.1} ms, {} pathological ===",
            table.len(),
            table.typical_ms().unwrap_or(f64::NAN),
            table.avoid_list(5.0).len()
        );

        let power = PowerModel::sxm_class(f_max);
        let candidates = table.known_targets();
        let mut generator = TraceGenerator::new(seed ^ 0xFEED);
        let traces = [
            generator.llm_training(10, 800.0),
            generator.iterative_solver(30, 120.0),
            generator.streaming_bursts(60, 20.0),
        ];

        for trace in &traces {
            let baseline = {
                let mut replay = TransitionReplay::new(table.clone(), 1);
                simulate_policy(&RunAtMax { f_max }, trace, &power, &mut replay, f_max)
            };
            let oracle = StaticOracle::plan(trace, &candidates, f_max, &power, 0.05);
            let policies: Vec<Box<dyn GovernorPolicy>> = vec![
                Box::new(RunAtMax { f_max }),
                Box::new(oracle),
                Box::new(LatencyOblivious { f_min, f_max }),
                Box::new(LatencyAware::new(table.clone(), f_min, f_max)),
            ];
            println!("\n{}:", trace.name);
            let mut t = TextTable::with_header(&[
                "policy",
                "runtime[ms]",
                "energy[J]",
                "switches",
                "saving[%]",
                "slower[%]",
                "EDP[J*s]",
            ]);
            for policy in &policies {
                let mut replay = TransitionReplay::new(table.clone(), 1);
                let r = simulate_policy(policy.as_ref(), trace, &power, &mut replay, f_max);
                report_row(&mut t, &r, &baseline);
            }
            println!("{}", t.render());
        }
    }

    println!("\nreading: on hostile (short-phase) workloads the oblivious governor's runtime");
    println!("extension grows with the GPU's switching latency, while the aware governor");
    println!("suppresses non-amortisable switches and keeps the extension bounded.");
}
