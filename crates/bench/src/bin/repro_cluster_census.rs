//! Regenerates the **Sec. VII-B cluster statistics**: the fraction of
//! frequency pairs whose latency measurements form a single cluster
//! (paper: GH200 85 %, A100 96 %, RTX Quadro 6000 70 %; only GH200 shows
//! more than two clusters — up to five), and the silhouette validation
//! (always > 0.4 for multi-cluster pairs, average 0.84 over all GPUs).

use bench_support::repro_config;
use latest_core::{CampaignConfig, Latest};
use latest_gpu_sim::devices;
use latest_report::TextTable;

struct Census {
    device: String,
    single: usize,
    multi: usize,
    max_clusters: usize,
    silhouettes: Vec<f64>,
}

fn census(spec: latest_gpu_sim::devices::DeviceSpec, n_freqs: usize, seed: u64) -> Census {
    let device = spec.name.clone();
    // The paper's census rests on "several hundreds of switching latency
    // measurements" per pair; sparse samples fragment DBSCAN clusters, so
    // this binary raises the per-pair measurement count above the default
    // repro scale (and ignores the RSE early stop via min = max).
    let config = CampaignConfig {
        min_measurements: 160,
        max_measurements: 160,
        ..repro_config(spec, n_freqs, seed)
    };
    let result = Latest::new(config).run().expect("sweep");
    let mut c = Census {
        device,
        single: 0,
        multi: 0,
        max_clusters: 0,
        silhouettes: Vec::new(),
    };
    for p in result.completed() {
        let Some(a) = &p.analysis else { continue };
        if a.n_clusters <= 1 {
            c.single += 1;
        } else {
            c.multi += 1;
            if let Some(s) = a.silhouette {
                c.silhouettes.push(s);
            }
        }
        c.max_clusters = c.max_clusters.max(a.n_clusters);
    }
    c
}

fn main() {
    println!("Sec. VII-B: cluster census over all measured frequency pairs\n");
    let censuses = [
        census(devices::gh200(), 18, 0xCE_05A),
        census(devices::a100_sxm4(), 18, 0xCE_05B),
        census(devices::rtx_quadro_6000(), 14, 0xCE_05C),
    ];

    let mut t = TextTable::with_header(&[
        "Device",
        "single-cluster [%]",
        "paper [%]",
        "max clusters",
        "min silhouette",
    ]);
    let paper_pct = ["85", "96", "70"];
    let mut all_sil: Vec<f64> = Vec::new();
    for (c, paper) in censuses.iter().zip(paper_pct) {
        let total = (c.single + c.multi).max(1);
        let pct = 100.0 * c.single as f64 / total as f64;
        let min_sil = c.silhouettes.iter().cloned().fold(f64::INFINITY, f64::min);
        all_sil.extend(&c.silhouettes);
        t.row(&[
            c.device.clone(),
            format!("{pct:.0}"),
            paper.to_string(),
            c.max_clusters.to_string(),
            if c.silhouettes.is_empty() {
                "n/a".to_string()
            } else {
                format!("{min_sil:.2}")
            },
        ]);
    }
    println!("{}", t.render());

    let avg_sil = if all_sil.is_empty() {
        f64::NAN
    } else {
        all_sil.iter().sum::<f64>() / all_sil.len() as f64
    };
    println!("average silhouette over multi-cluster pairs: {avg_sil:.2} (paper: 0.84)");
    let min_sil = all_sil.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "minimum silhouette: {min_sil:.2} — {}",
        if min_sil > 0.4 {
            "above the paper's 0.4 floor"
        } else {
            "BELOW the paper's 0.4 floor"
        }
    );
    println!(
        "\nShape checks: A100 most single-cluster, Quadro least; only GH200-style\n\
         slow bands produce >2 clusters (paper reports up to five)."
    );
}
