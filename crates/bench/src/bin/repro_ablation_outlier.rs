//! **Ablation 3 (Sec. V-C)** — outlier filtering strategies on
//! switching-latency datasets: the paper's adaptive DBSCAN (Algorithm 3)
//! versus a fixed-parameter DBSCAN and classic 3σ trimming.
//!
//! Datasets are synthesised with *known* outlier labels: a main latency
//! cluster (possibly multi-modal, as on GH200) plus a few percent of
//! driver-stall outliers. A good filter removes the stalls without eating
//! legitimate secondary clusters; 3σ trimming fails exactly there.

use latest_cluster::{adaptive_outlier_filter, AdaptiveConfig, Dbscan};
use latest_report::TextTable;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// (data, is_outlier ground truth)
fn synth(multi_modal: bool, n: usize, outlier_frac: f64, seed: u64) -> (Vec<f64>, Vec<bool>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.gen::<f64>() < outlier_frac {
            // Driver stall: far tail.
            data.push(400.0 + rng.gen::<f64>() * 300.0);
            truth.push(true);
        } else if multi_modal && rng.gen::<f64>() < 0.3 {
            // Legitimate secondary latency cluster (GH200-style).
            data.push(120.0 + rng.gen::<f64>() * 4.0);
            truth.push(false);
        } else {
            data.push(15.0 + rng.gen::<f64>() * 2.0);
            truth.push(false);
        }
    }
    (data, truth)
}

/// (false positives = good data flagged, false negatives = stalls kept)
fn score(flagged: &[bool], truth: &[bool]) -> (usize, usize) {
    let fp = flagged
        .iter()
        .zip(truth)
        .filter(|(f, t)| **f && !**t)
        .count();
    let fnn = flagged
        .iter()
        .zip(truth)
        .filter(|(f, t)| !**f && **t)
        .count();
    (fp, fnn)
}

fn three_sigma_flags(data: &[f64]) -> Vec<bool> {
    let s = latest_stats::Summary::of(data);
    data.iter()
        .map(|&x| (x - s.mean).abs() > 3.0 * s.stdev)
        .collect()
}

fn main() {
    println!("ABLATION: outlier filtering (adaptive DBSCAN vs fixed DBSCAN vs 3-sigma)\n");
    let mut t = TextTable::with_header(&["dataset", "filter", "false pos", "false neg"]);

    for (name, multi) in [
        ("unimodal (A100-like)", false),
        ("bimodal (GH200-like)", true),
    ] {
        let (data, truth) = synth(multi, 300, 0.03, 0x071);
        // Adaptive DBSCAN (Alg. 3).
        if let Some(out) = adaptive_outlier_filter(&data, &AdaptiveConfig::default()) {
            let flags: Vec<bool> = out.labeling.labels.iter().map(|l| l.is_noise()).collect();
            let (fp, fnn) = score(&flags, &truth);
            t.row(&[
                name.into(),
                "adaptive DBSCAN (Alg. 3)".into(),
                fp.to_string(),
                fnn.to_string(),
            ]);
        }
        // Fixed DBSCAN with a deliberately generic parameterisation.
        let fixed = Dbscan::new(1.0, 12).fit_1d(&data);
        let flags: Vec<bool> = fixed.labels.iter().map(|l| l.is_noise()).collect();
        let (fp, fnn) = score(&flags, &truth);
        t.row(&[
            name.into(),
            "fixed DBSCAN (eps=1, minPts=12)".into(),
            fp.to_string(),
            fnn.to_string(),
        ]);
        // 3-sigma trimming.
        let (fp, fnn) = score(&three_sigma_flags(&data), &truth);
        t.row(&[
            name.into(),
            "3-sigma trim".into(),
            fp.to_string(),
            fnn.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: adaptive DBSCAN keeps both legitimate clusters while\n\
         flagging stalls; 3-sigma trimming either keeps stalls (inflated sigma)\n\
         or eats the secondary cluster; fixed DBSCAN depends on luck of the\n\
         parameterisation — the reason Algorithm 3 adapts them per dataset."
    );
}
