//! Regenerates **Fig. 5 and Fig. 6** — scatter plots of repeated
//! switching-latency measurements for two GH200 pairs:
//!
//! * Fig. 5: 1770 → 1260 MHz — multiple distinct latency clusters,
//! * Fig. 6: 1305 → 1845 MHz — one large cluster with scattered outliers.
//!
//! Both are validated with the silhouette score (paper: always > 0.4 when
//! 2+ clusters, average 0.84 over all GPUs).

use latest_cluster::{adaptive_outlier_filter, silhouette_score_1d, AdaptiveConfig};
use latest_core::{CampaignConfig, Latest};
use latest_gpu_sim::devices;
use latest_report::render_scatter;

fn measure_pair(init: u32, target: u32, seed: u64) -> Vec<f64> {
    let config = CampaignConfig::builder(devices::gh200())
        .frequencies_mhz(&[init, target])
        .measurements(220, 260)
        .rse_threshold(1e-9) // force a fixed-size dataset like the paper's
        .simulated_sms(Some(4))
        .seed(seed)
        .build();
    let result = Latest::new(config).run().expect("pair campaign");
    result
        .pairs()
        .iter()
        .find(|p| p.init_mhz() == init && p.target_mhz() == target)
        .and_then(|p| p.latencies_ms().map(<[f64]>::to_vec))
        .expect("pair measured")
}

fn show(title: &str, data: &[f64]) {
    let outcome = adaptive_outlier_filter(data, &AdaptiveConfig::default());
    let labeling = outcome.as_ref().map(|o| &o.labeling);
    println!("{}", render_scatter(title, data, labeling, 24, 72));
    if let Some(o) = &outcome {
        let sil = silhouette_score_1d(data, &o.labeling);
        println!(
            "  clusters: {}   outliers: {} / {}   silhouette: {}",
            o.labeling.n_clusters,
            o.labeling.noise_count(),
            data.len(),
            sil.map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "n/a (single cluster)".into()),
        );
        if let Some(s) = sil {
            println!(
                "  shape: silhouette {} 0.4 (paper: always above 0.4 for multi-cluster pairs)",
                if s > 0.4 { ">" } else { "<= !!" }
            );
        }
    }
    println!();
}

fn main() {
    println!("FIG. 5 / FIG. 6: per-pair switching-latency scatter (GH200)\n");

    // Fig. 5: into the slow 1260 MHz band -> multi-cluster.
    let fig5 = measure_pair(1770, 1260, 0xF165);
    show("FIG. 5: 1770 -> 1260 MHz (expect multiple clusters)", &fig5);

    // Fig. 6: a baseline pair -> one cluster + stray outliers.
    let fig6 = measure_pair(1305, 1845, 0xF166);
    show(
        "FIG. 6: 1305 -> 1845 MHz (expect one dominant cluster)",
        &fig6,
    );
}
