//! Shared support for the paper-artefact regeneration binaries and the
//! Criterion benchmarks.
//!
//! Every `repro_*` binary re-creates one table or figure of the paper. They
//! share the sweep driver here: a campaign configuration scaled so a full
//! heatmap regenerates in seconds of wall-clock time (virtual time is free;
//! the knobs traded down from the paper's tool are the measurement counts
//! and the number of simulated SM record streams, both documented in
//! DESIGN.md §4).

use latest_core::view::{LatencyView, PairStat, PairView};
use latest_core::{CampaignConfig, CampaignResult, Latest, PairMeasurement};
use latest_gpu_sim::devices::DeviceSpec;
use latest_report::{DirectionSplit, Heatmap};

/// The standard repro-scale campaign: `n_freqs` evenly spaced ladder
/// frequencies, 25–60 measurements per pair at 5 % RSE, 6 simulated SM
/// streams.
pub fn repro_config(spec: DeviceSpec, n_freqs: usize, seed: u64) -> CampaignConfig {
    CampaignConfig::builder(spec)
        .frequency_subset(n_freqs)
        .seed(seed)
        .measurements(25, 60)
        .simulated_sms(Some(6))
        .build()
}

/// Run a full campaign (phase 1, probe, all ordered pairs).
pub fn run_sweep(spec: DeviceSpec, n_freqs: usize, seed: u64) -> CampaignResult {
    Latest::new(repro_config(spec, n_freqs, seed))
        .run()
        .expect("repro campaign")
}

/// Declarative equivalent of [`repro_config`]: the same campaign described
/// by registry device name, resolving to a bitwise-identical run (the
/// spec's `to_json()` is a ready-made `latest run` scenario file).
pub fn repro_spec(device: &str, n_freqs: usize, seed: u64) -> latest_core::spec::CampaignSpec {
    latest_core::spec::CampaignSpec::builder(device)
        .frequency_subset(n_freqs)
        .seed(seed)
        .measurements(25, 60)
        .simulated_sms(Some(6))
        .build()
        .expect("repro spec is valid")
}

/// Which per-pair statistic feeds a heatmap cell. Alias of the core query
/// layer's [`PairStat`], kept under the historical name the `repro_*`
/// binaries use.
pub type CellStat = PairStat;

/// Extract the requested statistic from one pair (post-outlier-filter).
pub fn pair_stat(p: &PairMeasurement, stat: CellStat) -> Option<f64> {
    PairView::new(p).stat(stat)
}

/// Build the paper-layout heatmap (initial frequency in rows, target in
/// columns) from a campaign.
pub fn campaign_heatmap(result: &CampaignResult, freqs_mhz: &[u32], stat: CellStat) -> Heatmap {
    Heatmap::from_view(&LatencyView::of(result).completed(), freqs_mhz, stat)
}

/// Pool a campaign's filtered latencies by transition direction (Fig. 4).
pub fn direction_split(result: &CampaignResult) -> DirectionSplit {
    DirectionSplit::from_view(&LatencyView::of(result).completed())
}

/// The frequency list of a repro config, as u32 MHz.
pub fn freqs_mhz(config: &CampaignConfig) -> Vec<u32> {
    config.frequencies.iter().map(|f| f.0).collect()
}

/// Worst-case / best-case summary rows for Table II.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Device name.
    pub device: String,
    /// min / mean / max of the per-pair statistic, plus argmin/argmax pairs.
    pub min: (f64, u32, u32),
    /// Mean over pairs.
    pub mean: f64,
    /// Max over pairs with its pair.
    pub max: (f64, u32, u32),
}

/// Summarise one campaign into a Table II row for the given statistic.
pub fn table2_row(result: &CampaignResult, stat: CellStat) -> Option<Table2Row> {
    let view = LatencyView::of(result).completed();
    let min = view.stat_extreme(stat, false)?;
    let max = view.stat_extreme(stat, true)?;
    let (_, mean, _) = view.stat_range(stat)?;
    Some(Table2Row {
        device: result.device_name.clone(),
        min,
        mean,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn tiny_sweep() -> (CampaignResult, Vec<u32>) {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(7),
        });
        let config = CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .measurements(8, 12)
            .seed(2)
            .simulated_sms(Some(2))
            .build();
        let freqs = freqs_mhz(&config);
        (Latest::new(config).run().unwrap(), freqs)
    }

    #[test]
    fn heatmap_has_blank_diagonal_and_filled_cells() {
        let (result, freqs) = tiny_sweep();
        let hm = campaign_heatmap(&result, &freqs, CellStat::Max);
        assert_eq!(hm.get(0, 0), None);
        assert!(hm.get(0, 1).is_some());
        assert!(hm.get(1, 0).is_some());
        // Fixed 7 ms device: all cells near 7 ms.
        for (_, _, v) in hm.iter_cells() {
            assert!((6.8..10.0).contains(&v), "cell {v}");
        }
    }

    #[test]
    fn table2_row_min_le_mean_le_max() {
        let (result, _) = tiny_sweep();
        let row = table2_row(&result, CellStat::Max).unwrap();
        assert!(row.min.0 <= row.mean && row.mean <= row.max.0);
        assert!(row.device.contains("A100"));
    }

    #[test]
    fn direction_split_covers_both_directions() {
        let (result, _) = tiny_sweep();
        let split = direction_split(&result);
        assert!(!split.increasing.is_empty());
        assert!(!split.decreasing.is_empty());
    }
}
