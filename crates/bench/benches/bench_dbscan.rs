//! Criterion benchmarks for the clustering stage: DBSCAN and the adaptive
//! outlier filter run once per frequency pair over a few hundred latencies,
//! and over every pair of a sweep in the analysis stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latest_cluster::{adaptive_outlier_filter, AdaptiveConfig, Dbscan};
use std::hint::black_box;

/// Latency-like dataset: dominant cluster, secondary mode, rare outliers.
fn latency_dataset(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) % 1000;
            if h < 20 {
                250.0 + h as f64
            } else if h < 300 {
                21.0 + (h % 50) as f64 * 0.02
            } else {
                15.0 + (h % 100) as f64 * 0.01
            }
        })
        .collect()
}

fn bench_dbscan_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("dbscan_fit_1d");
    for n in [250usize, 1_000, 10_000] {
        let data = latency_dataset(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| black_box(Dbscan::new(1.0, 8).fit_1d(black_box(data))))
        });
    }
    g.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive_outlier_filter");
    for n in [250usize, 1_000] {
        let data = latency_dataset(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                black_box(adaptive_outlier_filter(
                    black_box(data),
                    &AdaptiveConfig::default(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_silhouette(c: &mut Criterion) {
    let data = latency_dataset(1_000);
    let labeling = Dbscan::new(1.0, 8).fit_1d(&data);
    c.bench_function("silhouette_1000", |b| {
        b.iter(|| {
            black_box(latest_cluster::silhouette_score_1d(
                black_box(&data),
                &labeling,
            ))
        })
    });
}

criterion_group!(benches, bench_dbscan_fit, bench_adaptive, bench_silhouette);
criterion_main!(benches);
