//! Criterion benchmark for the IEEE 1588 synchroniser (one run per
//! measurement pass, so it sits on the campaign's critical path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latest_clock_sync::{synchronize, SyncConfig, TimestampProbe};
use latest_sim_clock::{ClockView, SharedClock, SimDuration, SimTime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

struct BenchProbe {
    clock: SharedClock,
    device: ClockView,
    rng: ChaCha8Rng,
}

impl TimestampProbe for BenchProbe {
    fn exchange(&mut self) -> (SimTime, SimTime, SimTime) {
        let before = self.clock.now();
        let out: f64 = self.rng.gen_range(6.0..20.0);
        let at = self
            .clock
            .advance(SimDuration::from_nanos((out * 1e3) as u64));
        let stamp = self.device.project(at);
        let back: f64 = self.rng.gen_range(4.0..15.0);
        let after = self
            .clock
            .advance(SimDuration::from_nanos((back * 1e3) as u64));
        (before, stamp, after)
    }
}

fn bench_sync_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("ptp_synchronize");
    for rounds in [16usize, 64, 256] {
        g.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let clock = SharedClock::new();
                    let mut probe = BenchProbe {
                        device: ClockView::skewed(
                            clock.clone(),
                            7_340_000,
                            2.5,
                            SimDuration::from_micros(1),
                        ),
                        clock,
                        rng: ChaCha8Rng::seed_from_u64(3),
                    };
                    let cfg = SyncConfig {
                        rounds,
                        keep_best: 4,
                        ..Default::default()
                    };
                    black_box(synchronize(&mut probe, &cfg))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sync_rounds);
criterion_main!(benches);
