//! Criterion benchmark for phase 1: per-frequency characterisation cost
//! (settle + final kernel + robust statistics), the fixed overhead every
//! campaign pays once per benchmarked frequency.

use criterion::{criterion_group, criterion_main, Criterion};
use latest_core::phase1::characterize_frequency;
use latest_core::{CampaignConfig, SimPlatform};
use latest_gpu_sim::devices;
use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::transition::FixedTransition;
use latest_sim_clock::SimDuration;
use std::hint::black_box;
use std::sync::Arc;

fn bench_characterize(c: &mut Criterion) {
    let mut spec = devices::a100_sxm4();
    spec.transition = Arc::new(FixedTransition {
        latency: SimDuration::from_millis(10),
    });
    let config = CampaignConfig::builder(spec)
        .frequencies_mhz(&[705, 1410])
        .simulated_sms(Some(4))
        .seed(7)
        .build();

    let mut g = c.benchmark_group("phase1_characterize");
    g.sample_size(10);
    g.bench_function("one_frequency_a100", |b| {
        b.iter(|| {
            let mut platform = SimPlatform::new(config.spec.clone(), 7).unwrap();
            black_box(characterize_frequency(&mut platform, &config, FreqMhz(1095)).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
