//! Criterion micro-benchmarks for the statistics kernel: the hypothesis
//! tests and streaming accumulators run once per iteration record and once
//! per pass, so their throughput bounds the evaluation phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latest_stats::{diff_confidence_interval, welch_t_test, RunningStats, Summary};
use std::hint::black_box;

fn synth(n: usize, offset: f64) -> Vec<f64> {
    (0..n)
        .map(|i| offset + ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 500.0)
        .collect()
}

fn bench_running_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("running_stats_push");
    for n in [1_000usize, 100_000] {
        let data = synth(n, 100.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut s = RunningStats::new();
                for &x in data {
                    s.push(black_box(x));
                }
                black_box(s.summary())
            })
        });
    }
    g.finish();
}

fn bench_welch(c: &mut Criterion) {
    let a = Summary::of(&synth(10_000, 100.0));
    let b2 = Summary::of(&synth(10_000, 101.0));
    c.bench_function("welch_t_test", |b| {
        b.iter(|| black_box(welch_t_test(black_box(&a), black_box(&b2), 0.05)))
    });
    c.bench_function("diff_confidence_interval", |b| {
        b.iter(|| {
            black_box(diff_confidence_interval(
                black_box(&a),
                black_box(&b2),
                0.95,
            ))
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    // Pooling per-SM statistics: 132 SM merge (GH200-scale).
    let parts: Vec<RunningStats> = (0..132)
        .map(|i| RunningStats::from_slice(&synth(1_000, 100.0 + i as f64)))
        .collect();
    c.bench_function("pool_132_sm_stats", |b| {
        b.iter(|| {
            let mut pooled = RunningStats::new();
            for p in &parts {
                pooled.merge(black_box(p));
            }
            black_box(pooled.summary())
        })
    });
}

criterion_group!(benches, bench_running_stats, bench_welch, bench_merge);
criterion_main!(benches);
