//! Criterion benchmark for the end-to-end per-pair pipeline: controller
//! loop (phases 2-3 with the RSE stopping rule) plus the Algorithm-3
//! analysis — what each of the hundreds of heatmap cells costs.

use criterion::{criterion_group, criterion_main, Criterion};
use latest_cluster::AdaptiveConfig;
use latest_core::analysis::analyze_pair;
use latest_core::controller::run_pair;
use latest_core::phase1::run_phase1;
use latest_core::{CampaignConfig, SimPlatform};
use latest_gpu_sim::devices;
use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::transition::FixedTransition;
use latest_sim_clock::SimDuration;
use std::hint::black_box;
use std::sync::Arc;

fn bench_pair_pipeline(c: &mut Criterion) {
    let mut spec = devices::a100_sxm4();
    spec.transition = Arc::new(FixedTransition {
        latency: SimDuration::from_millis(8),
    });
    let config = CampaignConfig::builder(spec)
        .frequencies_mhz(&[705, 1410])
        .measurements(10, 15)
        .simulated_sms(Some(4))
        .seed(11)
        .build();
    let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
    let p1 = run_phase1(&mut platform, &config).unwrap();

    let mut g = c.benchmark_group("pair_pipeline");
    g.sample_size(10);
    g.bench_function("controller_plus_analysis_10meas", |b| {
        b.iter(|| {
            let outcome = run_pair(
                &mut platform,
                &config,
                &p1,
                FreqMhz(1410),
                FreqMhz(705),
                15.0,
            )
            .unwrap();
            let run = outcome.run().expect("completed");
            black_box(analyze_pair(&run.latencies_ms, &AdaptiveConfig::default()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pair_pipeline);
criterion_main!(benches);
