//! Criterion benchmarks for the simulator substrate: iteration integration
//! throughput is *the* cost driver of a campaign (hundreds of millions of
//! `advance_cycles` calls per full heatmap sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use latest_gpu_sim::sm::{run_sm, WorkloadParams};
use latest_gpu_sim::trajectory::FreqTrajectory;
use latest_sim_clock::{ClockView, SharedClock, SimDuration, SimTime};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn busy_trajectory() -> FreqTrajectory {
    // A realistic phase-2 shape: init clock, pending, four ramp steps, target.
    let mut t = FreqTrajectory::flat(1410.0);
    t.push(SimTime::from_millis(20), 1300.0);
    t.push(SimTime::from_millis(21), 1150.0);
    t.push(SimTime::from_millis(22), 950.0);
    t.push(SimTime::from_millis(23), 800.0);
    t.push(SimTime::from_millis(24), 705.0);
    t
}

fn bench_sm_engine(c: &mut Criterion) {
    let traj = busy_trajectory();
    let timer = ClockView::skewed(
        SharedClock::new(),
        7_340_000,
        2.5,
        SimDuration::from_micros(1),
    );
    let params = WorkloadParams::default_micro();
    let mut g = c.benchmark_group("sm_iterations");
    for n in [1_000u32, 10_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                black_box(run_sm(
                    black_box(&traj),
                    SimTime::EPOCH,
                    n,
                    &params,
                    &timer,
                    &mut rng,
                    None,
                ))
            })
        });
    }
    g.finish();
}

fn bench_trajectory_ops(c: &mut Criterion) {
    let traj = busy_trajectory();
    c.bench_function("advance_cycles_cold", |b| {
        b.iter(|| black_box(traj.advance_cycles(SimTime::from_millis(19), black_box(1e6))))
    });
    c.bench_function("cycles_between", |b| {
        b.iter(|| {
            black_box(traj.cycles_between(SimTime::from_millis(19), SimTime::from_millis(26)))
        })
    });
}

criterion_group!(benches, bench_sm_engine, bench_trajectory_ops);
criterion_main!(benches);
