//! Criterion benchmark for one full phase-2 + phase-3 measurement pass —
//! the unit of work repeated tens of times per frequency pair.

use criterion::{criterion_group, criterion_main, Criterion};
use latest_core::phase1::run_phase1;
use latest_core::phase2::run_phase2;
use latest_core::phase3::evaluate_pass;
use latest_core::{CampaignConfig, SimPlatform};
use latest_gpu_sim::devices;
use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::transition::FixedTransition;
use latest_sim_clock::SimDuration;
use std::hint::black_box;
use std::sync::Arc;

fn bench_one_pass(c: &mut Criterion) {
    let mut spec = devices::a100_sxm4();
    spec.transition = Arc::new(FixedTransition {
        latency: SimDuration::from_millis(10),
    });
    let config = CampaignConfig::builder(spec)
        .frequencies_mhz(&[705, 1410])
        .simulated_sms(Some(4))
        .seed(9)
        .build();
    let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
    let p1 = run_phase1(&mut platform, &config).unwrap();
    let init_stats = p1.of(FreqMhz(1410)).unwrap().iter_ns;
    let target_stats = p1.of(FreqMhz(705)).unwrap().iter_ns;

    let mut g = c.benchmark_group("switch_measurement");
    g.sample_size(20);
    g.bench_function("phase2_phase3_single_pass", |b| {
        b.iter(|| {
            let cap = run_phase2(
                &mut platform,
                &config,
                FreqMhz(1410),
                FreqMhz(705),
                &init_stats,
                15.0,
            )
            .unwrap();
            black_box(evaluate_pass(&cap, &target_stats, &config))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_one_pass);
criterion_main!(benches);
