//! Property-based tests for the reporting layer: five-number summaries,
//! heatmap aggregation, violin densities and table rendering.

use latest_report::{BoxStats, Heatmap, TextTable, ViolinSummary};
use proptest::prelude::*;

fn samples(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0e4f64, min_len..200)
}

proptest! {
    // --- boxplot ----------------------------------------------------------------

    #[test]
    fn five_number_summary_is_ordered(xs in samples(1)) {
        let b = BoxStats::of(&xs).expect("non-empty");
        // Quartiles are ordered; whiskers are observations inside the
        // 1.5·IQR fences (the lowest such observation may exceed q1 when
        // the data below the box is sparse, so only fence bounds hold).
        prop_assert!(b.q1 <= b.median + 1e-12);
        prop_assert!(b.median <= b.q3 + 1e-12);
        prop_assert!(b.whisker_lo <= b.whisker_hi + 1e-12);
        let iqr = b.q3 - b.q1;
        prop_assert!(b.whisker_lo >= b.q1 - 1.5 * iqr - 1e-9);
        prop_assert!(b.whisker_hi <= b.q3 + 1.5 * iqr + 1e-9);
    }

    #[test]
    fn fliers_lie_outside_the_whiskers(xs in samples(4)) {
        let b = BoxStats::of(&xs).expect("non-empty");
        for f in &b.fliers {
            prop_assert!(*f < b.whisker_lo || *f > b.whisker_hi);
        }
        // Whiskers stay within the data range.
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(b.whisker_lo >= min - 1e-12 && b.whisker_hi <= max + 1e-12);
    }

    #[test]
    fn flier_count_plus_inliers_is_total(xs in samples(4)) {
        let b = BoxStats::of(&xs).expect("non-empty");
        let inside = xs
            .iter()
            .filter(|x| **x >= b.whisker_lo && **x <= b.whisker_hi)
            .count();
        prop_assert_eq!(inside + b.fliers.len(), xs.len());
    }

    // --- heatmap -----------------------------------------------------------------

    #[test]
    fn heatmap_extremes_bound_every_cell(
        rows in 2usize..10,
        cols in 2usize..10,
        seed in 0u64..1000,
    ) {
        let row_labels: Vec<u32> = (0..rows as u32).collect();
        let col_labels: Vec<u32> = (0..cols as u32).collect();
        let hm = Heatmap::build(&row_labels, &col_labels, |r, c| {
            if (r + c) % 5 == (seed % 5) as u32 {
                None // blanks allowed anywhere
            } else {
                Some(((r * 31 + c * 17 + seed as u32 % 13) % 100) as f64)
            }
        });
        if let (Some((_, _, lo)), Some((_, _, hi))) = (hm.min_cell(), hm.max_cell()) {
            prop_assert!(lo <= hi);
            for (_, _, v) in hm.iter_cells() {
                prop_assert!(v >= lo && v <= hi);
            }
            let mean = hm.mean().expect("cells exist");
            prop_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12);
        }
    }

    #[test]
    fn combine_subtract_of_self_is_zero(rows in 2usize..8, cols in 2usize..8) {
        let row_labels: Vec<u32> = (0..rows as u32).collect();
        let col_labels: Vec<u32> = (0..cols as u32).collect();
        let hm = Heatmap::build(&row_labels, &col_labels, |r, c| Some((r * cols as u32 + c) as f64));
        let diff = hm.combine(&hm, |a, b| a - b);
        for (_, _, v) in diff.iter_cells() {
            prop_assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header(rows in 1usize..12, cols in 1usize..12) {
        let row_labels: Vec<u32> = (0..rows as u32).collect();
        let col_labels: Vec<u32> = (0..cols as u32).collect();
        let hm = Heatmap::build(&row_labels, &col_labels, |_, _| Some(1.0));
        let csv = hm.to_csv();
        prop_assert_eq!(csv.lines().count(), rows + 1);
        for line in csv.lines().skip(1) {
            prop_assert_eq!(line.split(',').count(), cols + 1);
        }
    }

    // --- violin -------------------------------------------------------------------

    #[test]
    fn violin_density_is_normalised_and_nonnegative(xs in samples(5), bins in 4usize..64) {
        if let Some(v) = ViolinSummary::build("prop", &xs, bins) {
            prop_assert!(!v.density.is_empty());
            prop_assert_eq!(v.density.len(), v.grid.len());
            // Densities are normalised to a unit maximum.
            let max = v.density.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-9, "density max {max}");
            for d in &v.density {
                prop_assert!(*d >= 0.0 && *d <= 1.0 + 1e-12);
            }
            for w in v.grid.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            prop_assert!(v.q1 <= v.median && v.median <= v.q3);
        }
    }

    #[test]
    fn violin_mode_count_is_monotone_in_threshold(xs in samples(10)) {
        if let Some(v) = ViolinSummary::build("prop", &xs, 32) {
            let strict = v.mode_count(0.8);
            let loose = v.mode_count(0.1);
            prop_assert!(loose >= strict);
        }
    }

    // --- text table ------------------------------------------------------------------

    #[test]
    fn render_contains_every_cell(cells in prop::collection::vec("[a-z]{1,8}", 1..20)) {
        let mut t = TextTable::with_header(&["col"]);
        for c in &cells {
            t.row(std::slice::from_ref(c));
        }
        let rendered = t.render();
        for c in &cells {
            prop_assert!(rendered.contains(c.as_str()), "missing {c}");
        }
        prop_assert_eq!(t.n_rows(), cells.len());
    }

    #[test]
    fn markdown_render_has_pipe_structure(cells in prop::collection::vec("[a-z]{1,6}", 1..10)) {
        let mut t = TextTable::with_header(&["a", "b"]);
        for c in &cells {
            t.row(&[c.clone(), c.clone()]);
        }
        let md = t.render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        // header + separator + one line per row
        prop_assert_eq!(lines.len(), 2 + cells.len());
        for line in lines {
            prop_assert!(line.starts_with('|') && line.ends_with('|'));
        }
    }
}
