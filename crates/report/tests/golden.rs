//! Golden-file tests: a fixed seeded campaign rendered through every sink
//! must reproduce the committed artefacts byte for byte.
//!
//! These pin two properties at once: the simulator + methodology are
//! deterministic under a fixed seed, and the rendering pipeline is
//! deterministic given a result. If an intentional change moves the output
//! (new noise model, new figure layout), regenerate with
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p latest-report --test golden
//! ```
//!
//! and review the diff like any other code change.

use std::path::PathBuf;

use latest_core::{CampaignConfig, CampaignResult, Latest};
use latest_gpu_sim::devices;
use latest_report::{campaign_summary_table, render_to_string, Format};

fn fixed_campaign() -> CampaignResult {
    let config = CampaignConfig::builder(devices::a100_sxm4())
        .frequencies_mhz(&[705, 1410])
        .measurements(4, 6)
        .simulated_sms(Some(2))
        .seed(0xC0FFEE)
        .build();
    Latest::new(config).run().unwrap()
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with GOLDEN_UPDATE=1", name));
    assert!(
        rendered == expected,
        "{name} drifted from its golden file; if intentional, regenerate \
         with GOLDEN_UPDATE=1 and review the diff"
    );
}

#[test]
fn fixed_campaign_renders_golden_artifacts_through_every_sink() {
    let result = fixed_campaign();
    let view = latest_core::LatencyView::of(&result).completed();
    let freqs = latest_core::LatencyView::of(&result).frequencies_mhz();
    let heatmap = latest_report::Heatmap::from_view(&view, &freqs, latest_core::PairStat::Max)
        .with_title("golden: worst-case switching latencies [ms]");

    // One golden per sink for the heatmap figure...
    for format in Format::ALL {
        let rendered = render_to_string(&heatmap, format).unwrap();
        check(&format!("heatmap_max.{}", format.extension()), &rendered);
    }
    // ...and the summary table through the text and CSV sinks (the CLI's
    // stdout shape and its machine export).
    let table = campaign_summary_table(&result);
    check(
        "summary_table.txt",
        &render_to_string(&table, Format::Text).unwrap(),
    );
    check(
        "summary_table.csv",
        &render_to_string(&table, Format::Csv).unwrap(),
    );
}

#[test]
fn golden_render_is_stable_within_a_process() {
    // The cheap half of the determinism story, independent of the files:
    // two renders of two identically-seeded campaigns agree bitwise.
    let (a, b) = (fixed_campaign(), fixed_campaign());
    let ta = campaign_summary_table(&a);
    let tb = campaign_summary_table(&b);
    for format in Format::ALL {
        assert_eq!(
            render_to_string(&ta, format).unwrap(),
            render_to_string(&tb, format).unwrap()
        );
    }
}
