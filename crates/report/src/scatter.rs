//! Scatter plots of per-measurement switching latencies (Fig. 5 and 6:
//! measurement index on x, latency on y, cluster membership as the marker).

use latest_cluster::Labeling;

/// A latency scatter figure (Figs. 5/6): per-measurement latencies with
/// optional cluster membership, ready for the
/// [`Artifact`](crate::Artifact) renderings.
#[derive(Clone, Debug)]
pub struct Scatter {
    /// Figure title.
    pub title: String,
    /// Per-measurement latencies (ms), in measurement order.
    pub latencies_ms: Vec<f64>,
    /// Cluster id per measurement (`None` = noise/outlier); parallel to
    /// `latencies_ms`. May be empty when no clustering was run.
    pub cluster_of: Vec<Option<usize>>,
}

impl Scatter {
    /// Build a scatter; `cluster_of` must be empty or parallel to the data.
    pub fn new(
        title: impl Into<String>,
        latencies_ms: Vec<f64>,
        cluster_of: Vec<Option<usize>>,
    ) -> Self {
        assert!(
            cluster_of.is_empty() || cluster_of.len() == latencies_ms.len(),
            "cluster labels must be absent or parallel to the data"
        );
        Scatter {
            title: title.into(),
            latencies_ms,
            cluster_of,
        }
    }

    /// Build from a DBSCAN labeling (noise becomes `None`).
    pub fn from_labeling(
        title: impl Into<String>,
        latencies_ms: Vec<f64>,
        labeling: &Labeling,
    ) -> Self {
        let cluster_of = labeling
            .labels
            .iter()
            .map(|l| match l {
                latest_cluster::Label::Cluster(c) => Some(*c),
                latest_cluster::Label::Noise => None,
            })
            .collect();
        Scatter::new(title, latencies_ms, cluster_of)
    }
}

/// Render an ASCII scatter of `latencies` (y) against measurement index
/// (x), with cluster ids as digits and noise as `x`.
///
/// `rows` controls the vertical resolution; columns downsample to `cols`.
pub fn render_scatter(
    title: &str,
    latencies: &[f64],
    labeling: Option<&Labeling>,
    rows: usize,
    cols: usize,
) -> String {
    let mut out = format!("{title}\n");
    if latencies.is_empty() || rows < 2 || cols < 2 {
        out.push_str("(no data)\n");
        return out;
    }
    if let Some(l) = labeling {
        assert_eq!(
            l.labels.len(),
            latencies.len(),
            "labeling must be parallel to the data"
        );
    }
    let lo = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = latencies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);

    // canvas[row][col]: row 0 = top (highest latency).
    let mut canvas = vec![vec![' '; cols]; rows];
    for (i, &v) in latencies.iter().enumerate() {
        let col = i * (cols - 1) / (latencies.len() - 1).max(1);
        let level = ((v - lo) / span * (rows - 1) as f64).round() as usize;
        let row = rows - 1 - level.min(rows - 1);
        let marker = match labeling.map(|l| l.labels[i]) {
            Some(latest_cluster::Label::Noise) => 'x',
            Some(latest_cluster::Label::Cluster(c)) => {
                char::from_digit((c % 10) as u32, 10).unwrap_or('*')
            }
            None => 'o',
        };
        canvas[row][col] = marker;
    }

    for (r, line) in canvas.iter().enumerate() {
        let level = hi - span * r as f64 / (rows - 1) as f64;
        out.push_str(&format!("{level:>10.2} |"));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10} +{}\n{:>10}  0{:>width$}\n",
        "",
        "-".repeat(cols),
        "",
        latencies.len(),
        width = cols - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_cluster::Dbscan;

    #[test]
    fn renders_clusters_with_distinct_markers() {
        let mut data: Vec<f64> = Vec::new();
        for i in 0..60 {
            data.push(if i % 2 == 0 { 60.0 } else { 180.0 });
        }
        data.push(460.0); // outlier
        let labeling = Dbscan::new(10.0, 4).fit_1d(&data);
        assert_eq!(labeling.n_clusters, 2);
        let txt = render_scatter("GH200 1770->1260 MHz", &data, Some(&labeling), 20, 40);
        assert!(txt.contains("GH200"));
        assert!(txt.contains('0'));
        assert!(txt.contains('1'));
        assert!(txt.contains('x'));
    }

    #[test]
    fn renders_without_labels() {
        let data = vec![5.0, 6.0, 5.5, 30.0];
        let txt = render_scatter("plain", &data, None, 10, 20);
        assert!(txt.contains('o'));
    }

    #[test]
    fn empty_data_is_graceful() {
        let txt = render_scatter("none", &[], None, 10, 20);
        assert!(txt.contains("(no data)"));
    }

    #[test]
    fn constant_data_does_not_divide_by_zero() {
        let data = vec![7.0; 10];
        let txt = render_scatter("flat", &data, None, 10, 20);
        assert!(txt.contains('o'));
    }
}
