//! The unified rendering contract: every figure is an [`Artifact`], every
//! output format a [`Sink`].
//!
//! The paper's evaluation is artefact-driven — heatmaps (Figs. 3, 7, 8),
//! violins (Fig. 4), scatters (Figs. 5, 6), boxplots (Fig. 9), Tables I–II
//! and the EXPERIMENTS.md records — but this crate used to expose each as
//! its own unrelated API (`Heatmap::render`, `ViolinSummary::render`,
//! `render_scatter`, `boxplot_svg`, …). The [`Artifact`] trait replaces all
//! of that with one verb:
//!
//! ```
//! use latest_report::{Artifact, Format, Heatmap, TextSink};
//!
//! let hm = Heatmap::build(&[705u32, 1410], &[705u32, 1410], |r, c| {
//!     if r == c { None } else { Some(1.0) }
//! })
//! .with_title("demo [ms]");
//! let mut sink = TextSink::new();
//! Artifact::render(&hm, &mut sink).unwrap();
//! assert!(sink.as_str().contains("demo"));
//! // Or in one call, for any of the four formats:
//! let svg = latest_report::render_to_string(&hm, Format::Svg).unwrap();
//! assert!(svg.starts_with("<svg"));
//! ```
//!
//! Figure types that predate the trait keep their historical inherent
//! renderers (`Heatmap::render(title, color)`, `TextTable::render()`,
//! `ViolinSummary::render(width)`), which shadow the trait method on a
//! direct call — go through [`render_to_string`] or
//! `Artifact::render(&x, &mut sink)` when you want the sink-driven path.
//!
//! Every figure type renders through **all four** sinks:
//!
//! | Sink | Produces |
//! |---|---|
//! | [`TextSink`] | the terminal rendering (tables, ASCII plots) |
//! | [`SvgSink`] | a standalone deterministic SVG document |
//! | [`CsvSink`] | the figure's underlying data as CSV |
//! | [`JsonSink`] | the figure's underlying data as JSON |
//!
//! All renderings are deterministic: the same artifact renders to the same
//! bytes, so bundles can be committed and diffed.

use std::fmt::Write as _;

use crate::boxplot::{BoxStats, BoxplotGroup};
use crate::experiments::ExperimentRecord;
use crate::heatmap::Heatmap;
use crate::scatter::{render_scatter, Scatter};
use crate::svg::{
    boxplot_svg, heatmap_svg, scatter_svg, text_svg, violin_pair_svg, violins_svg, SvgStyle,
};
use crate::table::TextTable;
use crate::violin::{ViolinPair, ViolinSummary};

/// The four output formats of the reporting pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// Terminal-oriented plain text.
    Text,
    /// Standalone SVG document.
    Svg,
    /// Machine-readable CSV.
    Csv,
    /// Machine-readable JSON.
    Json,
}

impl Format {
    /// Every format, in bundle emission order.
    pub const ALL: [Format; 4] = [Format::Text, Format::Svg, Format::Csv, Format::Json];

    /// Conventional file extension.
    pub fn extension(&self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Svg => "svg",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Format::Text => "text",
            Format::Svg => "svg",
            Format::Csv => "csv",
            Format::Json => "json",
        })
    }
}

/// Errors surfaced by the rendering pipeline.
#[derive(Debug)]
pub enum ReportError {
    /// Underlying I/O failure (bundle writes).
    Io(std::io::Error),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "report I/O: {e}"),
        }
    }
}

impl std::error::Error for ReportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReportError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReportError {
    fn from(e: std::io::Error) -> Self {
        ReportError::Io(e)
    }
}

/// Result alias for rendering operations.
pub type ReportResult<T> = Result<T, ReportError>;

/// An output destination with a declared [`Format`]. Artifacts ask the sink
/// which format it wants and write the matching rendering.
pub trait Sink {
    /// The format this sink accepts.
    fn format(&self) -> Format;
    /// Append rendered content.
    fn write_str(&mut self, s: &str) -> ReportResult<()>;
}

macro_rules! string_sink {
    ($(#[$doc:meta])* $name:ident, $format:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug, Default)]
        pub struct $name {
            buf: String,
        }

        impl $name {
            /// An empty sink.
            pub fn new() -> Self {
                Self { buf: String::new() }
            }

            /// The content rendered so far.
            pub fn as_str(&self) -> &str {
                &self.buf
            }

            /// Consume the sink, yielding its content.
            pub fn into_string(self) -> String {
                self.buf
            }
        }

        impl Sink for $name {
            fn format(&self) -> Format {
                $format
            }

            fn write_str(&mut self, s: &str) -> ReportResult<()> {
                self.buf.push_str(s);
                Ok(())
            }
        }
    };
}

string_sink!(
    /// In-memory sink collecting the plain-text rendering.
    TextSink,
    Format::Text
);
string_sink!(
    /// In-memory sink collecting the SVG rendering.
    SvgSink,
    Format::Svg
);
string_sink!(
    /// In-memory sink collecting the CSV rendering.
    CsvSink,
    Format::Csv
);
string_sink!(
    /// In-memory sink collecting the JSON rendering.
    JsonSink,
    Format::Json
);

/// A renderable paper artefact. One implementation per figure type; one
/// rendering per [`Sink`] format.
pub trait Artifact {
    /// Human title of the artefact (figure caption / table heading).
    fn title(&self) -> &str;

    /// Render into `sink`, in the format the sink declares.
    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()>;
}

/// Render an artifact to a string in the given format — the convenience
/// wrapper over the four sink types.
pub fn render_to_string(artifact: &dyn Artifact, format: Format) -> ReportResult<String> {
    match format {
        Format::Text => {
            let mut sink = TextSink::new();
            artifact.render(&mut sink)?;
            Ok(sink.into_string())
        }
        Format::Svg => {
            let mut sink = SvgSink::new();
            artifact.render(&mut sink)?;
            Ok(sink.into_string())
        }
        Format::Csv => {
            let mut sink = CsvSink::new();
            artifact.render(&mut sink)?;
            Ok(sink.into_string())
        }
        Format::Json => {
            let mut sink = JsonSink::new();
            artifact.render(&mut sink)?;
            Ok(sink.into_string())
        }
    }
}

// --- shared rendering helpers ----------------------------------------------

/// Quote a CSV cell when it contains structural characters.
pub(crate) fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Wrap a raw [`serde::Value`] so the vendored `serde_json` can print it.
pub(crate) struct RawValue(pub(crate) serde::Value);

impl serde::Serialize for RawValue {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

/// Pretty-print a raw value tree with the crate's one JSON convention
/// (two-space pretty form, trailing newline) — every JSON the pipeline
/// emits goes through here so the bitwise-determinism promise has a single
/// implementation to keep.
pub(crate) fn json_of(value: serde::Value) -> String {
    let mut text = serde_json::to_string_pretty(&RawValue(value)).expect("value tree serialises");
    text.push('\n');
    text
}

pub(crate) fn map(entries: Vec<(&str, serde::Value)>) -> serde::Value {
    serde::Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub(crate) fn str_v(s: &str) -> serde::Value {
    serde::Value::Str(s.to_string())
}

pub(crate) fn f64_v(x: f64) -> serde::Value {
    serde::Value::F64(x)
}

pub(crate) fn u64_v(x: usize) -> serde::Value {
    serde::Value::U64(x as u64)
}

pub(crate) fn f64_seq(xs: &[f64]) -> serde::Value {
    serde::Value::Seq(xs.iter().map(|&x| f64_v(x)).collect())
}

fn box_value(label: &str, b: &BoxStats) -> serde::Value {
    map(vec![
        ("label", str_v(label)),
        ("q1", f64_v(b.q1)),
        ("median", f64_v(b.median)),
        ("q3", f64_v(b.q3)),
        ("whisker_lo", f64_v(b.whisker_lo)),
        ("whisker_hi", f64_v(b.whisker_hi)),
        ("n", u64_v(b.n)),
        ("fliers", f64_seq(&b.fliers)),
    ])
}

fn box_csv_row(label: &str, b: &BoxStats) -> String {
    format!(
        "{},{},{},{},{},{},{},{}\n",
        csv_cell(label),
        b.q1,
        b.median,
        b.q3,
        b.whisker_lo,
        b.whisker_hi,
        b.n,
        b.fliers.len()
    )
}

const BOX_CSV_HEADER: &str = "label,q1_ms,median_ms,q3_ms,whisker_lo_ms,whisker_hi_ms,n,fliers\n";

fn violin_value(v: &ViolinSummary) -> serde::Value {
    map(vec![
        ("label", str_v(&v.label)),
        ("n", u64_v(v.summary.n as usize)),
        ("q1", f64_v(v.q1)),
        ("median", f64_v(v.median)),
        ("q3", f64_v(v.q3)),
        ("grid_ms", f64_seq(&v.grid)),
        ("density", f64_seq(&v.density)),
    ])
}

fn violin_csv(violins: &[&ViolinSummary]) -> String {
    let mut out = String::from("label,grid_ms,density\n");
    for v in violins {
        for (g, d) in v.grid.iter().zip(&v.density) {
            let _ = writeln!(out, "{},{g},{d}", csv_cell(&v.label));
        }
    }
    out
}

// --- Artifact implementations ----------------------------------------------

impl Artifact for Heatmap {
    fn title(&self) -> &str {
        self.title()
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        match sink.format() {
            // File-oriented text: no ANSI colour codes.
            Format::Text => sink.write_str(&self.render(self.title(), false)),
            Format::Svg => sink.write_str(&heatmap_svg(self, self.title(), &SvgStyle::default())),
            Format::Csv => sink.write_str(&self.to_csv()),
            Format::Json => {
                let cells: Vec<serde::Value> = (0..self.n_rows())
                    .map(|i| {
                        serde::Value::Seq(
                            (0..self.n_cols())
                                .map(|j| match self.get(i, j) {
                                    Some(v) => f64_v(v),
                                    None => serde::Value::Null,
                                })
                                .collect(),
                        )
                    })
                    .collect();
                sink.write_str(&json_of(map(vec![
                    ("title", str_v(self.title())),
                    (
                        "row_labels",
                        serde::Value::Seq(self.row_labels.iter().map(|l| str_v(l)).collect()),
                    ),
                    (
                        "col_labels",
                        serde::Value::Seq(self.col_labels.iter().map(|l| str_v(l)).collect()),
                    ),
                    ("cells", serde::Value::Seq(cells)),
                ])))
            }
        }
    }
}

impl Artifact for ViolinSummary {
    fn title(&self) -> &str {
        &self.label
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        match sink.format() {
            Format::Text => sink.write_str(&self.render(48)),
            Format::Svg => sink.write_str(&violins_svg(&[self], &self.label, &SvgStyle::default())),
            Format::Csv => sink.write_str(&violin_csv(&[self])),
            Format::Json => sink.write_str(&json_of(violin_value(self))),
        }
    }
}

impl Artifact for ViolinPair {
    fn title(&self) -> &str {
        &self.title
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        match sink.format() {
            Format::Text => {
                let mut out = format!("{}\n\n", self.title);
                out.push_str(&self.left.render(48));
                out.push('\n');
                out.push_str(&self.right.render(48));
                sink.write_str(&out)
            }
            Format::Svg => sink.write_str(&violin_pair_svg(
                &self.left,
                &self.right,
                &self.title,
                &SvgStyle::default(),
            )),
            Format::Csv => sink.write_str(&violin_csv(&[&self.left, &self.right])),
            Format::Json => sink.write_str(&json_of(map(vec![
                ("title", str_v(&self.title)),
                ("left", violin_value(&self.left)),
                ("right", violin_value(&self.right)),
            ]))),
        }
    }
}

impl Artifact for BoxStats {
    fn title(&self) -> &str {
        "boxplot"
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        match sink.format() {
            Format::Text => {
                let mut line = self.render_line("sample");
                line.push('\n');
                sink.write_str(&line)
            }
            Format::Svg => sink.write_str(&boxplot_svg(
                &[("sample".to_string(), self.clone())],
                "boxplot",
                &SvgStyle::default(),
            )),
            Format::Csv => {
                sink.write_str(BOX_CSV_HEADER)?;
                sink.write_str(&box_csv_row("sample", self))
            }
            Format::Json => sink.write_str(&json_of(box_value("sample", self))),
        }
    }
}

impl Artifact for BoxplotGroup {
    fn title(&self) -> &str {
        &self.title
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        match sink.format() {
            Format::Text => {
                let mut out = format!("{}\n", self.title);
                for (label, b) in &self.groups {
                    out.push_str(&b.render_line(label));
                    out.push('\n');
                }
                sink.write_str(&out)
            }
            Format::Svg => sink.write_str(&boxplot_svg(
                &self.groups,
                &self.title,
                &SvgStyle::default(),
            )),
            Format::Csv => {
                sink.write_str(BOX_CSV_HEADER)?;
                for (label, b) in &self.groups {
                    sink.write_str(&box_csv_row(label, b))?;
                }
                Ok(())
            }
            Format::Json => sink.write_str(&json_of(map(vec![
                ("title", str_v(&self.title)),
                (
                    "groups",
                    serde::Value::Seq(
                        self.groups
                            .iter()
                            .map(|(label, b)| box_value(label, b))
                            .collect(),
                    ),
                ),
            ]))),
        }
    }
}

impl Artifact for Scatter {
    fn title(&self) -> &str {
        &self.title
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        let cluster = |i: usize| self.cluster_of.get(i).copied().flatten();
        match sink.format() {
            Format::Text => {
                // render_scatter wants a Labeling; rebuild one from the
                // cluster ids (None = noise).
                let labeling = if self.cluster_of.is_empty() {
                    None
                } else {
                    let labels: Vec<latest_cluster::Label> = self
                        .cluster_of
                        .iter()
                        .map(|c| match c {
                            Some(id) => latest_cluster::Label::Cluster(*id),
                            None => latest_cluster::Label::Noise,
                        })
                        .collect();
                    let n_clusters = self
                        .cluster_of
                        .iter()
                        .flatten()
                        .copied()
                        .max()
                        .map_or(0, |m| m + 1);
                    Some(latest_cluster::Labeling { labels, n_clusters })
                };
                sink.write_str(&render_scatter(
                    &self.title,
                    &self.latencies_ms,
                    labeling.as_ref(),
                    20,
                    64,
                ))
            }
            Format::Svg => sink.write_str(&scatter_svg(
                &self.latencies_ms,
                &self.cluster_of,
                &self.title,
                &SvgStyle::default(),
            )),
            Format::Csv => {
                sink.write_str("measurement,latency_ms,cluster\n")?;
                for (i, ms) in self.latencies_ms.iter().enumerate() {
                    let cell = match cluster(i) {
                        Some(c) => c.to_string(),
                        None => String::new(),
                    };
                    sink.write_str(&format!("{i},{ms},{cell}\n"))?;
                }
                Ok(())
            }
            Format::Json => {
                let clusters: Vec<serde::Value> = (0..self.latencies_ms.len())
                    .map(|i| match cluster(i) {
                        Some(c) => u64_v(c),
                        None => serde::Value::Null,
                    })
                    .collect();
                sink.write_str(&json_of(map(vec![
                    ("title", str_v(&self.title)),
                    ("latencies_ms", f64_seq(&self.latencies_ms)),
                    ("cluster", serde::Value::Seq(clusters)),
                ])))
            }
        }
    }
}

impl Artifact for TextTable {
    fn title(&self) -> &str {
        self.title()
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        match sink.format() {
            Format::Text => {
                if self.title().is_empty() {
                    sink.write_str(&self.render())
                } else {
                    sink.write_str(&format!("{}\n{}", self.title(), self.render()))
                }
            }
            Format::Svg => sink.write_str(&text_svg(
                self.title(),
                &self.render(),
                &SvgStyle::default(),
            )),
            Format::Csv => {
                let mut out = String::new();
                let write_row = |out: &mut String, cells: &[String]| {
                    let cols: Vec<String> = cells.iter().map(|c| csv_cell(c)).collect();
                    out.push_str(&cols.join(","));
                    out.push('\n');
                };
                write_row(&mut out, self.header());
                for row in self.rows() {
                    write_row(&mut out, row);
                }
                sink.write_str(&out)
            }
            Format::Json => {
                let rows: Vec<serde::Value> = self
                    .rows()
                    .iter()
                    .map(|r| serde::Value::Seq(r.iter().map(|c| str_v(c)).collect()))
                    .collect();
                sink.write_str(&json_of(map(vec![
                    ("title", str_v(self.title())),
                    (
                        "header",
                        serde::Value::Seq(self.header().iter().map(|c| str_v(c)).collect()),
                    ),
                    ("rows", serde::Value::Seq(rows)),
                ])))
            }
        }
    }
}

impl Artifact for ExperimentRecord {
    fn title(&self) -> &str {
        &self.title
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        match sink.format() {
            Format::Text => sink.write_str(&self.render_markdown()),
            Format::Svg => sink.write_str(&text_svg(
                &self.title,
                &self.render_markdown(),
                &SvgStyle::default(),
            )),
            Format::Csv => {
                let mut out = String::from("metric,paper,measured,shape_holds,note\n");
                for r in &self.rows {
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{}",
                        csv_cell(&r.metric),
                        csv_cell(&r.paper),
                        csv_cell(&r.measured),
                        r.shape_holds,
                        csv_cell(&r.note)
                    );
                }
                sink.write_str(&out)
            }
            Format::Json => {
                let mut text =
                    serde_json::to_string_pretty(self).expect("experiment record serialises");
                text.push('\n');
                sink.write_str(&text)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_heatmap() -> Heatmap {
        Heatmap::build(&[705u32, 1095, 1410], &[705u32, 1095, 1410], |r, c| {
            if r == c {
                None
            } else {
                Some((r + c) as f64 / 100.0)
            }
        })
        .with_title("sample heatmap [ms]")
    }

    fn sample_violin(label: &str, base: f64) -> ViolinSummary {
        let xs: Vec<f64> = (0..120).map(|i| base + (i % 12) as f64 * 0.25).collect();
        ViolinSummary::build(label, &xs, 48).unwrap()
    }

    fn all_artifacts() -> Vec<Box<dyn Artifact>> {
        let xs: Vec<f64> = (0..60).map(|i| 5.0 + (i % 7) as f64 * 0.3).collect();
        let mut group = BoxplotGroup::new("per-pair boxplots [ms]");
        group.add("705->1410", &xs).add("1410->705", &xs);
        let mut table = TextTable::with_header(&["device", "pairs"]).titled("summary");
        table.row_display(&["A100, SXM4", "6"]);
        let mut record = ExperimentRecord::new("table2", "Summary", "test params");
        record.compare("worst [ms]", "22.7", "21.4", true, "ok");
        vec![
            Box::new(sample_heatmap()),
            Box::new(sample_violin("increasing", 10.0)),
            Box::new(ViolinPair::new(
                "direction split",
                sample_violin("increasing", 10.0),
                sample_violin("decreasing", 6.0),
            )),
            Box::new(BoxStats::of(&xs).unwrap()),
            Box::new(group),
            Box::new(Scatter::new(
                "GH200 1770->1260",
                xs.clone(),
                (0..60)
                    .map(|i| if i == 3 { None } else { Some(i % 2) })
                    .collect(),
            )),
            Box::new(table),
            Box::new(record),
        ]
    }

    #[test]
    fn every_artifact_renders_through_every_sink() {
        for artifact in all_artifacts() {
            for format in Format::ALL {
                let out = render_to_string(artifact.as_ref(), format).unwrap();
                assert!(
                    !out.is_empty(),
                    "{} produced empty {format} output",
                    artifact.title()
                );
                match format {
                    Format::Svg => {
                        assert!(out.starts_with("<svg"), "{}", artifact.title());
                        assert!(out.trim_end().ends_with("</svg>"), "{}", artifact.title());
                    }
                    Format::Json => {
                        assert!(out.starts_with('{'), "{}", artifact.title());
                        assert!(out.ends_with('\n'), "{}", artifact.title());
                    }
                    Format::Csv => {
                        assert!(out.lines().count() >= 1, "{}", artifact.title());
                    }
                    Format::Text => {}
                }
            }
        }
    }

    #[test]
    fn renders_are_deterministic() {
        for artifact in all_artifacts() {
            for format in Format::ALL {
                let a = render_to_string(artifact.as_ref(), format).unwrap();
                let b = render_to_string(artifact.as_ref(), format).unwrap();
                assert_eq!(a, b, "{} not deterministic in {format}", artifact.title());
            }
        }
    }

    #[test]
    fn sink_formats_and_extensions() {
        assert_eq!(TextSink::new().format(), Format::Text);
        assert_eq!(SvgSink::new().format(), Format::Svg);
        assert_eq!(CsvSink::new().format(), Format::Csv);
        assert_eq!(JsonSink::new().format(), Format::Json);
        let exts: Vec<&str> = Format::ALL.iter().map(|f| f.extension()).collect();
        assert_eq!(exts, vec!["txt", "svg", "csv", "json"]);
    }

    #[test]
    fn csv_cells_are_quoted_when_structural() {
        let mut table = TextTable::with_header(&["name", "note"]);
        table.row_display(&["a,b", "say \"hi\""]);
        let csv = render_to_string(&table, Format::Csv).unwrap();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn heatmap_json_has_null_diagonal() {
        let json = render_to_string(&sample_heatmap(), Format::Json).unwrap();
        assert!(json.contains("null"));
        assert!(json.contains("\"row_labels\""));
    }
}
