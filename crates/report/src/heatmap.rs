//! Labelled 2-D heatmaps: the paper's Fig. 3 (min/max switching latency),
//! Fig. 7/8 (cross-unit ranges) layout — initial frequency in rows, target
//! frequency in columns.

use std::fmt::Write as _;

/// A rectangular grid of optional values with row/column labels.
#[derive(Clone, Debug)]
pub struct Heatmap {
    /// Row labels (initial frequencies, MHz).
    pub row_labels: Vec<String>,
    /// Column labels (target frequencies, MHz).
    pub col_labels: Vec<String>,
    values: Vec<Option<f64>>,
    title: String,
}

impl Heatmap {
    /// An empty heatmap with the given labels.
    pub fn new(row_labels: Vec<String>, col_labels: Vec<String>) -> Self {
        let values = vec![None; row_labels.len() * col_labels.len()];
        Heatmap {
            row_labels,
            col_labels,
            values,
            title: String::new(),
        }
    }

    /// Attach a title (used by the [`Artifact`](crate::Artifact)
    /// renderings; the explicit-title [`Heatmap::render`] ignores it).
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// The attached title (empty unless set by [`Heatmap::with_title`]).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Build the paper-layout heatmap from a campaign query view: initial
    /// frequency in rows, target in columns, blank diagonal, one cell per
    /// pair the view admits with filtered data. This is the single home of
    /// the composition the figure binaries, the bundle and the golden
    /// tests all share.
    pub fn from_view(
        view: &latest_core::view::LatencyView<'_>,
        freqs_mhz: &[u32],
        stat: latest_core::view::PairStat,
    ) -> Heatmap {
        Heatmap::build(freqs_mhz, freqs_mhz, |init, target| {
            if init == target {
                return None;
            }
            view.pair(init, target).and_then(|p| p.stat(stat))
        })
    }

    /// Build the state×state heatmap of a 2-D (core × memory) campaign:
    /// every distinct clock state in rows and columns (labelled e.g.
    /// `705+m810`), blank diagonal, one cell per admitted ordered state
    /// pair. This is the full-plane generalisation of
    /// [`Heatmap::from_view`] — it shows core-only, memory-only and
    /// simultaneous transitions in one grid.
    pub fn from_view_states(
        view: &latest_core::view::LatencyView<'_>,
        states: &[latest_core::FreqState],
        stat: latest_core::view::PairStat,
    ) -> Heatmap {
        Heatmap::build(states, states, |init, target| {
            if init == target {
                return None;
            }
            view.pair_state(init, target).and_then(|p| p.stat(stat))
        })
    }

    /// Build one memory-clock *slice* of a 2-D (core × memory) campaign:
    /// the same core-in-rows/core-in-columns layout as
    /// [`Heatmap::from_view`], but every cell is the pair that holds the
    /// memory clock pinned at `mem_mhz` on both sides. Together with the
    /// per-slice loop in the bundle this renders a 2-D sweep as a stack of
    /// paper-layout figures, one per memory clock.
    pub fn from_view_mem_slice(
        view: &latest_core::view::LatencyView<'_>,
        freqs_mhz: &[u32],
        stat: latest_core::view::PairStat,
        mem_mhz: u32,
    ) -> Heatmap {
        use latest_core::FreqState;
        Heatmap::build(freqs_mhz, freqs_mhz, |init, target| {
            if init == target {
                return None;
            }
            view.pair_state(
                FreqState::mhz(init, mem_mhz),
                FreqState::mhz(target, mem_mhz),
            )
            .and_then(|p| p.stat(stat))
        })
    }

    /// Build from row/column keys and a cell function (None = blank, e.g.
    /// the diagonal).
    pub fn build<K: ToString + Copy>(
        rows: &[K],
        cols: &[K],
        mut cell: impl FnMut(K, K) -> Option<f64>,
    ) -> Self {
        let mut hm = Heatmap::new(
            rows.iter().map(|r| r.to_string()).collect(),
            cols.iter().map(|c| c.to_string()).collect(),
        );
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                hm.set(i, j, cell(r, c));
            }
        }
        hm
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.row_labels.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.col_labels.len()
    }

    /// Set cell (row, col).
    pub fn set(&mut self, row: usize, col: usize, v: Option<f64>) {
        let n_cols = self.n_cols();
        self.values[row * n_cols + col] = v;
    }

    /// Get cell (row, col).
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        self.values[row * self.n_cols() + col]
    }

    /// Smallest populated non-NaN value with its (row, col).
    ///
    /// NaN cells are skipped, not propagated: backends without the
    /// `GroundTruth` capability legitimately produce NaN cells, and a
    /// single one must not poison (or, as a `partial_cmp().unwrap()` once
    /// did, panic) the scale of the rest of the figure.
    pub fn min_cell(&self) -> Option<(usize, usize, f64)> {
        self.iter_finite_cells().min_by(|a, b| a.2.total_cmp(&b.2))
    }

    /// Largest populated non-NaN value with its (row, col). Same skip-NaN
    /// semantics as [`Heatmap::min_cell`].
    pub fn max_cell(&self) -> Option<(usize, usize, f64)> {
        self.iter_finite_cells().max_by(|a, b| a.2.total_cmp(&b.2))
    }

    /// Mean over populated non-NaN cells.
    pub fn mean(&self) -> Option<f64> {
        let (n, sum) = self
            .iter_finite_cells()
            .fold((0usize, 0.0), |(n, s), (_, _, v)| (n + 1, s + v));
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    fn iter_finite_cells(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.iter_cells().filter(|(_, _, v)| !v.is_nan())
    }

    /// Populated cells as (row, col, value).
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n_cols = self.n_cols();
        self.values
            .iter()
            .enumerate()
            .filter_map(move |(i, v)| v.map(|v| (i / n_cols, i % n_cols, v)))
    }

    /// Column means (ignoring blanks and NaN cells): exposes the "target
    /// frequency dominates" structure the paper calls out.
    pub fn col_means(&self) -> Vec<Option<f64>> {
        (0..self.n_cols())
            .map(|j| {
                let vals: Vec<f64> = (0..self.n_rows())
                    .filter_map(|i| self.get(i, j))
                    .filter(|v| !v.is_nan())
                    .collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            })
            .collect()
    }

    /// Row means (ignoring blanks and NaN cells).
    pub fn row_means(&self) -> Vec<Option<f64>> {
        (0..self.n_rows())
            .map(|i| {
                let vals: Vec<f64> = (0..self.n_cols())
                    .filter_map(|j| self.get(i, j))
                    .filter(|v| !v.is_nan())
                    .collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            })
            .collect()
    }

    /// Merge with another heatmap cell-wise (labels must match), e.g.
    /// range = max-heatmap − min-heatmap for Fig. 7/8.
    ///
    /// Panics if dimensions differ.
    pub fn combine(&self, other: &Heatmap, f: impl Fn(f64, f64) -> f64) -> Heatmap {
        assert_eq!(self.row_labels, other.row_labels, "row labels differ");
        assert_eq!(self.col_labels, other.col_labels, "column labels differ");
        let mut out = Heatmap::new(self.row_labels.clone(), self.col_labels.clone());
        for i in 0..self.n_rows() {
            for j in 0..self.n_cols() {
                out.set(
                    i,
                    j,
                    match (self.get(i, j), other.get(i, j)) {
                        (Some(a), Some(b)) => Some(f(a, b)),
                        _ => None,
                    },
                );
            }
        }
        out
    }

    /// Plain-text rendering with fixed-width cells; `color` adds an ANSI
    /// green→red background scale like the paper's figures.
    pub fn render(&self, title: &str, color: bool) -> String {
        // Wide enough for every label: core-only MHz labels fit the legacy
        // 8 columns (keeping that output byte-identical); 2-D state labels
        // like `1410+m1215` stretch the grid uniformly.
        let width = self
            .row_labels
            .iter()
            .chain(&self.col_labels)
            .map(|l| l.len() + 1)
            .fold(8usize, usize::max);
        let (lo, hi) = match (self.min_cell(), self.max_cell()) {
            (Some(a), Some(b)) => (a.2, b.2),
            _ => (0.0, 1.0),
        };
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = write!(out, "{:>width$} |", "init\\tgt");
        for c in &self.col_labels {
            let _ = write!(out, "{c:>width$}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(width + 2 + width * self.n_cols()));
        for (i, r) in self.row_labels.iter().enumerate() {
            let _ = write!(out, "{r:>width$} |");
            for j in 0..self.n_cols() {
                match self.get(i, j) {
                    Some(v) => {
                        let cell = format!("{v:>width$.2}");
                        if color && hi > lo {
                            let a = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                            // 256-colour ramp: green (46) → yellow → red (196).
                            let code = match (a * 4.0) as u32 {
                                0 => 46,
                                1 => 118,
                                2 => 226,
                                3 => 208,
                                _ => 196,
                            };
                            let _ = write!(out, "\x1b[38;5;{code}m{cell}\x1b[0m");
                        } else {
                            out.push_str(&cell);
                        }
                    }
                    None => {
                        let _ = write!(out, "{:>width$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// CSV export (blank cells empty).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("init_mhz");
        for c in &self.col_labels {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
        for (i, r) in self.row_labels.iter().enumerate() {
            out.push_str(r);
            for j in 0..self.n_cols() {
                match self.get(i, j) {
                    Some(v) => {
                        let _ = write!(out, ",{v:.4}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Heatmap {
        Heatmap::build(&[705u32, 1095, 1410], &[705u32, 1095, 1410], |r, c| {
            if r == c {
                None
            } else {
                Some((r as f64 / 100.0) + (c as f64 / 1000.0))
            }
        })
    }

    #[test]
    fn build_and_lookup() {
        let hm = sample();
        assert_eq!(hm.n_rows(), 3);
        assert_eq!(hm.n_cols(), 3);
        assert_eq!(hm.get(0, 0), None); // diagonal blank
        assert!((hm.get(0, 2).unwrap() - (7.05 + 1.41)).abs() < 1e-12);
    }

    #[test]
    fn min_max_mean() {
        let hm = sample();
        let (_, _, min) = hm.min_cell().unwrap();
        let (_, _, max) = hm.max_cell().unwrap();
        assert!(min < max);
        let mean = hm.mean().unwrap();
        assert!(min <= mean && mean <= max);
    }

    #[test]
    fn col_structure_is_visible() {
        // Column-dominant data: col_means spread must exceed row_means
        // spread.
        let hm = Heatmap::build(&[1u32, 2, 3], &[10u32, 20, 30], |_r, c| Some(c as f64));
        let spread = |v: Vec<Option<f64>>| {
            let vals: Vec<f64> = v.into_iter().flatten().collect();
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(spread(hm.col_means()) > spread(hm.row_means()) + 10.0);
    }

    #[test]
    fn combine_computes_ranges() {
        let max = Heatmap::build(&[1u32, 2], &[1u32, 2], |r, c| Some((r * c) as f64 + 5.0));
        let min = Heatmap::build(&[1u32, 2], &[1u32, 2], |r, c| Some((r * c) as f64));
        let range = max.combine(&min, |a, b| a - b);
        for (_, _, v) in range.iter_cells() {
            assert_eq!(v, 5.0);
        }
    }

    #[test]
    fn render_contains_labels_and_blanks() {
        let hm = sample();
        let txt = hm.render("test map [ms]", false);
        assert!(txt.contains("test map"));
        assert!(txt.contains("705"));
        assert!(txt.contains("1410"));
        assert!(txt.contains('-'));
        // Colour mode adds escape codes.
        let coloured = hm.render("c", true);
        assert!(coloured.contains("\x1b[38;5;"));
    }

    #[test]
    fn csv_roundtrip_structure() {
        let hm = sample();
        let csv = hm.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("init_mhz,705,1095,1410"));
        // Diagonal blank -> ",," pattern present.
        assert!(lines[1].contains(",,") || lines[1].ends_with(','));
    }

    #[test]
    fn nan_cells_do_not_panic_or_poison_the_scale() {
        // Backends without ground truth legitimately produce NaN cells; a
        // single one used to panic min_cell/max_cell via
        // partial_cmp().unwrap().
        let hm = Heatmap::build(&[705u32, 1095, 1410], &[705u32, 1095, 1410], |r, c| {
            if r == c {
                None
            } else if r == 705 && c == 1410 {
                Some(f64::NAN)
            } else {
                Some((r + c) as f64 / 100.0)
            }
        });
        let (_, _, min) = hm.min_cell().expect("finite cells remain");
        let (_, _, max) = hm.max_cell().expect("finite cells remain");
        assert!(min.is_finite() && max.is_finite());
        assert!(min < max);
        let mean = hm.mean().unwrap();
        assert!(mean.is_finite() && min <= mean && mean <= max);
        for v in hm.col_means().into_iter().chain(hm.row_means()).flatten() {
            assert!(v.is_finite());
        }
        // Rendering still works (the NaN cell prints, the scale holds).
        let txt = hm.render("with NaN", true);
        assert!(txt.contains("NaN"));
        let csv = hm.to_csv();
        assert!(csv.lines().count() == 4);

        // All-NaN grids degrade to None, not a panic.
        let all_nan = Heatmap::build(&[1u32], &[2u32], |_, _| Some(f64::NAN));
        assert!(all_nan.min_cell().is_none());
        assert!(all_nan.max_cell().is_none());
        assert!(all_nan.mean().is_none());
        let _ = all_nan.render("all NaN", true);
    }

    #[test]
    fn title_is_attached_and_carried() {
        let hm = sample().with_title("Fig. 3a");
        assert_eq!(hm.title(), "Fig. 3a");
        assert_eq!(sample().title(), "");
    }

    #[test]
    #[should_panic]
    fn combine_rejects_mismatched_labels() {
        let a = Heatmap::new(vec!["1".into()], vec!["1".into()]);
        let b = Heatmap::new(vec!["2".into()], vec!["1".into()]);
        a.combine(&b, |x, _| x);
    }
}
