//! Reporting and figure regeneration for the LATEST reproduction.
//!
//! The paper's evaluation artefacts are heatmaps (Fig. 3, 7, 8), violin
//! plots (Fig. 4), scatter plots (Fig. 5, 6), boxplots (Fig. 9) and two
//! tables. This crate turns campaign results into those artefacts as
//! plain-text renderings plus machine-readable exports:
//!
//! * [`heatmap`] — labelled 2-D grids with ANSI colour scales and CSV
//!   export (initial frequency in rows, target in columns, as the paper
//!   lays them out);
//! * [`violin`] — Gaussian-KDE density summaries split by transition
//!   direction (frequency increasing vs decreasing);
//! * [`boxplot`] — five-number summaries with 1.5·IQR whiskers and fliers;
//! * [`scatter`] — measurement-index vs latency plots with cluster labels;
//! * [`table`] — aligned text tables (Table I / Table II);
//! * [`govern`] — closed-loop governor scorecards (policy × traffic
//!   comparison table and heatmaps for the `latest govern` CLI);
//! * [`predicted`] — prediction-service validation figures
//!   (predicted-vs-measured scatter with confidence whiskers, relative
//!   error heatmap, per-pair comparison table);
//! * [`telemetry`] — the per-stage service latency quantile table
//!   (`latest queue stats`);
//! * [`svg`] — dependency-free SVG documents of the same figure types, for
//!   committing rendered figures;
//! * [`experiments`] — paper-value vs measured-value records that generate
//!   the EXPERIMENTS.md comparison sections.
//!
//! All of the above render through one contract:
//!
//! * [`artifact`] — the [`Artifact`] trait plus the [`Text`](TextSink),
//!   [`Svg`](SvgSink), [`Csv`](CsvSink) and [`Json`](JsonSink) sinks; every
//!   figure type implements it and renders in all four formats;
//! * [`bundle`] — the [`Bundle`] composer: one call emits a complete
//!   paper-artefact directory (EXPERIMENTS.md, every figure in every
//!   format, summary CSV/JSON) for a campaign result;
//! * [`diff`] — [`CampaignDiff`]: per-pair latency deltas between two
//!   stored runs with Mann–Whitney significance, rendered as a signed
//!   heatmap and a regression table.

pub mod artifact;
pub mod boxplot;
pub mod bundle;
pub mod diff;
pub mod experiments;
pub mod govern;
pub mod heatmap;
pub mod predicted;
pub mod scatter;
pub mod svg;
pub mod table;
pub mod telemetry;
pub mod violin;

pub use artifact::{
    render_to_string, Artifact, CsvSink, Format, JsonSink, ReportError, ReportResult, Sink,
    SvgSink, TextSink,
};
pub use boxplot::{BoxStats, BoxplotGroup};
pub use bundle::Bundle;
pub use diff::{CampaignDiff, PairDelta};
pub use experiments::{ExperimentRecord, MetricRow};
pub use govern::{energy_heatmap, missed_rate_heatmap, policy_scorecard_table, PolicyScoreRow};
pub use heatmap::Heatmap;
pub use predicted::{prediction_error_heatmap, prediction_table, PredictionRow, PredictionScatter};
pub use scatter::{render_scatter, Scatter};
pub use svg::{
    boxplot_svg, heatmap_svg, scatter_svg, text_svg, violin_pair_svg, violins_svg, SvgStyle,
};
pub use table::{campaign_summary_table, cross_device_table, CrossDeviceRow, TextTable};
pub use telemetry::stage_latency_table;
pub use violin::{DirectionSplit, ViolinPair, ViolinSummary};
