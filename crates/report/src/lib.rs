//! Reporting and figure regeneration for the LATEST reproduction.
//!
//! The paper's evaluation artefacts are heatmaps (Fig. 3, 7, 8), violin
//! plots (Fig. 4), scatter plots (Fig. 5, 6), boxplots (Fig. 9) and two
//! tables. This crate turns campaign results into those artefacts as
//! plain-text renderings plus machine-readable exports:
//!
//! * [`heatmap`] — labelled 2-D grids with ANSI colour scales and CSV
//!   export (initial frequency in rows, target in columns, as the paper
//!   lays them out);
//! * [`violin`] — Gaussian-KDE density summaries split by transition
//!   direction (frequency increasing vs decreasing);
//! * [`boxplot`] — five-number summaries with 1.5·IQR whiskers and fliers;
//! * [`scatter`] — measurement-index vs latency plots with cluster labels;
//! * [`table`] — aligned text tables (Table I / Table II);
//! * [`svg`] — dependency-free SVG documents of the same figure types, for
//!   committing rendered figures;
//! * [`experiments`] — paper-value vs measured-value records that generate
//!   the EXPERIMENTS.md comparison sections.

pub mod boxplot;
pub mod experiments;
pub mod heatmap;
pub mod scatter;
pub mod svg;
pub mod table;
pub mod violin;

pub use boxplot::BoxStats;
pub use experiments::{ExperimentRecord, MetricRow};
pub use heatmap::Heatmap;
pub use scatter::render_scatter;
pub use svg::{boxplot_svg, heatmap_svg, scatter_svg, violin_pair_svg, SvgStyle};
pub use table::{cross_device_table, CrossDeviceRow, TextTable};
pub use violin::{DirectionSplit, ViolinSummary};
