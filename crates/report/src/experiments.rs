//! Paper-vs-measured experiment records — the machinery behind
//! EXPERIMENTS.md.
//!
//! Every regeneration binary emits one [`ExperimentRecord`] naming the paper
//! artefact (table/figure), the qualitative claims being reproduced, and the
//! measured values, serialisable to JSON for archival and renderable as a
//! Markdown section.

use serde::{Deserialize, Serialize};

/// One paper-value vs measured-value comparison row.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct MetricRow {
    /// What is being compared (e.g. "A100 worst-case max \[ms\]").
    pub metric: String,
    /// The paper's value, as reported.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the qualitative shape holds.
    pub shape_holds: bool,
    /// Free-form note.
    pub note: String,
}

/// One experiment (table or figure) record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Identifier, e.g. "fig3b" or "table2".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Workload / parameters used.
    pub parameters: String,
    /// Comparison rows.
    pub rows: Vec<MetricRow>,
}

impl ExperimentRecord {
    /// Start a record.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        parameters: impl Into<String>,
    ) -> Self {
        ExperimentRecord {
            id: id.into(),
            title: title.into(),
            parameters: parameters.into(),
            rows: Vec::new(),
        }
    }

    /// Add a comparison row.
    pub fn compare(
        &mut self,
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        shape_holds: bool,
        note: impl Into<String>,
    ) -> &mut Self {
        self.rows.push(MetricRow {
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
            shape_holds,
            note: note.into(),
        });
        self
    }

    /// Whether every row's shape holds.
    pub fn all_shapes_hold(&self) -> bool {
        self.rows.iter().all(|r| r.shape_holds)
    }

    /// Render the EXPERIMENTS.md section.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("*Parameters*: {}\n\n", self.parameters));
        out.push_str("| Metric | Paper | Measured | Shape holds? | Note |\n");
        out.push_str("|---|---|---|---|---|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                r.metric,
                r.paper,
                r.measured,
                if r.shape_holds { "yes" } else { "NO" },
                r.note
            ));
        }
        out.push('\n');
        out
    }

    /// JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("record serialises")
    }

    /// JSON import.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ExperimentRecord {
        let mut r = ExperimentRecord::new(
            "table2",
            "Summary of switching latencies across GPUs",
            "18-frequency subsets, RSE 5 %, min 25 / max 150 measurements",
        );
        r.compare(
            "A100 worst-case max [ms]",
            "22.716",
            "21.4",
            true,
            "all A100 worst cases < 25 ms",
        );
        r.compare(
            "GH200 worst-case max [ms]",
            "477.318",
            "455.0",
            true,
            "rare spike",
        );
        r
    }

    #[test]
    fn markdown_section_structure() {
        let md = record().render_markdown();
        assert!(md.starts_with("### table2"));
        assert!(md.contains("| Metric | Paper | Measured |"));
        assert!(md.contains("22.716"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() >= 4);
    }

    #[test]
    fn json_roundtrip() {
        let r = record();
        let back = ExperimentRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back.id, "table2");
        assert_eq!(back.rows, r.rows);
    }

    #[test]
    fn shape_aggregation() {
        let mut r = record();
        assert!(r.all_shapes_hold());
        r.compare("x", "1", "100", false, "off");
        assert!(!r.all_shapes_hold());
    }
}
