//! Prediction-service figures: predicted-vs-measured scatter and error
//! heatmaps.
//!
//! The prediction service validates a fitted latency model against held-out
//! measurements and simulator ground truth; this module renders those
//! comparisons. Like [`govern`](crate::govern), it deliberately depends on
//! plain row types rather than `latest-predict` — anything shaped like a
//! (pair, measured, predicted, interval) record renders, whatever produced
//! it.

use crate::artifact::{
    csv_cell, f64_v, json_of, map, str_v, u64_v, Artifact, Format, ReportResult, Sink,
};
use crate::heatmap::Heatmap;
use crate::table::TextTable;

/// One predicted-vs-measured comparison row.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictionRow {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// Reference value — a held-out measurement or ground truth (ms).
    pub measured_ms: f64,
    /// The model's point estimate (ms).
    pub predicted_ms: f64,
    /// Lower confidence bound (ms).
    pub lo_ms: f64,
    /// Upper confidence bound (ms).
    pub hi_ms: f64,
    /// Which model tier answered (`measured`, `interpolated`,
    /// `regression`).
    pub source: String,
}

impl PredictionRow {
    /// Signed relative error of the prediction.
    pub fn rel_error(&self) -> f64 {
        if self.measured_ms != 0.0 {
            (self.predicted_ms - self.measured_ms) / self.measured_ms
        } else {
            f64::NAN
        }
    }

    /// Whether the reference landed inside the predicted interval.
    pub fn covered(&self) -> bool {
        (self.lo_ms..=self.hi_ms).contains(&self.measured_ms)
    }
}

/// Predicted-vs-measured scatter: each pair plotted at (measured,
/// predicted), with the identity diagonal as the perfect-model reference.
#[derive(Clone, Debug)]
pub struct PredictionScatter {
    /// Figure title.
    pub title: String,
    /// The comparison rows.
    pub rows: Vec<PredictionRow>,
}

impl PredictionScatter {
    /// Build a scatter over comparison rows.
    pub fn new(title: impl Into<String>, rows: Vec<PredictionRow>) -> Self {
        PredictionScatter {
            title: title.into(),
            rows,
        }
    }

    /// ASCII rendering: a square plot with '*' points and the identity
    /// diagonal, followed by a per-pair table.
    fn render_text(&self) -> String {
        const SIZE: usize = 21;
        let mut out = format!("{}\n", self.title);
        let max = self
            .rows
            .iter()
            .flat_map(|r| [r.measured_ms, r.predicted_ms])
            .fold(0.0f64, f64::max);
        if max > 0.0 {
            let mut grid = vec![vec![' '; SIZE]; SIZE];
            for (i, row) in grid.iter_mut().enumerate() {
                // Identity diagonal: y axis points up, so row 0 is the top.
                row[SIZE - 1 - i] = '.';
            }
            for r in &self.rows {
                let x = ((r.measured_ms / max) * (SIZE - 1) as f64).round() as usize;
                let y = ((r.predicted_ms / max) * (SIZE - 1) as f64).round() as usize;
                grid[SIZE - 1 - y.min(SIZE - 1)][x.min(SIZE - 1)] = '*';
            }
            out.push_str(&format!(
                "predicted [0..{max:.2} ms] vertical vs measured [0..{max:.2} ms] horizontal\n"
            ));
            for row in grid {
                out.push('|');
                out.extend(row);
                out.push('\n');
            }
            out.push('+');
            out.extend(std::iter::repeat_n('-', SIZE));
            out.push('\n');
        }
        out.push_str(&prediction_table(&self.rows).render());
        out
    }

    fn render_svg(&self) -> String {
        const W: f64 = 560.0;
        const MARGIN: f64 = 60.0;
        let plot = W - 2.0 * MARGIN;
        let max = self
            .rows
            .iter()
            .flat_map(|r| [r.measured_ms, r.hi_ms])
            .fold(1e-9f64, f64::max);
        let x_of = |ms: f64| MARGIN + (ms / max).clamp(0.0, 1.0) * plot;
        let y_of = |ms: f64| MARGIN + plot - (ms / max).clamp(0.0, 1.0) * plot;
        let mut out = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W:.0}" height="{W:.0}" viewBox="0 0 {W:.0} {W:.0}" font-family="sans-serif">
<text x="{MARGIN:.1}" y="{:.1}" font-size="14" font-weight="bold">{}</text>
"#,
            MARGIN * 0.5,
            xml_escape(&self.title)
        );
        // Axes and the identity diagonal.
        out.push_str(&format!(
            "<rect x=\"{MARGIN:.1}\" y=\"{MARGIN:.1}\" width=\"{plot:.1}\" height=\"{plot:.1}\" fill=\"none\" stroke=\"#444\"/>\n"
        ));
        out.push_str(&format!(
            "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n",
            x_of(0.0),
            y_of(0.0),
            x_of(max),
            y_of(max)
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\">measured [0..{max:.2} ms]</text>\n",
            MARGIN + plot / 2.0,
            W - MARGIN * 0.3
        ));
        for r in &self.rows {
            let (x, y) = (x_of(r.measured_ms), y_of(r.predicted_ms));
            // Confidence interval as a vertical whisker.
            out.push_str(&format!(
                "<line x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#7aa\" stroke-width=\"1\"/>\n",
                y_of(r.lo_ms),
                y_of(r.hi_ms)
            ));
            out.push_str(&format!(
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3\" fill=\"#c33\"><title>{} -&gt; {}: measured {:.3} predicted {:.3} [{}]</title></circle>\n",
                r.init_mhz, r.target_mhz, r.measured_ms, r.predicted_ms,
                xml_escape(&r.source)
            ));
        }
        out.push_str("</svg>\n");
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

impl Artifact for PredictionScatter {
    fn title(&self) -> &str {
        &self.title
    }

    fn render(&self, sink: &mut dyn Sink) -> ReportResult<()> {
        match sink.format() {
            Format::Text => sink.write_str(&self.render_text()),
            Format::Svg => sink.write_str(&self.render_svg()),
            Format::Csv => {
                sink.write_str(
                    "init_mhz,target_mhz,measured_ms,predicted_ms,lo_ms,hi_ms,source,rel_error,covered\n",
                )?;
                for r in &self.rows {
                    sink.write_str(&format!(
                        "{},{},{},{},{},{},{},{},{}\n",
                        r.init_mhz,
                        r.target_mhz,
                        r.measured_ms,
                        r.predicted_ms,
                        r.lo_ms,
                        r.hi_ms,
                        csv_cell(&r.source),
                        r.rel_error(),
                        r.covered()
                    ))?;
                }
                Ok(())
            }
            Format::Json => {
                let rows: Vec<serde::Value> = self
                    .rows
                    .iter()
                    .map(|r| {
                        map(vec![
                            ("init_mhz", u64_v(r.init_mhz as usize)),
                            ("target_mhz", u64_v(r.target_mhz as usize)),
                            ("measured_ms", f64_v(r.measured_ms)),
                            ("predicted_ms", f64_v(r.predicted_ms)),
                            ("lo_ms", f64_v(r.lo_ms)),
                            ("hi_ms", f64_v(r.hi_ms)),
                            ("source", str_v(&r.source)),
                            ("rel_error", f64_v(r.rel_error())),
                            ("covered", serde::Value::Bool(r.covered())),
                        ])
                    })
                    .collect();
                sink.write_str(&json_of(map(vec![
                    ("title", str_v(&self.title)),
                    ("rows", serde::Value::Seq(rows)),
                ])))
            }
        }
    }
}

/// Per-pair comparison table (the text companion of the scatter).
pub fn prediction_table(rows: &[PredictionRow]) -> TextTable {
    let mut table = TextTable::with_header(&[
        "init [MHz]",
        "target [MHz]",
        "measured [ms]",
        "predicted [ms]",
        "interval [ms]",
        "rel err",
        "source",
    ]);
    for r in rows {
        table.row(&[
            r.init_mhz.to_string(),
            r.target_mhz.to_string(),
            format!("{:.3}", r.measured_ms),
            format!("{:.3}", r.predicted_ms),
            format!("[{:.3}, {:.3}]", r.lo_ms, r.hi_ms),
            format!("{:+.1}%", r.rel_error() * 100.0),
            r.source.clone(),
        ]);
    }
    table
}

/// Absolute relative error per pair as a heatmap (init rows, target
/// columns), in percent — the "where does the model go wrong" figure.
pub fn prediction_error_heatmap(rows: &[PredictionRow], title: &str) -> Heatmap {
    let mut freqs: Vec<u32> = rows
        .iter()
        .flat_map(|r| [r.init_mhz, r.target_mhz])
        .collect();
    freqs.sort_unstable();
    freqs.dedup();
    Heatmap::build(&freqs, &freqs, |init, target| {
        rows.iter()
            .find(|r| r.init_mhz == init && r.target_mhz == target)
            .map(|r| r.rel_error().abs() * 100.0)
    })
    .with_title(title)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::render_to_string;

    fn rows() -> Vec<PredictionRow> {
        vec![
            PredictionRow {
                init_mhz: 600,
                target_mhz: 900,
                measured_ms: 2.0,
                predicted_ms: 2.1,
                lo_ms: 1.8,
                hi_ms: 2.4,
                source: "interpolated".to_string(),
            },
            PredictionRow {
                init_mhz: 900,
                target_mhz: 600,
                measured_ms: 4.0,
                predicted_ms: 3.0,
                lo_ms: 2.5,
                hi_ms: 3.5,
                source: "regression".to_string(),
            },
        ]
    }

    #[test]
    fn row_metrics() {
        let rs = rows();
        assert!((rs[0].rel_error() - 0.05).abs() < 1e-9);
        assert!(rs[0].covered());
        assert!((rs[1].rel_error() + 0.25).abs() < 1e-9);
        assert!(!rs[1].covered());
    }

    #[test]
    fn scatter_renders_all_formats() {
        let scatter = PredictionScatter::new("predicted vs measured", rows());
        for format in Format::ALL {
            let out = render_to_string(&scatter, format).unwrap();
            assert!(!out.is_empty(), "{format}");
        }
        let text = render_to_string(&scatter, Format::Text).unwrap();
        assert!(text.contains("predicted vs measured"));
        assert!(text.contains('*'));
        let svg = render_to_string(&scatter, Format::Svg).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("circle"));
        let csv = render_to_string(&scatter, Format::Csv).unwrap();
        assert!(csv.lines().count() == 3);
        let json = render_to_string(&scatter, Format::Json).unwrap();
        assert!(json.contains("\"covered\""));
    }

    #[test]
    fn renders_are_deterministic() {
        let scatter = PredictionScatter::new("det", rows());
        for format in Format::ALL {
            assert_eq!(
                render_to_string(&scatter, format).unwrap(),
                render_to_string(&scatter, format).unwrap()
            );
        }
    }

    #[test]
    fn error_heatmap_places_pairs() {
        let hm = prediction_error_heatmap(&rows(), "abs rel error [%]");
        assert_eq!(hm.n_rows(), 2);
        assert_eq!(hm.n_cols(), 2);
        // (600, 900) is row 0 col 1: 5 % error.
        assert!((hm.get(0, 1).unwrap() - 5.0).abs() < 1e-9);
        // Diagonal unmeasured.
        assert!(hm.get(0, 0).is_none());
    }

    #[test]
    fn table_lists_every_row() {
        let table = prediction_table(&rows());
        assert_eq!(table.rows().len(), 2);
        let rendered = table.render();
        assert!(rendered.contains("+5.0%"));
        assert!(rendered.contains("regression"));
    }
}
