//! Closed-loop governor scorecards as report artefacts.
//!
//! The `latest govern` CLI scores each (policy × traffic) cell with the
//! governor daemon; this module renders those scores through the same
//! [`Artifact`](crate::artifact::Artifact) machinery as every other figure:
//! an aligned comparison table plus policy-by-traffic heatmaps of the
//! missed-deadline rate and energy. The row type is deliberately plain (no
//! `latest-governor` dependency) so any scorecard-shaped data renders.

use crate::heatmap::Heatmap;
use crate::table::TextTable;

/// One (policy × traffic) scorecard row, reduced to the reported metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyScoreRow {
    /// Policy name.
    pub policy: String,
    /// Traffic scenario name.
    pub traffic: String,
    /// Requests offered.
    pub requests: usize,
    /// Requests that carried a deadline.
    pub with_deadline: usize,
    /// Deadline-carrying requests that completed late.
    pub missed_deadlines: usize,
    /// Median request latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile request latency (ms).
    pub p99_ms: f64,
    /// Energy over the run (J).
    pub energy_j: f64,
    /// Frequency switches issued.
    pub switches: usize,
    /// Total time with a switch in flight (ms).
    pub time_in_switch_ms: f64,
}

impl PolicyScoreRow {
    /// Missed-deadline rate over deadline-carrying requests (0 when none).
    pub fn missed_rate(&self) -> f64 {
        if self.with_deadline == 0 {
            0.0
        } else {
            self.missed_deadlines as f64 / self.with_deadline as f64
        }
    }
}

/// The policy-comparison table: one row per (policy × traffic) cell, in the
/// order given.
pub fn policy_scorecard_table(rows: &[PolicyScoreRow]) -> TextTable {
    let mut table = TextTable::with_header(&[
        "traffic",
        "policy",
        "requests",
        "deadlines",
        "missed",
        "miss %",
        "p50 ms",
        "p99 ms",
        "energy J",
        "switches",
        "in-switch ms",
    ])
    .titled("Closed-loop governor scorecards");
    for r in rows {
        table.row(&[
            r.traffic.clone(),
            r.policy.clone(),
            r.requests.to_string(),
            r.with_deadline.to_string(),
            r.missed_deadlines.to_string(),
            format!("{:.2}", 100.0 * r.missed_rate()),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.1}", r.energy_j),
            r.switches.to_string(),
            format!("{:.1}", r.time_in_switch_ms),
        ]);
    }
    table
}

/// Distinct values in first-appearance order.
fn ordered_distinct<'a>(items: impl Iterator<Item = &'a str>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for item in items {
        if !out.iter().any(|x| x == item) {
            out.push(item.to_string());
        }
    }
    out
}

/// Build a policy (rows) × traffic (columns) heatmap of `metric`.
fn metric_heatmap(
    rows: &[PolicyScoreRow],
    title: &str,
    metric: impl Fn(&PolicyScoreRow) -> f64,
) -> Heatmap {
    let policies = ordered_distinct(rows.iter().map(|r| r.policy.as_str()));
    let traffics = ordered_distinct(rows.iter().map(|r| r.traffic.as_str()));
    let mut map = Heatmap::new(policies.clone(), traffics.clone()).with_title(title);
    for r in rows {
        let i = policies
            .iter()
            .position(|p| p == &r.policy)
            .expect("row policy listed");
        let j = traffics
            .iter()
            .position(|t| t == &r.traffic)
            .expect("row traffic listed");
        map.set(i, j, Some(metric(r)));
    }
    map
}

/// Missed-deadline rate (percent) per policy × traffic.
pub fn missed_rate_heatmap(rows: &[PolicyScoreRow]) -> Heatmap {
    metric_heatmap(
        rows,
        "Missed-deadline rate (%) by policy and traffic",
        |r| 100.0 * r.missed_rate(),
    )
}

/// Energy (J) per policy × traffic.
pub fn energy_heatmap(rows: &[PolicyScoreRow]) -> Heatmap {
    metric_heatmap(rows, "Energy (J) by policy and traffic", |r| r.energy_j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{render_to_string, Format};

    fn rows() -> Vec<PolicyScoreRow> {
        let mut out = Vec::new();
        for (ti, traffic) in ["bursty", "deadline"].iter().enumerate() {
            for (pi, policy) in ["run-at-max", "latency-oblivious", "latency-aware"]
                .iter()
                .enumerate()
            {
                out.push(PolicyScoreRow {
                    policy: policy.to_string(),
                    traffic: traffic.to_string(),
                    requests: 1000,
                    with_deadline: 800,
                    missed_deadlines: 40 * pi + 10 * ti,
                    p50_ms: 6.0 + pi as f64,
                    p99_ms: 30.0 + 10.0 * pi as f64,
                    energy_j: 900.0 - 50.0 * pi as f64,
                    switches: 10 * pi,
                    time_in_switch_ms: 120.0 * pi as f64,
                });
            }
        }
        out
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let table = policy_scorecard_table(&rows());
        assert_eq!(table.n_rows(), 6);
        let text = table.render();
        assert!(text.contains("latency-aware"));
        assert!(text.contains("miss %"));
    }

    #[test]
    fn heatmaps_are_policy_by_traffic() {
        let rows = rows();
        let miss = missed_rate_heatmap(&rows);
        assert_eq!(miss.n_rows(), 3);
        assert_eq!(miss.n_cols(), 2);
        // run-at-max on bursty: 0 missed of 800.
        assert_eq!(miss.get(0, 0), Some(0.0));
        // latency-oblivious on bursty: 40/800 = 5 %.
        assert_eq!(miss.get(1, 0), Some(5.0));
        let energy = energy_heatmap(&rows);
        assert_eq!(energy.get(2, 1), Some(800.0));
    }

    #[test]
    fn artefacts_render_in_every_format() {
        let rows = rows();
        let table = policy_scorecard_table(&rows);
        let map = missed_rate_heatmap(&rows);
        for format in Format::ALL {
            render_to_string(&table, format).unwrap();
            render_to_string(&map, format).unwrap();
        }
    }

    #[test]
    fn missed_rate_handles_deadline_free_scenarios() {
        let row = PolicyScoreRow {
            with_deadline: 0,
            missed_deadlines: 0,
            ..rows().remove(0)
        };
        assert_eq!(row.missed_rate(), 0.0);
    }
}
