//! SVG rendering of the paper's figure types — heatmaps, violin pairs,
//! scatter plots and boxplot groups — with no external dependencies.
//!
//! The text renderers in the sibling modules are for terminals; these
//! produce standalone `.svg` documents suitable for a paper or README. The
//! generators are deterministic (same input → byte-identical output) so
//! figure files can be committed and diffed.

use std::fmt::Write as _;

use crate::boxplot::BoxStats;
use crate::heatmap::Heatmap;
use crate::violin::ViolinSummary;

/// Canvas geometry shared by the figure builders.
#[derive(Clone, Copy, Debug)]
pub struct SvgStyle {
    /// Total width in px.
    pub width: f64,
    /// Total height in px.
    pub height: f64,
    /// Margin around the plot area in px.
    pub margin: f64,
    /// Font size for labels in px.
    pub font_px: f64,
}

impl Default for SvgStyle {
    fn default() -> Self {
        SvgStyle {
            width: 760.0,
            height: 560.0,
            margin: 70.0,
            font_px: 11.0,
        }
    }
}

fn svg_header(out: &mut String, style: &SvgStyle, title: &str) {
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}" font-family="sans-serif">"#,
        style.width, style.height, style.width, style.height
    );
    let _ = writeln!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="{:.1}" font-weight="bold">{}</text>"#,
        style.margin,
        style.margin * 0.45,
        style.font_px * 1.3,
        escape(title)
    );
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Green→yellow→red colour scale over `[0, 1]`, matching the heatmap
/// convention of Fig. 3 (green = fastest, red = slowest).
pub fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let (r, g) = if t < 0.5 {
        // green (0,200,0) -> yellow (255,220,0)
        (255.0 * (t * 2.0), 200.0 + 20.0 * (t * 2.0))
    } else {
        // yellow -> red (220,0,0)
        (
            255.0 - 35.0 * ((t - 0.5) * 2.0),
            220.0 * (1.0 - (t - 0.5) * 2.0),
        )
    };
    format!("rgb({},{},0)", r.round() as u8, g.round() as u8)
}

/// Render a [`Heatmap`] (initial frequency in rows, target in columns) as a
/// complete SVG document. Blank cells (the diagonal) are left white. Values
/// are colour-scaled on a log axis when the dynamic range exceeds 20×, as
/// the paper's wide-range heatmaps effectively are.
pub fn heatmap_svg(hm: &Heatmap, title: &str, style: &SvgStyle) -> String {
    let mut out = String::new();
    svg_header(&mut out, style, title);
    let (n_rows, n_cols) = (hm.n_rows(), hm.n_cols());
    if n_rows == 0 || n_cols == 0 {
        out.push_str("</svg>\n");
        return out;
    }
    let plot_w = style.width - 2.0 * style.margin;
    let plot_h = style.height - 2.0 * style.margin;
    let cell_w = plot_w / n_cols as f64;
    let cell_h = plot_h / n_rows as f64;

    let lo = hm.min_cell().map(|c| c.2).unwrap_or(0.0);
    let hi = hm.max_cell().map(|c| c.2).unwrap_or(1.0);
    let log_scale = lo > 0.0 && hi / lo > 20.0;
    let norm = |v: f64| -> f64 {
        if hi <= lo {
            0.5
        } else if log_scale {
            (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
        } else {
            (v - lo) / (hi - lo)
        }
    };

    for row in 0..n_rows {
        for col in 0..n_cols {
            let x = style.margin + col as f64 * cell_w;
            let y = style.margin + row as f64 * cell_h;
            match hm.get(row, col) {
                Some(v) => {
                    let _ = writeln!(
                        out,
                        r#"<rect x="{x:.1}" y="{y:.1}" width="{cell_w:.1}" height="{cell_h:.1}" fill="{}" stroke="white" stroke-width="0.5"><title>{} -&gt; {}: {v:.3}</title></rect>"#,
                        heat_color(norm(v)),
                        escape(&hm.row_labels[row]),
                        escape(&hm.col_labels[col]),
                    );
                    // Cell value, shown when cells are big enough to read.
                    if cell_w > 30.0 && cell_h > 12.0 {
                        let _ = writeln!(
                            out,
                            r#"<text x="{:.1}" y="{:.1}" font-size="{:.1}" text-anchor="middle">{}</text>"#,
                            x + cell_w / 2.0,
                            y + cell_h / 2.0 + style.font_px * 0.35,
                            style.font_px * 0.85,
                            format_value(v)
                        );
                    }
                }
                None => {
                    let _ = writeln!(
                        out,
                        r##"<rect x="{x:.1}" y="{y:.1}" width="{cell_w:.1}" height="{cell_h:.1}" fill="white" stroke="#ddd" stroke-width="0.5"/>"##
                    );
                }
            }
        }
    }

    // Axis labels: row labels on the left, column labels on top.
    for (row, label) in hm.row_labels.iter().enumerate() {
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="{:.1}" text-anchor="end">{}</text>"#,
            style.margin - 6.0,
            style.margin + (row as f64 + 0.5) * cell_h + style.font_px * 0.35,
            style.font_px,
            escape(label)
        );
    }
    for (col, label) in hm.col_labels.iter().enumerate() {
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="{:.1}" text-anchor="middle">{}</text>"#,
            style.margin + (col as f64 + 0.5) * cell_w,
            style.margin - 8.0,
            style.font_px,
            escape(label)
        );
    }
    out.push_str("</svg>\n");
    out
}

fn format_value(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Render pre-formatted monospace text (a table, a boxplot line, a record)
/// as a complete SVG document — the vector fallback that lets every
/// [`Artifact`](crate::Artifact) honour the SVG sink. One `<text>` element
/// per line, deterministic.
pub fn text_svg(title: &str, body: &str, style: &SvgStyle) -> String {
    let mut out = String::new();
    svg_header(&mut out, style, title);
    let line_h = style.font_px * 1.45;
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-family="monospace" font-size="{:.1}" xml:space="preserve">{}</text>"#,
            style.margin,
            style.margin + line_h * (i as f64 + 1.0),
            style.font_px,
            escape(line)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Render any number of violins side by side (the N-violin generalisation
/// of [`violin_pair_svg`]), each a mirrored density polygon with its median
/// marked.
pub fn violins_svg(violins: &[&ViolinSummary], title: &str, style: &SvgStyle) -> String {
    const PALETTE: [&str; 6] = [
        "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
    ];
    let mut out = String::new();
    svg_header(&mut out, style, title);
    if violins.is_empty() {
        out.push_str("</svg>\n");
        return out;
    }
    let plot_h = style.height - 2.0 * style.margin;
    let lo = violins
        .iter()
        .filter_map(|v| v.grid.first().copied())
        .fold(f64::MAX, f64::min);
    let hi = violins
        .iter()
        .filter_map(|v| v.grid.last().copied())
        .fold(f64::MIN, f64::max);
    let y_of = |v: f64| style.margin + plot_h * (1.0 - (v - lo) / (hi - lo).max(1e-12));
    let plot_w = style.width - 2.0 * style.margin;
    let n = violins.len() as f64;
    let half_w = (plot_w / n / 2.2).max(1.0);
    for (i, summary) in violins.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let cx = style.margin + plot_w * (i as f64 + 0.5) / n;
        let mut pts_right: Vec<(f64, f64)> = Vec::new();
        let mut pts_left: Vec<(f64, f64)> = Vec::new();
        for (g, d) in summary.grid.iter().zip(&summary.density) {
            let y = y_of(*g);
            pts_right.push((cx + d * half_w, y));
            pts_left.push((cx - d * half_w, y));
        }
        pts_left.reverse();
        let path: String = pts_right
            .iter()
            .chain(pts_left.iter())
            .enumerate()
            .map(|(j, (x, y))| format!("{}{x:.1},{y:.1}", if j == 0 { "M" } else { "L" }))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            r#"<path d="{path} Z" fill="{color}" fill-opacity="0.6" stroke="{color}"/>"#
        );
        let my = y_of(summary.median);
        let _ = writeln!(
            out,
            r#"<line x1="{:.1}" y1="{my:.1}" x2="{:.1}" y2="{my:.1}" stroke="black" stroke-width="1.5"/>"#,
            cx - half_w * 0.5,
            cx + half_w * 0.5
        );
        let _ = writeln!(
            out,
            r#"<text x="{cx:.1}" y="{:.1}" font-size="{:.1}" text-anchor="middle">{}</text>"#,
            style.height - style.margin * 0.4,
            style.font_px,
            escape(&summary.label)
        );
    }
    for i in 0..=5 {
        let v = lo + (hi - lo) * i as f64 / 5.0;
        let y = y_of(v);
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="{:.1}" text-anchor="end">{v:.0}</text>"#,
            style.margin - 6.0,
            y + style.font_px * 0.35,
            style.font_px
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Render a pair of violin summaries (increasing vs decreasing, Fig. 4) as
/// a complete SVG document. Each violin is drawn as a mirrored density
/// polygon with the median marked.
pub fn violin_pair_svg(
    left: &ViolinSummary,
    right: &ViolinSummary,
    title: &str,
    style: &SvgStyle,
) -> String {
    let mut out = String::new();
    svg_header(&mut out, style, title);
    let plot_h = style.height - 2.0 * style.margin;
    let lo = left
        .grid
        .first()
        .copied()
        .unwrap_or(0.0)
        .min(right.grid.first().copied().unwrap_or(0.0));
    let hi = left
        .grid
        .last()
        .copied()
        .unwrap_or(1.0)
        .max(right.grid.last().copied().unwrap_or(1.0));
    let y_of = |v: f64| style.margin + plot_h * (1.0 - (v - lo) / (hi - lo).max(1e-12));
    let half_w = (style.width - 2.0 * style.margin) / 4.5;
    for (summary, center_frac, color) in [(left, 0.3, "#4878d0"), (right, 0.7, "#ee854a")] {
        let cx = style.margin + (style.width - 2.0 * style.margin) * center_frac;
        let mut pts_right: Vec<(f64, f64)> = Vec::new();
        let mut pts_left: Vec<(f64, f64)> = Vec::new();
        for (g, d) in summary.grid.iter().zip(&summary.density) {
            let y = y_of(*g);
            pts_right.push((cx + d * half_w, y));
            pts_left.push((cx - d * half_w, y));
        }
        pts_left.reverse();
        let path: String = pts_right
            .iter()
            .chain(pts_left.iter())
            .enumerate()
            .map(|(i, (x, y))| format!("{}{x:.1},{y:.1}", if i == 0 { "M" } else { "L" }))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            r#"<path d="{path} Z" fill="{color}" fill-opacity="0.6" stroke="{color}"/>"#
        );
        // Median line.
        let my = y_of(summary.median);
        let _ = writeln!(
            out,
            r#"<line x1="{:.1}" y1="{my:.1}" x2="{:.1}" y2="{my:.1}" stroke="black" stroke-width="1.5"/>"#,
            cx - half_w * 0.5,
            cx + half_w * 0.5
        );
        let _ = writeln!(
            out,
            r#"<text x="{cx:.1}" y="{:.1}" font-size="{:.1}" text-anchor="middle">{}</text>"#,
            style.height - style.margin * 0.4,
            style.font_px,
            escape(&summary.label)
        );
    }
    // Y-axis ticks.
    for i in 0..=5 {
        let v = lo + (hi - lo) * i as f64 / 5.0;
        let y = y_of(v);
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="{:.1}" text-anchor="end">{v:.0}</text>"#,
            style.margin - 6.0,
            y + style.font_px * 0.35,
            style.font_px
        );
        let _ = writeln!(
            out,
            r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eee"/>"##,
            style.margin,
            style.width - style.margin
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Render a latency scatter (measurement index vs latency, Figs. 5/6) with
/// per-point cluster colours; noise points are drawn as open circles.
pub fn scatter_svg(
    latencies_ms: &[f64],
    cluster_of: &[Option<usize>],
    title: &str,
    style: &SvgStyle,
) -> String {
    const PALETTE: [&str; 6] = [
        "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
    ];
    let mut out = String::new();
    svg_header(&mut out, style, title);
    if latencies_ms.is_empty() {
        out.push_str("</svg>\n");
        return out;
    }
    let plot_w = style.width - 2.0 * style.margin;
    let plot_h = style.height - 2.0 * style.margin;
    let lo = latencies_ms.iter().cloned().fold(f64::MAX, f64::min);
    let hi = latencies_ms.iter().cloned().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-12);
    for (i, &v) in latencies_ms.iter().enumerate() {
        let x = style.margin + plot_w * i as f64 / latencies_ms.len().max(1) as f64;
        let y = style.margin + plot_h * (1.0 - (v - lo) / span);
        match cluster_of.get(i).copied().flatten() {
            Some(c) => {
                let _ = writeln!(
                    out,
                    r#"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="{}"><title>#{i}: {v:.3} ms (cluster {c})</title></circle>"#,
                    PALETTE[c % PALETTE.len()]
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    r##"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="none" stroke="#888"><title>#{i}: {v:.3} ms (outlier)</title></circle>"##
                );
            }
        }
    }
    for i in 0..=5 {
        let v = lo + span * i as f64 / 5.0;
        let y = style.margin + plot_h * (1.0 - i as f64 / 5.0);
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="{:.1}" text-anchor="end">{v:.1}</text>"#,
            style.margin - 6.0,
            y + style.font_px * 0.35,
            style.font_px
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Render grouped boxplots (Fig. 9: one box per device unit per pair) as a
/// complete SVG document. `groups` is `(label, box)`.
pub fn boxplot_svg(groups: &[(String, BoxStats)], title: &str, style: &SvgStyle) -> String {
    let mut out = String::new();
    svg_header(&mut out, style, title);
    if groups.is_empty() {
        out.push_str("</svg>\n");
        return out;
    }
    let plot_w = style.width - 2.0 * style.margin;
    let plot_h = style.height - 2.0 * style.margin;
    let lo = groups
        .iter()
        .map(|(_, b)| b.fliers.iter().cloned().fold(b.whisker_lo, f64::min))
        .fold(f64::MAX, f64::min);
    let hi = groups
        .iter()
        .map(|(_, b)| b.fliers.iter().cloned().fold(b.whisker_hi, f64::max))
        .fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-12);
    let y_of = |v: f64| style.margin + plot_h * (1.0 - (v - lo) / span);
    let slot_w = plot_w / groups.len() as f64;
    let box_w = slot_w * 0.5;

    for (i, (label, b)) in groups.iter().enumerate() {
        let cx = style.margin + (i as f64 + 0.5) * slot_w;
        // Whiskers.
        let _ = writeln!(
            out,
            r#"<line x1="{cx:.1}" y1="{:.1}" x2="{cx:.1}" y2="{:.1}" stroke="black"/>"#,
            y_of(b.whisker_lo),
            y_of(b.whisker_hi)
        );
        // Box.
        let _ = writeln!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="{box_w:.1}" height="{:.1}" fill="#a6c8ff" stroke="black"/>"##,
            cx - box_w / 2.0,
            y_of(b.q3),
            (y_of(b.q1) - y_of(b.q3)).max(0.5)
        );
        // Median.
        let _ = writeln!(
            out,
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black" stroke-width="2"/>"#,
            cx - box_w / 2.0,
            y_of(b.median),
            cx + box_w / 2.0,
            y_of(b.median)
        );
        // Fliers.
        for f in &b.fliers {
            let _ = writeln!(
                out,
                r##"<circle cx="{cx:.1}" cy="{:.1}" r="2.5" fill="none" stroke="#666"/>"##,
                y_of(*f)
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{cx:.1}" y="{:.1}" font-size="{:.1}" text-anchor="middle">{}</text>"#,
            style.height - style.margin * 0.4,
            style.font_px,
            escape(label)
        );
    }
    for i in 0..=5 {
        let v = lo + span * i as f64 / 5.0;
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="{:.1}" text-anchor="end">{v:.1}</text>"#,
            style.margin - 6.0,
            y_of(v) + style.font_px * 0.35,
            style.font_px
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_heatmap() -> Heatmap {
        Heatmap::build(&[705u32, 1095, 1410], &[705u32, 1095, 1410], |r, c| {
            if r == c {
                None
            } else {
                Some((r + c) as f64 / 100.0)
            }
        })
    }

    #[test]
    fn heatmap_svg_is_wellformed_and_complete() {
        let svg = heatmap_svg(&sample_heatmap(), "test <map>", &SvgStyle::default());
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 6 filled cells + 3 blank diagonal cells.
        assert_eq!(svg.matches("<rect ").count(), 9);
        // Title is escaped.
        assert!(svg.contains("test &lt;map&gt;"));
        assert!(!svg.contains("<map>"));
    }

    #[test]
    fn heatmap_svg_is_deterministic() {
        let a = heatmap_svg(&sample_heatmap(), "t", &SvgStyle::default());
        let b = heatmap_svg(&sample_heatmap(), "t", &SvgStyle::default());
        assert_eq!(a, b);
    }

    #[test]
    fn heat_color_endpoints() {
        assert_eq!(heat_color(0.0), "rgb(0,200,0)");
        assert_eq!(heat_color(1.0), "rgb(220,0,0)");
        // Midpoint is yellow-ish.
        assert_eq!(heat_color(0.5), "rgb(255,220,0)");
    }

    #[test]
    fn violin_pair_svg_draws_two_violins() {
        let up: Vec<f64> = (0..100).map(|i| 10.0 + (i % 10) as f64).collect();
        let down: Vec<f64> = (0..100).map(|i| 5.0 + (i % 5) as f64 * 0.1).collect();
        let l = ViolinSummary::build("increasing", &up, 24).unwrap();
        let r = ViolinSummary::build("decreasing", &down, 24).unwrap();
        let svg = violin_pair_svg(&l, &r, "Fig4", &SvgStyle::default());
        assert_eq!(svg.matches("<path ").count(), 2);
        assert!(svg.contains("increasing") && svg.contains("decreasing"));
    }

    #[test]
    fn scatter_svg_marks_outliers_differently() {
        let xs = vec![5.0, 5.1, 4.9, 300.0];
        let clusters = vec![Some(0), Some(0), Some(0), None];
        let svg = scatter_svg(&xs, &clusters, "Fig5", &SvgStyle::default());
        assert_eq!(svg.matches("<circle ").count(), 4);
        assert_eq!(svg.matches(r##"fill="none" stroke="#888""##).count(), 1);
    }

    #[test]
    fn boxplot_svg_one_box_per_group() {
        let xs: Vec<f64> = (0..50).map(|i| 5.0 + (i % 7) as f64 * 0.3).collect();
        let groups: Vec<(String, BoxStats)> = (0..4)
            .map(|u| (format!("unit {u}"), BoxStats::of(&xs).unwrap()))
            .collect();
        let svg = boxplot_svg(&groups, "Fig9", &SvgStyle::default());
        assert_eq!(svg.matches(r##"fill="#a6c8ff""##).count(), 4);
        assert!(svg.contains("unit 3"));
    }

    #[test]
    fn empty_inputs_produce_valid_documents() {
        let empty_hm = Heatmap::new(vec![], vec![]);
        let svg = heatmap_svg(&empty_hm, "empty", &SvgStyle::default());
        assert!(svg.trim_end().ends_with("</svg>"));
        let svg = scatter_svg(&[], &[], "empty", &SvgStyle::default());
        assert!(svg.trim_end().ends_with("</svg>"));
        let svg = boxplot_svg(&[], "empty", &SvgStyle::default());
        assert!(svg.trim_end().ends_with("</svg>"));
    }
}
