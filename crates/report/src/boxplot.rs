//! Boxplot statistics (Fig. 9: per-unit switching-latency boxplots on the
//! four A100s): five-number summary with 1.5·IQR whiskers and fliers.

use latest_stats::quantile;

/// Five-number boxplot summary.
#[derive(Clone, Debug)]
pub struct BoxStats {
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lowest observation within `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest observation within `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers.
    pub fliers: Vec<f64>,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Compute from samples. Returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<BoxStats> {
        if samples.is_empty() {
            return None;
        }
        let q1 = quantile(samples, 0.25);
        let median = quantile(samples, 0.50);
        let q3 = quantile(samples, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = samples
            .iter()
            .copied()
            .filter(|&x| x >= lo_fence)
            .fold(f64::INFINITY, f64::min);
        let whisker_hi = samples
            .iter()
            .copied()
            .filter(|&x| x <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max);
        let fliers = samples
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        Some(BoxStats {
            q1,
            median,
            q3,
            whisker_lo,
            whisker_hi,
            fliers,
            n: samples.len(),
        })
    }

    /// One-line rendering: `|-- [q1 | med | q3] --| (+k fliers)`.
    pub fn render_line(&self, label: &str) -> String {
        let fliers = if self.fliers.is_empty() {
            String::new()
        } else {
            format!("  (+{} fliers)", self.fliers.len())
        };
        format!(
            "{label:<18} {:>8.2} |-- [{:>8.2} | {:>8.2} | {:>8.2}] --| {:>8.2}{fliers}",
            self.whisker_lo, self.q1, self.median, self.q3, self.whisker_hi
        )
    }
}

/// A grouped boxplot figure (Fig. 9 shape: one labelled box per group), as
/// one [`Artifact`](crate::Artifact).
#[derive(Clone, Debug, Default)]
pub struct BoxplotGroup {
    /// Figure title.
    pub title: String,
    /// `(label, box)` per group, in display order.
    pub groups: Vec<(String, BoxStats)>,
}

impl BoxplotGroup {
    /// An empty group figure.
    pub fn new(title: impl Into<String>) -> Self {
        BoxplotGroup {
            title: title.into(),
            groups: Vec::new(),
        }
    }

    /// Append one labelled sample; silently skipped when empty.
    pub fn add(&mut self, label: impl Into<String>, samples: &[f64]) -> &mut Self {
        if let Some(stats) = BoxStats::of(samples) {
            self.groups.push((label.into(), stats));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_ordered() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = BoxStats::of(&data).unwrap();
        assert!(b.whisker_lo <= b.q1);
        assert!(b.q1 <= b.median && b.median <= b.q3);
        assert!(b.q3 <= b.whisker_hi);
        assert_eq!(b.n, 100);
        assert!(b.fliers.is_empty());
        assert_eq!(b.median, 50.5);
    }

    #[test]
    fn fliers_detected() {
        let mut data: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        data.push(500.0);
        data.push(-100.0);
        let b = BoxStats::of(&data).unwrap();
        assert_eq!(b.fliers.len(), 2);
        assert!(b.whisker_hi < 500.0);
        assert!(b.whisker_lo > -100.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(BoxStats::of(&[]).is_none());
    }

    #[test]
    fn singleton_degenerate() {
        let b = BoxStats::of(&[7.0]).unwrap();
        assert_eq!(b.median, 7.0);
        assert_eq!(b.whisker_lo, 7.0);
        assert_eq!(b.whisker_hi, 7.0);
        assert!(b.fliers.is_empty());
    }

    #[test]
    fn render_contains_label_and_numbers() {
        let b = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        let line = b.render_line("1065->840");
        assert!(line.contains("1065->840"));
        assert!(line.contains("fliers"));
    }
}
