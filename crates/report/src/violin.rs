//! Violin-plot data reduction: Gaussian KDE over latency samples, split by
//! transition direction (Fig. 4: frequency increasing on the left, rising →
//! falling comparison per GPU).

use latest_stats::{quantile, Summary};

/// Latencies split by transition direction.
#[derive(Clone, Debug, Default)]
pub struct DirectionSplit {
    /// Latencies of frequency-increasing transitions (init < target).
    pub increasing: Vec<f64>,
    /// Latencies of frequency-decreasing transitions (init > target).
    pub decreasing: Vec<f64>,
}

impl DirectionSplit {
    /// Feed one pair's latencies.
    pub fn add(&mut self, init_mhz: u32, target_mhz: u32, latencies: &[f64]) {
        if target_mhz > init_mhz {
            self.increasing.extend_from_slice(latencies);
        } else if target_mhz < init_mhz {
            self.decreasing.extend_from_slice(latencies);
        }
    }

    /// Pool a campaign view's filtered latencies by transition direction
    /// (the Fig. 4 reduction; respects whatever filters the view carries).
    pub fn from_view(view: &latest_core::view::LatencyView<'_>) -> DirectionSplit {
        use latest_core::view::Direction;
        DirectionSplit {
            increasing: view.direction(Direction::Increasing).pooled_filtered_ms(),
            decreasing: view.direction(Direction::Decreasing).pooled_filtered_ms(),
        }
    }
}

/// The rendered summary of one violin: KDE evaluated on a grid plus the
/// quartile skeleton.
#[derive(Clone, Debug)]
pub struct ViolinSummary {
    /// Label of the group.
    pub label: String,
    /// Grid points (latency, ms).
    pub grid: Vec<f64>,
    /// Normalised density at each grid point (max = 1).
    pub density: Vec<f64>,
    /// Descriptive summary.
    pub summary: Summary,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
}

impl ViolinSummary {
    /// Build from samples with `bins` KDE evaluation points.
    ///
    /// Returns `None` on fewer than 3 samples (no meaningful density).
    pub fn build(label: impl Into<String>, samples: &[f64], bins: usize) -> Option<ViolinSummary> {
        if samples.len() < 3 || bins < 2 {
            return None;
        }
        let summary = Summary::of(samples);
        // Silverman's rule of thumb.
        let n = samples.len() as f64;
        let bw = (1.06 * summary.stdev * n.powf(-0.2)).max(1e-9);

        let lo = summary.min - 2.0 * bw;
        let hi = summary.max + 2.0 * bw;
        let grid: Vec<f64> = (0..bins)
            .map(|i| lo + (hi - lo) * i as f64 / (bins - 1) as f64)
            .collect();
        let mut density: Vec<f64> = grid
            .iter()
            .map(|&x| {
                samples
                    .iter()
                    .map(|&s| {
                        let z = (x - s) / bw;
                        (-0.5 * z * z).exp()
                    })
                    .sum::<f64>()
            })
            .collect();
        let max = density.iter().cloned().fold(f64::MIN, f64::max);
        if max > 0.0 {
            for d in &mut density {
                *d /= max;
            }
        }
        Some(ViolinSummary {
            label: label.into(),
            grid,
            density,
            summary,
            q1: quantile(samples, 0.25),
            median: quantile(samples, 0.50),
            q3: quantile(samples, 0.75),
        })
    }

    /// Number of distinct density modes (local maxima above `threshold` of
    /// the peak) — multi-modal violins are the RTX Quadro signature.
    pub fn mode_count(&self, threshold: f64) -> usize {
        let d = &self.density;
        (1..d.len().saturating_sub(1))
            .filter(|&i| d[i] > threshold && d[i] >= d[i - 1] && d[i] > d[i + 1])
            .count()
    }

    /// ASCII rendering: one row per grid point, bar length ∝ density.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} (n={}, median={:.2} ms, IQR {:.2}-{:.2})\n",
            self.label, self.summary.n, self.median, self.q1, self.q3
        ));
        // Downsample the grid to ~24 display rows.
        let rows = 24usize.min(self.grid.len());
        for r in 0..rows {
            let i = r * (self.grid.len() - 1) / (rows - 1).max(1);
            let bar_len = (self.density[i] * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>10.2} | {}\n",
                self.grid[i],
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

/// The paper's Fig. 4 shape: two violins side by side, frequency-increasing
/// transitions against decreasing ones, as one
/// [`Artifact`](crate::Artifact).
#[derive(Clone, Debug)]
pub struct ViolinPair {
    /// Figure title.
    pub title: String,
    /// Left violin (conventionally the increasing direction).
    pub left: ViolinSummary,
    /// Right violin (conventionally the decreasing direction).
    pub right: ViolinSummary,
}

impl ViolinPair {
    /// Pair two violins under a title.
    pub fn new(title: impl Into<String>, left: ViolinSummary, right: ViolinSummary) -> Self {
        ViolinPair {
            title: title.into(),
            left,
            right,
        }
    }

    /// Build the Fig. 4 figure from a [`DirectionSplit`] with `bins` KDE
    /// grid points per violin. `None` when either direction has fewer than
    /// 3 samples.
    pub fn from_split(
        title: impl Into<String>,
        split: &DirectionSplit,
        bins: usize,
    ) -> Option<ViolinPair> {
        Some(ViolinPair::new(
            title,
            ViolinSummary::build("increasing", &split.increasing, bins)?,
            ViolinSummary::build("decreasing", &split.decreasing, bins)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimodal() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..200 {
            v.push(20.0 + (i % 10) as f64 * 0.2);
        }
        for i in 0..200 {
            v.push(135.0 + (i % 10) as f64 * 0.2);
        }
        v
    }

    #[test]
    fn direction_split_routes_by_sign() {
        let mut split = DirectionSplit::default();
        split.add(705, 1410, &[1.0, 2.0]);
        split.add(1410, 705, &[3.0]);
        split.add(900, 900, &[99.0]); // same freq: ignored
        assert_eq!(split.increasing, vec![1.0, 2.0]);
        assert_eq!(split.decreasing, vec![3.0]);
    }

    #[test]
    fn kde_peaks_near_the_modes() {
        let v = ViolinSummary::build("quadro-like", &bimodal(), 200).unwrap();
        // Find the grid position of the max density: must be near 20 or 135.
        let (imax, _) = v
            .density
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let peak = v.grid[imax];
        assert!(
            (peak - 21.0).abs() < 5.0 || (peak - 136.0).abs() < 5.0,
            "peak at {peak}"
        );
        assert!(v.mode_count(0.3) >= 2, "bimodal data must show 2+ modes");
    }

    #[test]
    fn unimodal_data_has_one_mode() {
        let data: Vec<f64> = (0..300)
            .map(|i| 15.0 + ((i * 37) % 100) as f64 * 0.01)
            .collect();
        let v = ViolinSummary::build("a100-like", &data, 150).unwrap();
        assert_eq!(v.mode_count(0.5), 1);
    }

    #[test]
    fn quartiles_ordered() {
        let v = ViolinSummary::build("x", &bimodal(), 100).unwrap();
        assert!(v.q1 <= v.median && v.median <= v.q3);
        assert!(v.summary.min <= v.q1 && v.q3 <= v.summary.max);
    }

    #[test]
    fn too_few_samples_is_none() {
        assert!(ViolinSummary::build("x", &[1.0, 2.0], 100).is_none());
        assert!(ViolinSummary::build("x", &[1.0, 2.0, 3.0], 1).is_none());
    }

    #[test]
    fn render_produces_bars() {
        let v = ViolinSummary::build("demo", &bimodal(), 100).unwrap();
        let txt = v.render(40);
        assert!(txt.contains("demo"));
        assert!(txt.contains('#'));
        assert!(txt.lines().count() >= 10);
    }
}
