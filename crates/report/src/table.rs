//! Aligned plain-text tables — Table I (hardware setup) and Table II
//! (latency summaries) renderers.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn with_header(cols: &[&str]) -> Self {
        TextTable {
            header: cols.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: String::new(),
        }
    }

    /// Attach a title (used by the [`Artifact`](crate::Artifact)
    /// renderings; [`TextTable::render`] itself stays title-less).
    pub fn titled(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// The attached title (empty unless set by [`TextTable::titled`]).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of display-able values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with per-column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", c, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a Markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// One device's row in a cross-device latency comparison (the fleet
/// driver's aggregation feeds this; Table II of the paper is the
/// single-statistic ancestor of the shape).
#[derive(Clone, Debug)]
pub struct CrossDeviceRow {
    /// Device name.
    pub device: String,
    /// Ordered pairs scheduled on the device.
    pub pairs_total: usize,
    /// Pairs that completed with measurements.
    pub pairs_completed: usize,
    /// Best (minimum) filtered per-pair latency (ms).
    pub best_ms: f64,
    /// Mean of the filtered per-pair means (ms).
    pub mean_ms: f64,
    /// Worst (maximum) filtered per-pair latency (ms).
    pub worst_ms: f64,
}

impl From<&latest_core::FleetDeviceSummary> for CrossDeviceRow {
    fn from(s: &latest_core::FleetDeviceSummary) -> Self {
        CrossDeviceRow {
            device: s.device_name.clone(),
            pairs_total: s.pairs_total,
            pairs_completed: s.pairs_completed,
            best_ms: s.best_ms,
            mean_ms: s.mean_ms,
            worst_ms: s.worst_ms,
        }
    }
}

impl From<latest_core::FleetDeviceSummary> for CrossDeviceRow {
    fn from(s: latest_core::FleetDeviceSummary) -> Self {
        CrossDeviceRow::from(&s)
    }
}

/// Render the cross-device comparison table: one row per device of a fleet
/// run, latency statistics over its completed pairs.
pub fn cross_device_table(rows: &[CrossDeviceRow]) -> TextTable {
    let mut table = TextTable::with_header(&[
        "device",
        "pairs",
        "completed",
        "best[ms]",
        "mean[ms]",
        "worst[ms]",
    ]);
    let fmt = |x: f64| {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "-".to_string()
        }
    };
    for r in rows {
        table.row(&[
            r.device.clone(),
            r.pairs_total.to_string(),
            r.pairs_completed.to_string(),
            fmt(r.best_ms),
            fmt(r.mean_ms),
            fmt(r.worst_ms),
        ]);
    }
    table
}

/// Render one campaign's per-pair summary table (the `latest run` stdout
/// shape): one row per scheduled pair with its filtered statistics and
/// outcome, selected through the core query views instead of ad-hoc
/// iteration.
pub fn campaign_summary_table(result: &latest_core::CampaignResult) -> TextTable {
    use latest_core::view::{LatencyView, OutcomeKind, PairStat};
    use latest_core::PairOutcome;

    // The memory column only appears when the campaign actually swept the
    // memory domain, so single-domain output stays byte-identical.
    let has_mem = result
        .pairs()
        .iter()
        .any(|p| p.init.has_mem() || p.target.has_mem());
    let mut header = vec!["init[MHz]", "target[MHz]"];
    if has_mem {
        header.push("mem[MHz]");
    }
    header.extend(["n", "min[ms]", "mean[ms]", "max[ms]", "outliers", "status"]);
    let mut table = TextTable::with_header(&header).titled(format!(
        "{} (device {}): per-pair switching latencies",
        result.device_name, result.device_index
    ));
    let mem_cell = |pair: &latest_core::view::PairView<'_>| -> String {
        match (pair.init_mem_mhz(), pair.target_mem_mhz()) {
            (Some(i), Some(t)) if i == t => i.to_string(),
            (Some(i), Some(t)) => format!("{i}->{t}"),
            (Some(i), None) => format!("{i}->default"),
            (None, Some(t)) => format!("default->{t}"),
            (None, None) => "-".to_string(),
        }
    };
    for pair in LatencyView::of(result).pairs() {
        let m = pair.measurement();
        let status = match &m.outcome {
            PairOutcome::Completed(_) => "ok".to_string(),
            PairOutcome::PowerLimited { .. } => "power-limited".to_string(),
            PairOutcome::SkippedIndistinguishable => "indistinguishable".to_string(),
            PairOutcome::RetriesExhausted { attempts, .. } => {
                format!("unmeasurable ({attempts} attempts)")
            }
            PairOutcome::Cancelled => "cancelled".to_string(),
        };
        let mut row = vec![pair.init_mhz().to_string(), pair.target_mhz().to_string()];
        if has_mem {
            row.push(mem_cell(&pair));
        }
        match (pair.outcome(), pair.filtered_ms()) {
            (OutcomeKind::Completed, Some(inliers)) => {
                let a = m.analysis.as_ref().expect("completed implies analysed");
                row.extend([
                    inliers.len().to_string(),
                    format!("{:.3}", pair.stat(PairStat::Min).expect("has data")),
                    format!("{:.3}", pair.stat(PairStat::Mean).expect("has data")),
                    format!("{:.3}", pair.stat(PairStat::Max).expect("has data")),
                    a.outliers_ms.len().to_string(),
                    status,
                ]);
            }
            _ => {
                let n = match &m.outcome {
                    PairOutcome::PowerLimited {
                        measurements_before,
                    } => measurements_before.to_string(),
                    _ => "0".to_string(),
                };
                row.extend([n, "-".into(), "-".into(), "-".into(), "-".into(), status]);
            }
        };
        table.row(&row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_like() -> TextTable {
        let mut t = TextTable::with_header(&["Model", "SM [#]", "Max SM [MHz]"]);
        t.row_display(&["RTX Quadro 6000", "72", "2100"]);
        t.row_display(&["A100 SXM-4", "108", "1410"]);
        t.row_display(&["GH200", "132", "1980"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let t = table1_like();
        let txt = t.render();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 5); // header + rule + 3 rows
                                    // All lines same length (alignment).
        let lens: Vec<usize> = lines.iter().map(|l| l.trim_end().len()).collect();
        assert!(lens[2] >= lens[0] - 2 && lens[2] <= lens[0] + 2);
        assert!(txt.contains("A100 SXM-4"));
    }

    #[test]
    fn markdown_rendering() {
        let md = table1_like().render_markdown();
        assert!(md.starts_with("| Model |"));
        assert!(md.contains("|---|---|---|"));
        assert_eq!(md.lines().count(), 5);
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = TextTable::with_header(&["a", "b"]);
        t.row_display(&["only-one"]);
    }

    #[test]
    fn cross_device_rows_render_per_device() {
        let rows = vec![
            CrossDeviceRow {
                device: "NVIDIA A100-SXM4-40GB".into(),
                pairs_total: 6,
                pairs_completed: 6,
                best_ms: 8.1,
                mean_ms: 9.8,
                worst_ms: 21.4,
            },
            CrossDeviceRow {
                device: "NVIDIA GH200".into(),
                pairs_total: 6,
                pairs_completed: 4,
                best_ms: 55.0,
                mean_ms: 180.5,
                worst_ms: 455.0,
            },
        ];
        let txt = cross_device_table(&rows).render();
        assert!(txt.contains("A100"));
        assert!(txt.contains("GH200"));
        assert!(txt.contains("455.000"));
        assert_eq!(txt.lines().count(), 4); // header + rule + 2 devices

        // A device with no completed pairs renders dashes, not inf/NaN.
        let empty = vec![CrossDeviceRow {
            device: "idle".into(),
            pairs_total: 2,
            pairs_completed: 0,
            best_ms: f64::INFINITY,
            mean_ms: f64::NAN,
            worst_ms: f64::NEG_INFINITY,
        }];
        let txt = cross_device_table(&empty).render();
        assert!(!txt.contains("inf") && !txt.contains("NaN"));
    }
}
