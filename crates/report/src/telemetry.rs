//! Service telemetry rendering: the per-stage latency quantile table
//! behind `latest queue stats`.
//!
//! A [`TelemetrySnapshot`] is one drain/serve call's merged stage
//! histograms; this module renders it through the same [`Artifact`]
//! contract as every other figure — text, CSV and JSON from one table.
//!
//! [`Artifact`]: crate::Artifact

use latest_telemetry::{Stage, TelemetrySnapshot};

use crate::table::TextTable;

/// Human-readable duration for a nanosecond figure.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Per-stage latency table (count, p50/p90/p99, max) over a drain's
/// telemetry snapshot, one row per stage of the service taxonomy.
/// Stages with no samples render `-` placeholders.
pub fn stage_latency_table(snapshot: &TelemetrySnapshot) -> TextTable {
    let mut table = TextTable::with_header(&["stage", "count", "p50", "p90", "p99", "max"]);
    for stage in Stage::ALL {
        let hist = snapshot.stage(stage);
        let q = |p: f64| {
            hist.quantile(p)
                .map(fmt_ns)
                .unwrap_or_else(|| "-".to_string())
        };
        table.row(&[
            stage.name().to_string(),
            hist.count().to_string(),
            q(0.50),
            q(0.90),
            q(0.99),
            hist.max().map(fmt_ns).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.titled(format!(
        "service stage latency — {} sample(s), {} dropped event(s)",
        snapshot.records_total(),
        snapshot.dropped_events
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_telemetry::Registry;

    #[test]
    fn every_stage_gets_a_row() {
        let registry = Registry::new(1);
        registry.recorder(0).record(Stage::ShardExec, 2_000_000);
        registry.recorder(0).record(Stage::QueueWait, 500);
        let table = stage_latency_table(&registry.snapshot());
        assert_eq!(table.n_rows(), Stage::COUNT);
        let rendered = table.render();
        assert!(rendered.contains("shard-exec"), "{rendered}");
        assert!(rendered.contains("2.00ms"), "{rendered}");
        assert!(rendered.contains("500ns"), "{rendered}");
        assert!(table.title().contains("2 sample(s)"), "{}", table.title());
    }

    #[test]
    fn empty_stages_render_placeholders() {
        let table = stage_latency_table(&TelemetrySnapshot::default());
        for row in table.rows() {
            assert_eq!(row[1], "0");
            assert_eq!(row[2], "-");
            assert_eq!(row[5], "-");
        }
    }

    #[test]
    fn duration_formatting_scales_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_000_000), "2.00ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.50s");
    }
}
