//! The paper-artefact bundle: one call renders a campaign's complete
//! evaluation directory.
//!
//! A [`Bundle`] is an ordered set of named [`Artifact`]s. Writing it emits
//! every artifact in **all four** formats (`<name>.txt/.svg/.csv/.json`)
//! plus `EXPERIMENTS.md` (the experiment-record sections) and
//! `summary.json` (the machine-readable per-pair summary CI trends on).
//! [`Bundle::for_campaign`] composes the standard paper set for one
//! campaign result: min/mean/max heatmaps (Fig. 3 layout), the
//! direction-split violin pair (Fig. 4), the worst pair's measurement
//! scatter (Figs. 5/6 shape), per-pair boxplots (Fig. 9 shape), and the
//! per-pair summary table (Table II shape).
//!
//! Every emission is deterministic: rendering the same stored result twice
//! produces bitwise-identical files, so bundles can be committed, diffed
//! and compared across machines.

use std::fs;
use std::path::{Path, PathBuf};

use latest_core::view::{LatencyView, PairStat};
use latest_core::CampaignResult;

use crate::artifact::{render_to_string, Artifact, Format, ReportResult};
use crate::boxplot::BoxplotGroup;
use crate::experiments::ExperimentRecord;
use crate::heatmap::Heatmap;
use crate::scatter::Scatter;
use crate::table::campaign_summary_table;
use crate::violin::{DirectionSplit, ViolinPair};

/// An ordered set of named artifacts plus experiment records, renderable
/// as one output directory.
#[derive(Default)]
pub struct Bundle {
    entries: Vec<(String, Box<dyn Artifact>)>,
    experiments: Vec<ExperimentRecord>,
    extra_files: Vec<(String, String)>,
}

impl Bundle {
    /// An empty bundle.
    pub fn new() -> Self {
        Bundle::default()
    }

    /// Append one named artifact (the name becomes the file stem).
    pub fn add(&mut self, name: impl Into<String>, artifact: impl Artifact + 'static) -> &mut Self {
        self.entries.push((name.into(), Box::new(artifact)));
        self
    }

    /// Append one experiment record (rendered into `EXPERIMENTS.md`).
    pub fn add_experiment(&mut self, record: ExperimentRecord) -> &mut Self {
        self.experiments.push(record);
        self
    }

    /// Append one verbatim extra file (e.g. a machine-readable summary).
    pub fn add_file(&mut self, name: impl Into<String>, content: impl Into<String>) -> &mut Self {
        self.extra_files.push((name.into(), content.into()));
        self
    }

    /// The artifact names, in emission order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Compose the standard paper-artefact set for one campaign result.
    pub fn for_campaign(result: &CampaignResult) -> Bundle {
        let mut bundle = Bundle::new();
        let device = result.device_name.clone();
        let completed = LatencyView::of(result).completed();
        let freqs = LatencyView::of(result).frequencies_mhz();
        let mem_clocks = completed.mem_clocks_mhz();

        // Fig. 3 layout: one heatmap per per-pair statistic. Core-only
        // campaigns keep the core×core grid; a 2-D sweep generalises to the
        // full state×state grid (core-only cells would all miss otherwise).
        let stats = [
            ("heatmap_min", PairStat::Min, "minimum (best-case)"),
            ("heatmap_mean", PairStat::Mean, "mean"),
            ("heatmap_max", PairStat::Max, "maximum (worst-case)"),
        ];
        let states = completed.states();
        for (name, stat, label) in stats {
            let hm = if mem_clocks.is_empty() {
                Heatmap::from_view(&completed, &freqs, stat)
            } else {
                Heatmap::from_view_states(&completed, &states, stat)
            }
            .with_title(format!("{device}: {label} switching latencies [ms]"));
            bundle.add(name, hm);
        }

        // One paper-layout core×core slice per memory clock of a 2-D
        // sweep: the core transitions measured with the memory domain
        // pinned at that clock.
        for &mem in &mem_clocks {
            for (stem, stat, label) in stats {
                let hm = Heatmap::from_view_mem_slice(&completed, &freqs, stat, mem).with_title(
                    format!("{device}: {label} switching latencies at mem {mem} MHz [ms]"),
                );
                bundle.add(format!("{stem}_m{mem}"), hm);
            }
        }

        // Fig. 4: direction-split violins (skipped when a direction has too
        // few samples to estimate a density).
        let split = DirectionSplit::from_view(&completed);
        if let Some(pair) = ViolinPair::from_split(
            format!("{device}: switching latencies by transition direction [ms]"),
            &split,
            120,
        ) {
            bundle.add("violin_directions", pair);
        }

        // Figs. 5/6 shape: the worst pair's per-measurement scatter, raw
        // sample with the filter's outliers marked as noise.
        if let Some((_, init, target)) = completed.stat_extreme_state(PairStat::Max, true) {
            if let Some(pair) = completed.pair_state(init, target) {
                if let (Some(raw), Some(analysis)) =
                    (pair.raw_ms(), pair.measurement().analysis.as_ref())
                {
                    let is_outlier = |x: f64| {
                        analysis
                            .outliers_ms
                            .iter()
                            .any(|&o| o.to_bits() == x.to_bits())
                    };
                    let clusters: Vec<Option<usize>> = raw
                        .iter()
                        .map(|&x| if is_outlier(x) { None } else { Some(0) })
                        .collect();
                    bundle.add(
                        "scatter_worst_pair",
                        Scatter::new(
                            format!(
                                "{device}: {init} -> {target} MHz per-measurement latencies [ms]"
                            ),
                            raw.to_vec(),
                            clusters,
                        ),
                    );
                }
            }
        }

        // Fig. 9 shape: one box per completed pair.
        let mut boxes = BoxplotGroup::new(format!("{device}: per-pair filtered latencies [ms]"));
        for pair in completed.pairs() {
            if let Some(xs) = pair.filtered_ms() {
                boxes.add(format!("{}->{}", pair.init(), pair.target()), xs);
            }
        }
        if !boxes.groups.is_empty() {
            bundle.add("boxplot_pairs", boxes);
        }

        // Table II shape: the per-pair summary table.
        bundle.add("summary_table", campaign_summary_table(result));

        // EXPERIMENTS.md record + the machine-readable summary.
        bundle.add_experiment(campaign_record(result));
        bundle.add_file("summary.json", summary_json(result));
        bundle
    }

    /// Render every output file as `(relative file name, content)` pairs,
    /// in deterministic order, without touching the filesystem.
    pub fn render_all(&self) -> ReportResult<Vec<(String, String)>> {
        let mut out = Vec::new();
        for (name, artifact) in &self.entries {
            for format in Format::ALL {
                out.push((
                    format!("{name}.{}", format.extension()),
                    render_to_string(artifact.as_ref(), format)?,
                ));
            }
        }
        if !self.experiments.is_empty() {
            let mut md = String::from("# Experiments\n\n");
            for record in &self.experiments {
                md.push_str(&record.render_markdown());
            }
            out.push(("EXPERIMENTS.md".to_string(), md));
        }
        for (name, content) in &self.extra_files {
            out.push((name.clone(), content.clone()));
        }
        Ok(out)
    }

    /// Write the bundle into `dir` (created if needed), returning the
    /// written paths in emission order.
    pub fn write_to(&self, dir: &Path) -> ReportResult<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (name, content) in self.render_all()? {
            let path = dir.join(name);
            fs::write(&path, content)?;
            written.push(path);
        }
        Ok(written)
    }
}

/// The experiment record a bundle embeds for an archived run: the run's
/// own headline statistics (no paper column — the archive compares runs to
/// each other, not to the paper).
fn campaign_record(result: &CampaignResult) -> ExperimentRecord {
    let completed = LatencyView::of(result).completed();
    let mut record = ExperimentRecord::new(
        "campaign",
        format!("{} switching-latency campaign", result.device_name),
        format!(
            "seed {}, {} scheduled pairs, {} completed",
            result.seed,
            result.pairs().len(),
            completed.count()
        ),
    );
    let fmt = |v: Option<(f64, latest_core::FreqState, latest_core::FreqState)>| match v {
        Some((ms, init, target)) => format!("{ms:.3} ({init}->{target})"),
        None => "-".to_string(),
    };
    record.compare(
        "best-case min [ms]",
        "-",
        fmt(completed.stat_extreme_state(PairStat::Min, false)),
        true,
        "fastest measured transition",
    );
    record.compare(
        "worst-case max [ms]",
        "-",
        fmt(completed.stat_extreme_state(PairStat::Max, true)),
        true,
        "slowest measured transition",
    );
    let mean = completed
        .stat_range(PairStat::Mean)
        .map_or("-".to_string(), |(_, mean, _)| format!("{mean:.3}"));
    record.compare(
        "mean of per-pair means [ms]",
        "-",
        mean,
        true,
        "averaged over completed pairs",
    );
    record
}

/// The machine-readable per-pair summary (`summary.json`): what the CI
/// bench trajectory ingests.
fn summary_json(result: &CampaignResult) -> String {
    use serde::Serialize as _;
    let completed = LatencyView::of(result).completed();
    let pairs: Vec<serde::Value> = completed
        .pairs()
        .filter_map(|p| {
            let n = p.filtered_ms()?.len();
            let mut entries = vec![
                ("init_mhz".to_string(), p.init_mhz().to_value()),
                ("target_mhz".to_string(), p.target_mhz().to_value()),
            ];
            // Memory-domain fields only when the pair carries them, so
            // single-domain summaries stay byte-identical.
            if let Some(mem) = p.init_mem_mhz() {
                entries.push(("init_mem_mhz".to_string(), mem.to_value()));
            }
            if let Some(mem) = p.target_mem_mhz() {
                entries.push(("target_mem_mhz".to_string(), mem.to_value()));
            }
            if p.init_mem_mhz().is_some() || p.target_mem_mhz().is_some() {
                entries.push(("kind".to_string(), p.kind().label().to_value()));
            }
            entries.extend([
                ("n".to_string(), n.to_value()),
                (
                    "min_ms".to_string(),
                    p.stat(PairStat::Min).expect("has data").to_value(),
                ),
                (
                    "mean_ms".to_string(),
                    p.stat(PairStat::Mean).expect("has data").to_value(),
                ),
                (
                    "max_ms".to_string(),
                    p.stat(PairStat::Max).expect("has data").to_value(),
                ),
            ]);
            Some(serde::Value::Map(entries))
        })
        .collect();
    crate::artifact::json_of(serde::Value::Map(vec![
        ("device_name".to_string(), result.device_name.to_value()),
        ("device_index".to_string(), result.device_index.to_value()),
        ("seed".to_string(), result.seed.to_value()),
        ("pairs_total".to_string(), result.pairs().len().to_value()),
        ("pairs".to_string(), serde::Value::Seq(pairs)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_core::{CampaignConfig, Latest};
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn small_result(seed: u64) -> CampaignResult {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(8),
        });
        let config = CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1095, 1410])
            .measurements(6, 12)
            .simulated_sms(Some(2))
            .seed(seed)
            .build();
        Latest::new(config).run().unwrap()
    }

    #[test]
    fn campaign_bundle_contains_the_standard_set() {
        let bundle = Bundle::for_campaign(&small_result(7));
        let names = bundle.names();
        for expected in [
            "heatmap_min",
            "heatmap_mean",
            "heatmap_max",
            "violin_directions",
            "scatter_worst_pair",
            "boxplot_pairs",
            "summary_table",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        let files = bundle.render_all().unwrap();
        // Every artifact in all four formats, plus EXPERIMENTS.md and
        // summary.json.
        assert_eq!(files.len(), names.len() * 4 + 2);
        assert!(files.iter().any(|(n, _)| n == "EXPERIMENTS.md"));
        assert!(files.iter().any(|(n, _)| n == "summary.json"));
        for (name, content) in &files {
            assert!(!content.is_empty(), "{name} rendered empty");
        }
    }

    fn mem_plane_result(seed: u64) -> CampaignResult {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(8),
        });
        let config = CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .mem_frequencies_mhz(&[810, 1215])
            .measurements(6, 12)
            .simulated_sms(Some(2))
            .seed(seed)
            .build();
        Latest::new(config).run().unwrap()
    }

    #[test]
    fn two_domain_bundle_adds_per_mem_clock_slices() {
        let result = mem_plane_result(13);
        let bundle = Bundle::for_campaign(&result);
        let names = bundle.names();
        for expected in [
            "heatmap_min_m810",
            "heatmap_mean_m810",
            "heatmap_max_m810",
            "heatmap_min_m1215",
            "heatmap_mean_m1215",
            "heatmap_max_m1215",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        let files = bundle.render_all().unwrap();
        assert_eq!(files.len(), names.len() * 4 + 2);

        // The top-level heatmaps generalise to state×state grids.
        let (_, txt) = files
            .iter()
            .find(|(n, _)| n == "heatmap_max.txt")
            .expect("state heatmap present");
        assert!(txt.contains("705+m810"), "missing 2-D label:\n{txt}");

        // summary.json carries the memory dimension and the pair kind.
        let (_, summary) = files.iter().find(|(n, _)| n == "summary.json").unwrap();
        assert!(summary.contains("\"init_mem_mhz\""), "{summary}");
        assert!(summary.contains("\"kind\""), "{summary}");
        assert!(summary.contains("\"memory\"") || summary.contains("\"simultaneous\""));

        // The per-pair table gains the mem column.
        let (_, table) = files
            .iter()
            .find(|(n, _)| n == "summary_table.txt")
            .unwrap();
        assert!(table.contains("mem[MHz]"), "{table}");
    }

    #[test]
    fn two_domain_bundle_is_bitwise_deterministic() {
        let a = Bundle::for_campaign(&mem_plane_result(17))
            .render_all()
            .unwrap();
        let b = Bundle::for_campaign(&mem_plane_result(17))
            .render_all()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn core_only_bundle_has_no_mem_artifacts() {
        // A single-domain campaign must keep the exact pre-memory artifact
        // set: no slice heatmaps, no mem column, no mem summary fields.
        let bundle = Bundle::for_campaign(&small_result(7));
        let is_slice = |n: &str| {
            n.rsplit_once("_m").is_some_and(|(_, suffix)| {
                !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit())
            })
        };
        assert!(
            bundle.names().iter().all(|n| !is_slice(n)),
            "{:?}",
            bundle.names()
        );
        let files = bundle.render_all().unwrap();
        let (_, summary) = files.iter().find(|(n, _)| n == "summary.json").unwrap();
        assert!(!summary.contains("mem_mhz"));
        let (_, table) = files
            .iter()
            .find(|(n, _)| n == "summary_table.txt")
            .unwrap();
        assert!(!table.contains("mem[MHz]"));
    }

    #[test]
    fn bundle_render_is_bitwise_deterministic() {
        let result = small_result(11);
        let a = Bundle::for_campaign(&result).render_all().unwrap();
        let b = Bundle::for_campaign(&result).render_all().unwrap();
        assert_eq!(a.len(), b.len());
        for ((na, ca), (nb, cb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(ca, cb, "{na} differs between renders");
        }
    }

    #[test]
    fn bundle_writes_the_directory() {
        let dir = std::env::temp_dir().join(format!("latest_bundle_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let bundle = Bundle::for_campaign(&small_result(3));
        let written = bundle.write_to(&dir).unwrap();
        assert!(!written.is_empty());
        for path in &written {
            assert!(path.is_file(), "{} missing", path.display());
        }
        assert!(dir.join("EXPERIMENTS.md").is_file());
        assert!(dir.join("heatmap_max.svg").is_file());
        assert!(dir.join("summary_table.csv").is_file());
        std::fs::remove_dir_all(&dir).ok();
    }
}
