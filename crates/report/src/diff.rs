//! Campaign-to-campaign comparison: per-pair latency deltas with
//! Mann–Whitney significance.
//!
//! The archive makes runs durable; [`CampaignDiff`] makes them comparable.
//! Given two campaign results (a baseline `A` and a candidate `B`), it
//! pairs up their common frequency transitions, tests each pair's
//! outlier-filtered latency samples with the distribution-free
//! Mann–Whitney U test
//! ([`latest_stats::hypothesis::mann_whitney_u`]), and classifies every
//! significant mean increase as a **regression** (and decrease as an
//! improvement). The rendered views — a signed delta heatmap and a
//! per-pair regression table — drive `latest diff`, whose exit code turns
//! a significant regression into a CI failure.

use latest_core::view::LatencyView;
use latest_core::CampaignResult;
use latest_stats::hypothesis::mann_whitney_u;

use crate::heatmap::Heatmap;
use crate::table::TextTable;

/// One frequency pair's latency change between two campaigns.
#[derive(Clone, Debug)]
pub struct PairDelta {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// Mean filtered latency in run A (ms).
    pub mean_a_ms: f64,
    /// Mean filtered latency in run B (ms).
    pub mean_b_ms: f64,
    /// `mean_b_ms − mean_a_ms`: positive = B is slower.
    pub delta_ms: f64,
    /// Two-sided Mann–Whitney p-value; `None` when either sample was too
    /// small to test.
    pub p_value: Option<f64>,
    /// Whether the samples differ significantly at the diff's alpha.
    pub significant: bool,
}

impl PairDelta {
    /// A significant slowdown in B relative to A.
    pub fn is_regression(&self) -> bool {
        self.significant && self.delta_ms > 0.0
    }

    /// A significant speedup in B relative to A.
    pub fn is_improvement(&self) -> bool {
        self.significant && self.delta_ms < 0.0
    }
}

/// The comparison of two campaigns, pair by pair.
#[derive(Clone, Debug)]
pub struct CampaignDiff {
    /// Device of run A (the baseline).
    pub device_a: String,
    /// Device of run B (the candidate).
    pub device_b: String,
    /// Significance level the per-pair tests used.
    pub alpha: f64,
    /// Deltas for every pair completed in both runs, in A's schedule order.
    pub deltas: Vec<PairDelta>,
    /// Pairs completed only in A.
    pub only_in_a: Vec<(u32, u32)>,
    /// Pairs completed only in B.
    pub only_in_b: Vec<(u32, u32)>,
}

impl CampaignDiff {
    /// Compare two campaign results at **family-wise** significance level
    /// `alpha` (conventionally 0.05).
    ///
    /// A campaign diff runs one Mann–Whitney test per common pair — dozens
    /// of tests for a heatmap-shaped campaign — so raw per-test alpha
    /// would flag a false regression in most diffs of identical code
    /// (1 − 0.95³⁰ ≈ 0.79 for 30 pairs). Significance is therefore
    /// decided by the Holm–Bonferroni step-down over the whole family of
    /// pair tests, which controls the probability of *any* false
    /// significant pair at `alpha` while staying more powerful than plain
    /// Bonferroni. The recorded [`PairDelta::p_value`]s stay raw
    /// (uncorrected) for transparency.
    pub fn between(a: &CampaignResult, b: &CampaignResult, alpha: f64) -> CampaignDiff {
        let view_a = LatencyView::of(a).completed();
        let view_b = LatencyView::of(b).completed();
        let mut deltas = Vec::new();
        let mut only_in_a = Vec::new();
        for pa in view_a.pairs() {
            let Some(xs_a) = pa.filtered_ms() else {
                continue;
            };
            let (init, target) = (pa.init_mhz(), pa.target_mhz());
            let Some(xs_b) = view_b.pair(init, target).and_then(|p| p.filtered_ms()) else {
                only_in_a.push((init, target));
                continue;
            };
            let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
            let (mean_a, mean_b) = (mean(xs_a), mean(xs_b));
            let test = mann_whitney_u(xs_a, xs_b, alpha);
            deltas.push(PairDelta {
                init_mhz: init,
                target_mhz: target,
                mean_a_ms: mean_a,
                mean_b_ms: mean_b,
                delta_ms: mean_b - mean_a,
                p_value: test.as_ref().map(|t| t.p_value),
                significant: false, // decided below, family-wise
            });
        }
        holm_mark_significant(&mut deltas, alpha);
        let only_in_b = view_b
            .pairs()
            .filter(|p| p.filtered_ms().is_some())
            .map(|p| (p.init_mhz(), p.target_mhz()))
            .filter(|&(i, t)| view_a.pair(i, t).and_then(|p| p.filtered_ms()).is_none())
            .collect();
        CampaignDiff {
            device_a: a.device_name.clone(),
            device_b: b.device_name.clone(),
            alpha,
            deltas,
            only_in_a,
            only_in_b,
        }
    }

    /// Every significant regression (B slower than A).
    pub fn regressions(&self) -> impl Iterator<Item = &PairDelta> {
        self.deltas.iter().filter(|d| d.is_regression())
    }

    /// Pairs the baseline measured that the candidate could not — B lost
    /// the ability to measure a transition, which gates like a regression
    /// (`latest diff` exits non-zero on these too).
    pub fn lost_pairs(&self) -> &[(u32, u32)] {
        &self.only_in_a
    }

    /// Every significant improvement (B faster than A).
    pub fn improvements(&self) -> impl Iterator<Item = &PairDelta> {
        self.deltas.iter().filter(|d| d.is_improvement())
    }

    /// Number of significant regressions — `latest diff` exits non-zero
    /// when this is positive.
    pub fn significant_regressions(&self) -> usize {
        self.regressions().count()
    }

    /// The signed per-pair delta heatmap (initial frequency in rows, target
    /// in columns; positive cells = B slower).
    pub fn delta_heatmap(&self) -> Heatmap {
        let mut freqs: Vec<u32> = self
            .deltas
            .iter()
            .flat_map(|d| [d.init_mhz, d.target_mhz])
            .collect();
        freqs.sort_unstable();
        freqs.dedup();
        let mut hm = Heatmap::new(
            freqs.iter().map(|f| f.to_string()).collect(),
            freqs.iter().map(|f| f.to_string()).collect(),
        )
        .with_title(format!(
            "mean switching-latency delta [ms] ({} -> {})",
            self.device_a, self.device_b
        ));
        for d in &self.deltas {
            let row = freqs.binary_search(&d.init_mhz).expect("freq indexed");
            let col = freqs.binary_search(&d.target_mhz).expect("freq indexed");
            hm.set(row, col, Some(d.delta_ms));
        }
        hm
    }

    /// The per-pair regression table: coordinates, means, delta, p-value
    /// and verdict for every common pair, plus a row per one-sided pair.
    pub fn regression_table(&self) -> TextTable {
        let mut table = TextTable::with_header(&[
            "init[MHz]",
            "target[MHz]",
            "mean A[ms]",
            "mean B[ms]",
            "delta[ms]",
            "p-value",
            "verdict",
        ])
        .titled(format!(
            "per-pair latency deltas, alpha {} ({} -> {})",
            self.alpha, self.device_a, self.device_b
        ));
        for d in &self.deltas {
            let verdict = if d.is_regression() {
                "REGRESSION"
            } else if d.is_improvement() {
                "improvement"
            } else {
                "unchanged"
            };
            table.row(&[
                d.init_mhz.to_string(),
                d.target_mhz.to_string(),
                format!("{:.3}", d.mean_a_ms),
                format!("{:.3}", d.mean_b_ms),
                format!("{:+.3}", d.delta_ms),
                d.p_value.map_or("-".to_string(), |p| format!("{p:.4}")),
                verdict.to_string(),
            ]);
        }
        let one_sided = |pairs: &[(u32, u32)], verdict: &str, table: &mut TextTable| {
            for &(init, target) in pairs {
                table.row(&[
                    init.to_string(),
                    target.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    verdict.to_string(),
                ]);
            }
        };
        one_sided(&self.only_in_a, "only in A", &mut table);
        one_sided(&self.only_in_b, "only in B", &mut table);
        table
    }
}

/// Holm–Bonferroni step-down: sort the testable deltas by raw p-value
/// ascending and reject H0 for the k-th smallest (0-based) while
/// `p ≤ alpha / (m − k)`; the first failure stops the walk. Controls the
/// family-wise error rate at `alpha`.
fn holm_mark_significant(deltas: &mut [PairDelta], alpha: f64) {
    let mut order: Vec<usize> = (0..deltas.len())
        .filter(|&i| deltas[i].p_value.is_some())
        .collect();
    let m = order.len();
    order.sort_by(|&i, &j| {
        deltas[i]
            .p_value
            .expect("filtered")
            .total_cmp(&deltas[j].p_value.expect("filtered"))
    });
    for (k, &i) in order.iter().enumerate() {
        let p = deltas[i].p_value.expect("filtered");
        if p <= alpha / (m - k) as f64 {
            deltas[i].significant = true;
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_core::{CampaignConfig, Latest};
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn run(seed: u64, latency_ms: u64) -> CampaignResult {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(latency_ms),
        });
        let config = CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .measurements(8, 16)
            .simulated_sms(Some(2))
            .seed(seed)
            .build();
        Latest::new(config).run().unwrap()
    }

    #[test]
    fn identical_runs_have_no_significant_deltas() {
        let a = run(5, 8);
        let diff = CampaignDiff::between(&a, &a, 0.05);
        assert_eq!(diff.deltas.len(), 2);
        assert_eq!(diff.significant_regressions(), 0);
        assert_eq!(diff.improvements().count(), 0);
        for d in &diff.deltas {
            assert_eq!(d.delta_ms, 0.0);
            assert!(!d.significant);
        }
        assert!(diff.only_in_a.is_empty() && diff.only_in_b.is_empty());
    }

    #[test]
    fn slower_device_shows_regressions() {
        let a = run(5, 8);
        let b = run(5, 24);
        let diff = CampaignDiff::between(&a, &b, 0.05);
        assert!(diff.significant_regressions() > 0);
        assert!(diff.deltas.iter().all(|d| d.delta_ms > 10.0));
        // And the reverse direction reports improvements instead.
        let reverse = CampaignDiff::between(&b, &a, 0.05);
        assert_eq!(reverse.significant_regressions(), 0);
        assert!(reverse.improvements().count() > 0);
    }

    #[test]
    fn rendered_views_carry_the_verdicts() {
        let a = run(9, 8);
        let b = run(9, 24);
        let diff = CampaignDiff::between(&a, &b, 0.05);
        let table = diff.regression_table().render();
        assert!(table.contains("REGRESSION"));
        let hm = diff.delta_heatmap();
        assert_eq!(hm.n_rows(), 2);
        let (_, _, min) = hm.min_cell().unwrap();
        assert!(min > 0.0, "all deltas positive, min {min}");
        assert!(hm.title().contains("delta"));
    }

    #[test]
    fn disjoint_pairs_are_reported_not_tested() {
        let mut spec_a = devices::a100_sxm4();
        spec_a.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(8),
        });
        let a = Latest::new(
            CampaignConfig::builder(spec_a.clone())
                .frequencies_mhz(&[705, 1410])
                .measurements(6, 10)
                .simulated_sms(Some(2))
                .seed(3)
                .build(),
        )
        .run()
        .unwrap();
        let b = Latest::new(
            CampaignConfig::builder(spec_a)
                .frequencies_mhz(&[705, 1095])
                .measurements(6, 10)
                .simulated_sms(Some(2))
                .seed(3)
                .build(),
        )
        .run()
        .unwrap();
        let diff = CampaignDiff::between(&a, &b, 0.05);
        assert!(diff.deltas.is_empty());
        assert_eq!(diff.only_in_a.len(), 2);
        assert_eq!(diff.lost_pairs().len(), 2);
        assert_eq!(diff.only_in_b.len(), 2);
        let rendered = diff.regression_table().render();
        assert!(rendered.contains("only in A") && rendered.contains("only in B"));
    }

    fn delta_with_p(p: Option<f64>) -> PairDelta {
        PairDelta {
            init_mhz: 1,
            target_mhz: 2,
            mean_a_ms: 1.0,
            mean_b_ms: 2.0,
            delta_ms: 1.0,
            p_value: p,
            significant: false,
        }
    }

    #[test]
    fn holm_controls_the_family_wise_rate() {
        // 20 tests with p = 0.04 each: every one passes a raw 0.05
        // threshold, none survives Holm (0.04 > 0.05/20).
        let mut uniform: Vec<PairDelta> = (0..20).map(|_| delta_with_p(Some(0.04))).collect();
        holm_mark_significant(&mut uniform, 0.05);
        assert!(uniform.iter().all(|d| !d.significant));

        // One overwhelming effect among nulls survives; the step-down then
        // admits a second moderate one at the relaxed threshold.
        let mut mixed = vec![
            delta_with_p(Some(0.9)),
            delta_with_p(Some(1e-9)),
            delta_with_p(Some(0.012)),
        ];
        holm_mark_significant(&mut mixed, 0.05);
        assert!(!mixed[0].significant);
        assert!(mixed[1].significant); // 1e-9 <= 0.05/3
        assert!(mixed[2].significant); // 0.012 <= 0.05/2
                                       // Untestable pairs are ignored, not counted in the family size.
        let mut with_none = vec![delta_with_p(None), delta_with_p(Some(0.04))];
        holm_mark_significant(&mut with_none, 0.05);
        assert!(!with_none[0].significant);
        assert!(with_none[1].significant); // m = 1, threshold 0.05
    }
}
