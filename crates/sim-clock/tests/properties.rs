//! Property-based tests for virtual time: ordering, arithmetic, clock views
//! (offset/drift projection) and timer quantisation.

use latest_sim_clock::{ClockView, SharedClock, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    // --- SimTime / SimDuration arithmetic ------------------------------------

    #[test]
    fn add_then_since_round_trips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        let t1 = t0 + dur;
        prop_assert_eq!(t1.saturating_since(t0), dur);
        prop_assert!(t1 >= t0);
    }

    #[test]
    fn saturating_since_never_underflows(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
        let d = ta.saturating_since(tb);
        if a <= b {
            prop_assert_eq!(d, SimDuration::ZERO);
        } else {
            prop_assert_eq!(d.as_nanos(), a - b);
        }
    }

    #[test]
    fn signed_delta_is_antisymmetric(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
        prop_assert_eq!(ta.signed_delta_ns(tb), -tb.signed_delta_ns(ta));
    }

    #[test]
    fn offset_by_round_trips(t in 1_000_000u64..u64::MAX / 4, delta in -1_000_000i64..1_000_000i64) {
        let t0 = SimTime::from_nanos(t);
        prop_assert_eq!(t0.offset_by(delta).offset_by(-delta), t0);
    }

    #[test]
    fn quantize_floor_is_idempotent_and_lower(t in 0u64..u64::MAX / 4, res in 1u64..1_000_000) {
        let time = SimTime::from_nanos(t);
        let resolution = SimDuration::from_nanos(res);
        let q = time.quantize_floor(resolution);
        prop_assert!(q <= time);
        prop_assert!(time.as_nanos() - q.as_nanos() < res);
        prop_assert_eq!(q.quantize_floor(resolution), q);
    }

    #[test]
    fn duration_conversions_are_consistent(ms in 0u64..10_000_000) {
        let d = SimDuration::from_millis(ms);
        prop_assert_eq!(d.as_nanos(), ms * 1_000_000);
        prop_assert!((d.as_millis_f64() - ms as f64).abs() < 1e-6);
        prop_assert!((d.as_secs_f64() - ms as f64 / 1e3).abs() < 1e-9);
    }

    #[test]
    fn mul_f64_scales_linearly(ns in 0u64..1_000_000_000, k in 0.0..1000.0f64) {
        let d = SimDuration::from_nanos(ns);
        let scaled = d.mul_f64(k);
        let expected = ns as f64 * k;
        prop_assert!((scaled.as_nanos() as f64 - expected).abs() <= 1.0 + expected * 1e-12);
    }

    // --- SharedClock -----------------------------------------------------------

    #[test]
    fn clock_advance_is_monotone(steps in prop::collection::vec(0u64..1_000_000, 1..50)) {
        let clock = SharedClock::new();
        let mut last = clock.now();
        for ns in steps {
            let now = clock.advance(SimDuration::from_nanos(ns));
            prop_assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn advance_to_never_goes_backwards(targets in prop::collection::vec(0u64..1_000_000_000, 1..40)) {
        let clock = SharedClock::new();
        for t in targets {
            let before = clock.now();
            let after = clock.advance_to(SimTime::from_nanos(t));
            prop_assert!(after >= before);
            prop_assert!(after >= SimTime::from_nanos(t).min(after));
        }
    }

    // --- ClockView (device timer projection) -------------------------------------

    #[test]
    fn identity_view_projects_identically(t in 0u64..u64::MAX / 4) {
        let view = ClockView::identity(SharedClock::new());
        let time = SimTime::from_nanos(t);
        prop_assert_eq!(view.project(time), time);
    }

    #[test]
    fn skewed_view_unproject_inverts_project(
        t in 1_000_000_000u64..2_000_000_000,
        offset in -1_000_000i64..1_000_000,
        drift_ppm in -200.0..200.0f64,
    ) {
        let view = ClockView::skewed(
            SharedClock::new(),
            offset,
            drift_ppm,
            SimDuration::from_nanos(1), // no quantisation: exact inversion
        );
        let time = SimTime::from_nanos(t);
        let back = view.unproject(view.project(time));
        // Round trip within 1 ns per applied transform step.
        prop_assert!(back.signed_delta_ns(time).abs() <= 2, "err {}", back.signed_delta_ns(time));
    }

    #[test]
    fn projection_offset_matches_configuration(
        t in 1_000_000_000u64..2_000_000_000,
        offset in -1_000_000i64..1_000_000,
    ) {
        // Zero drift: projection is exactly the configured offset.
        let view = ClockView::skewed(SharedClock::new(), offset, 0.0, SimDuration::from_nanos(1));
        let time = SimTime::from_nanos(t);
        prop_assert_eq!(view.project(time).signed_delta_ns(time), offset);
    }

    #[test]
    fn quantised_projection_is_on_grid(
        t in 0u64..2_000_000_000,
        res in 1u64..10_000,
    ) {
        let view = ClockView::skewed(SharedClock::new(), 12_345, 50.0, SimDuration::from_nanos(res));
        let projected = view.project(SimTime::from_nanos(t));
        prop_assert_eq!(projected.as_nanos() % res, 0);
    }
}
