//! Virtual-time substrate for the `latest-rs` simulation stack.
//!
//! The paper's methodology is defined entirely in terms of timestamps: host
//! timestamps around driver calls, and device (`%globaltimer`) timestamps
//! around microbenchmark iterations. Reproducing the methodology on a
//! simulator therefore requires a faithful notion of *time* first:
//!
//! * a single global virtual timeline ([`SimTime`], nanosecond resolution),
//! * a shared, thread-safe clock that host-side operations advance
//!   ([`SharedClock`]),
//! * derived clock *views* with offset, drift and read-quantisation
//!   ([`ClockView`]) so that the CPU clock and the GPU `globaltimer` disagree
//!   exactly the way real ones do (the GPU timer refreshes at ~1 µs, see the
//!   paper's footnote 1).
//!
//! Everything downstream (the GPU simulator, the NVML/CUDA façades, the
//! IEEE 1588 synchroniser and the LATEST tool itself) tells time exclusively
//! through this crate, which is what makes whole measurement campaigns run
//! in milliseconds of wall-clock time while remaining bit-deterministic.

pub mod clock;
pub mod time;

pub use clock::{ClockView, SharedClock};
pub use time::{SimDuration, SimTime};
