//! Nanosecond-resolution virtual time points and durations.
//!
//! [`SimTime`] is an absolute point on the global virtual timeline (nanoseconds
//! since simulation epoch); [`SimDuration`] is a length of virtual time. Both
//! are thin `u64` newtypes so that time arithmetic is cheap, `Copy`, and
//! impossible to confuse with raw integers in APIs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the global virtual timeline, in nanoseconds since
/// the simulation epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from nanoseconds since epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds since epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds since epoch.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as a float (for statistics/reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since epoch as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - other` in nanoseconds. Needed when comparing
    /// timestamps taken on clocks that may disagree (host vs device).
    #[inline]
    pub fn signed_delta_ns(self, other: SimTime) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Round *down* to a multiple of `resolution` (timer-register refresh
    /// granularity; the CUDA globaltimer refreshes at ~1 µs).
    #[inline]
    pub fn quantize_floor(self, resolution: SimDuration) -> SimTime {
        if resolution.0 <= 1 {
            return self;
        }
        SimTime(self.0 - self.0 % resolution.0)
    }

    /// Apply a signed offset, saturating at the epoch.
    #[inline]
    pub fn offset_by(self, delta_ns: i64) -> SimTime {
        if delta_ns >= 0 {
            SimTime(self.0.saturating_add(delta_ns as u64))
        } else {
            SimTime(self.0.saturating_sub(delta_ns.unsigned_abs()))
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative input clamps to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from fractional milliseconds. Negative input clamps to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Human-readable rendering with an auto-selected unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((d * 3).as_nanos(), 120);
        assert_eq!((d / 4).as_nanos(), 10);
    }

    #[test]
    fn signed_delta() {
        let a = SimTime::from_nanos(50);
        let b = SimTime::from_nanos(80);
        assert_eq!(a.signed_delta_ns(b), -30);
        assert_eq!(b.signed_delta_ns(a), 30);
    }

    #[test]
    fn quantize_floor_rounds_down_to_resolution() {
        let res = SimDuration::from_micros(1);
        assert_eq!(
            SimTime::from_nanos(1_999).quantize_floor(res).as_nanos(),
            1_000
        );
        assert_eq!(
            SimTime::from_nanos(2_000).quantize_floor(res).as_nanos(),
            2_000
        );
        // Resolution <= 1 ns is the identity.
        let t = SimTime::from_nanos(1234);
        assert_eq!(t.quantize_floor(SimDuration::from_nanos(1)), t);
        assert_eq!(t.quantize_floor(SimDuration::ZERO), t);
    }

    #[test]
    fn offset_by_saturates_at_epoch() {
        let t = SimTime::from_nanos(10);
        assert_eq!(t.offset_by(5).as_nanos(), 15);
        assert_eq!(t.offset_by(-5).as_nanos(), 5);
        assert_eq!(t.offset_by(-50), SimTime::EPOCH);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 1500);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }
}
