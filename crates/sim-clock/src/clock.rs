//! The shared global clock and derived (offset/drift/quantised) clock views.
//!
//! One [`SharedClock`] exists per simulated system. Host-side operations
//! (driver calls, `usleep`, kernel synchronisation) advance it; every
//! component reads it. Clock *views* model the fact that the CPU's
//! `CLOCK_MONOTONIC` and the GPU's `%globaltimer` are distinct oscillators:
//! each view applies an offset, a drift (ppm) and a read quantisation to the
//! global timeline. The IEEE 1588 synchroniser in `latest-clock-sync` then has
//! something real to estimate.

use crate::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// The single source of virtual time for one simulated system.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same timeline.
/// `advance` is monotone: time never goes backwards.
#[derive(Clone)]
pub struct SharedClock {
    inner: Arc<Mutex<u64>>,
}

impl SharedClock {
    /// A new clock at the simulation epoch.
    pub fn new() -> Self {
        SharedClock {
            inner: Arc::new(Mutex::new(0)),
        }
    }

    /// A new clock starting at an arbitrary point (useful for tests).
    pub fn starting_at(t: SimTime) -> Self {
        SharedClock {
            inner: Arc::new(Mutex::new(t.as_nanos())),
        }
    }

    /// Current global virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(*self.inner.lock())
    }

    /// Advance the timeline by `d` and return the new now.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let mut t = self.inner.lock();
        *t += d.as_nanos();
        SimTime::from_nanos(*t)
    }

    /// Advance the timeline *to* `target` if it is in the future; otherwise
    /// leave it unchanged. Returns the new now. This is how "wait until the
    /// kernel finished" style operations are expressed.
    pub fn advance_to(&self, target: SimTime) -> SimTime {
        let mut t = self.inner.lock();
        if target.as_nanos() > *t {
            *t = target.as_nanos();
        }
        SimTime::from_nanos(*t)
    }
}

impl Default for SharedClock {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedClock")
            .field("now", &self.now())
            .finish()
    }
}

/// A derived reading of the global timeline: what a particular oscillator
/// (CPU TSC, GPU globaltimer) reports when sampled.
///
/// `reported = quantize_floor((global * (1 + drift_ppm/1e6)) + offset)`
///
/// The offset models power-on skew between devices; drift models oscillator
/// frequency error; quantisation models timer-register refresh granularity
/// (~1 µs for the CUDA globaltimer, per the paper's footnote 1).
#[derive(Clone, Debug)]
pub struct ClockView {
    clock: SharedClock,
    offset_ns: i64,
    drift_ppm: f64,
    resolution: SimDuration,
}

impl ClockView {
    /// An undistorted view (offset 0, no drift, nanosecond resolution):
    /// the host's own clock.
    pub fn identity(clock: SharedClock) -> Self {
        ClockView {
            clock,
            offset_ns: 0,
            drift_ppm: 0.0,
            resolution: SimDuration::from_nanos(1),
        }
    }

    /// A distorted view, e.g. a GPU globaltimer that booted at a different
    /// moment, drifts by a few ppm, and refreshes at ~1 µs.
    pub fn skewed(
        clock: SharedClock,
        offset_ns: i64,
        drift_ppm: f64,
        resolution: SimDuration,
    ) -> Self {
        ClockView {
            clock,
            offset_ns,
            drift_ppm,
            resolution,
        }
    }

    /// Sample this oscillator now.
    pub fn now(&self) -> SimTime {
        self.project(self.clock.now())
    }

    /// What this oscillator would report at global time `t`. Used by the
    /// device simulator to stamp iteration records.
    pub fn project(&self, t: SimTime) -> SimTime {
        // Zero drift stays in integer arithmetic: the f64 path loses ULPs
        // beyond 2^53 ns (~104 days of virtual time).
        let drifted = if self.drift_ppm == 0.0 {
            t
        } else {
            let ns = t.as_nanos() as f64 * (1.0 + self.drift_ppm / 1e6);
            SimTime::from_nanos(ns.round().max(0.0) as u64)
        };
        drifted
            .offset_by(self.offset_ns)
            .quantize_floor(self.resolution)
    }

    /// Invert the (un-quantised) view mapping: the global time at which this
    /// oscillator would report `local`. Quantisation cannot be inverted, so
    /// the result carries up to one `resolution` of uncertainty; callers that
    /// care (the PTP synchroniser) account for it in their error bounds.
    pub fn unproject(&self, local: SimTime) -> SimTime {
        let unshifted = local.offset_by(-self.offset_ns);
        if self.drift_ppm == 0.0 {
            return unshifted;
        }
        let global = unshifted.as_nanos() as f64 / (1.0 + self.drift_ppm / 1e6);
        SimTime::from_nanos(global.round().max(0.0) as u64)
    }

    /// The underlying shared clock.
    pub fn shared(&self) -> &SharedClock {
        &self.clock
    }

    /// The read quantisation of this oscillator.
    pub fn resolution(&self) -> SimDuration {
        self.resolution
    }

    /// The configured constant offset (ground truth, for closed-loop tests).
    pub fn true_offset_ns(&self) -> i64 {
        self.offset_ns
    }

    /// The configured drift in ppm (ground truth, for closed-loop tests).
    pub fn true_drift_ppm(&self) -> f64 {
        self.drift_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_clock_advances_monotonically() {
        let c = SharedClock::new();
        assert_eq!(c.now(), SimTime::EPOCH);
        c.advance(SimDuration::from_micros(3));
        assert_eq!(c.now().as_nanos(), 3_000);
        // advance_to backwards is a no-op
        c.advance_to(SimTime::from_nanos(1_000));
        assert_eq!(c.now().as_nanos(), 3_000);
        c.advance_to(SimTime::from_nanos(10_000));
        assert_eq!(c.now().as_nanos(), 10_000);
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = SharedClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_millis(1));
        assert_eq!(b.now().as_nanos(), 1_000_000);
    }

    #[test]
    fn identity_view_reports_global_time() {
        let c = SharedClock::new();
        c.advance(SimDuration::from_nanos(12_345));
        let v = ClockView::identity(c);
        assert_eq!(v.now().as_nanos(), 12_345);
    }

    #[test]
    fn skewed_view_applies_offset_and_quantisation() {
        let c = SharedClock::new();
        c.advance(SimDuration::from_nanos(10_500));
        let v = ClockView::skewed(c, 2_000, 0.0, SimDuration::from_micros(1));
        // 10_500 + 2_000 = 12_500 -> floor to 12_000
        assert_eq!(v.now().as_nanos(), 12_000);
    }

    #[test]
    fn drift_scales_the_timeline() {
        let c = SharedClock::new();
        c.advance(SimDuration::from_secs(1));
        // +100 ppm over one second = +100 us
        let v = ClockView::skewed(c, 0, 100.0, SimDuration::from_nanos(1));
        assert_eq!(v.now().as_nanos(), 1_000_100_000);
    }

    #[test]
    fn unproject_inverts_project_without_quantisation() {
        let c = SharedClock::new();
        let v = ClockView::skewed(c, -5_000, 37.5, SimDuration::from_nanos(1));
        // Times below |offset| saturate at the epoch and are not invertible;
        // start beyond that.
        for ns in [10_000u64, 123_456_789, 5_000_000_000] {
            let t = SimTime::from_nanos(ns);
            let rt = v.unproject(v.project(t));
            let err = rt.signed_delta_ns(t).unsigned_abs();
            assert!(err <= 1, "roundtrip error {err} ns at t={ns}");
        }
    }

    #[test]
    fn negative_offset_saturates_at_epoch() {
        let c = SharedClock::new();
        let v = ClockView::skewed(c, -1_000_000, 0.0, SimDuration::from_nanos(1));
        assert_eq!(v.now(), SimTime::EPOCH);
    }
}
