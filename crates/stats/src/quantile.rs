//! Quantiles, quantile ranges and histograms.
//!
//! Algorithm 3 sets the DBSCAN `eps` from the 0.05–0.95 quantile range of the
//! switching-latency dataset; the reporting crate uses quantiles for box and
//! violin summaries. Quantiles use the type-7 (linear interpolation)
//! definition, matching NumPy's default, so results are comparable with the
//! authors' Python analysis.

/// Type-7 quantile (linear interpolation between closest ranks) of `xs` at
/// probability `p` in [0, 1]. Returns NaN on an empty slice.
///
/// The input need not be sorted; a sorted copy is made internally. Use
/// [`quantile_sorted`] in hot paths that already hold sorted data.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, p)
}

/// Type-7 quantile of already-sorted data.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "quantile probability must be in [0,1], got {p}"
    );
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The `quantile_range(lo, hi)` of Algorithm 3: `Q(hi) - Q(lo)`.
pub fn quantile_range(xs: &[f64], lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "quantile_range requires lo <= hi");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, hi) - quantile_sorted(&sorted, lo)
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// A fixed-width histogram over [lo, hi) with values outside clamped into the
/// edge bins. Used by the violin/ASCII renderers in `latest-report`.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub lo: f64,
    /// Exclusive upper edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram with `bins` equal-width bins spanning [lo, hi).
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn build(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f64;
        for &x in xs {
            let idx = ((x - lo) / width).floor();
            let idx = (idx.max(0.0) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram { lo, hi, counts }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Centre value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        // Type-7: h = 0.25 * 3 = 0.75 -> 1 + 0.75*(2-1) = 1.75
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn quantile_edge_cases() {
        assert!(quantile(&[], 0.5).is_nan());
        assert_eq!(quantile(&[7.0], 0.25), 7.0);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range_p() {
        quantile(&[1.0, 2.0], 1.5);
    }

    #[test]
    fn quantile_range_definition() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        // Q(0.95) = 95, Q(0.05) = 5 on 0..=100.
        assert!((quantile_range(&xs, 0.05, 0.95) - 90.0).abs() < 1e-9);
        assert!(quantile_range(&[], 0.05, 0.95).is_nan());
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let xs = [0.1, 0.2, 0.9, 1.5, -3.0];
        let h = Histogram::build(&xs, 0.0, 1.0, 4);
        // -3.0 clamps into bin 0; 1.5 clamps into bin 3.
        assert_eq!(h.counts, vec![3, 0, 0, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.mode_bin(), 0);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
    }
}
