//! Weighted least-squares regression and residual diagnostics.
//!
//! The prediction service fits a parametric latency model over the archive:
//! each measured frequency pair contributes one observation, weighted by how
//! many latency samples back it. The fit itself is ordinary weighted least
//! squares solved through the normal equations (the design matrices here are
//! tiny — a handful of features over at most a few hundred pairs — so
//! Gaussian elimination with partial pivoting is both adequate and exactly
//! reproducible), plus a Huber-weighted IRLS variant that caps the influence
//! of pathological pairs the way the paper's outlier filter caps individual
//! samples.
//!
//! Everything is deterministic: no randomness, a fixed iteration count for
//! the robust loop, and no dependence on ambient state — the same inputs
//! produce bitwise-identical coefficients.

use crate::quantile::median;

/// Errors from a least-squares fit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WlsError {
    /// `ys`/`weights` length differs from the number of rows, or rows have
    /// inconsistent widths.
    DimensionMismatch,
    /// Fewer (positively weighted) observations than features.
    Underdetermined,
    /// The normal-equation matrix is numerically singular (e.g. collinear
    /// features).
    Singular,
    /// A weight was negative or non-finite.
    InvalidWeight,
}

impl std::fmt::Display for WlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WlsError::DimensionMismatch => write!(f, "design matrix dimensions are inconsistent"),
            WlsError::Underdetermined => write!(f, "fewer weighted observations than features"),
            WlsError::Singular => write!(f, "normal equations are singular"),
            WlsError::InvalidWeight => write!(f, "weights must be finite and non-negative"),
        }
    }
}

impl std::error::Error for WlsError {}

/// A fitted weighted least-squares model.
#[derive(Clone, Debug, PartialEq)]
pub struct WlsFit {
    /// One coefficient per feature column.
    pub coefficients: Vec<f64>,
    /// Per-observation residual `y - x·b`, in input order.
    pub residuals: Vec<f64>,
    /// Sum of `w · r²` over all observations.
    pub weighted_rss: f64,
}

impl WlsFit {
    /// Evaluate the fitted model at a feature vector.
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "feature count mismatch");
        x.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum()
    }

    /// Residual diagnostics for this fit.
    pub fn diagnostics(&self) -> ResidualDiagnostics {
        ResidualDiagnostics::of(&self.residuals)
    }
}

/// Summary statistics of a residual vector.
#[derive(Clone, Debug, PartialEq)]
pub struct ResidualDiagnostics {
    /// Number of residuals.
    pub n: usize,
    /// Mean absolute residual.
    pub mae: f64,
    /// Root-mean-square residual.
    pub rmse: f64,
    /// Largest absolute residual.
    pub max_abs: f64,
    /// Median residual (signed — a nonzero value flags systematic bias).
    pub bias: f64,
}

impl ResidualDiagnostics {
    /// Compute diagnostics over `residuals`. All fields are NaN when empty.
    pub fn of(residuals: &[f64]) -> ResidualDiagnostics {
        let n = residuals.len();
        if n == 0 {
            return ResidualDiagnostics {
                n,
                mae: f64::NAN,
                rmse: f64::NAN,
                max_abs: f64::NAN,
                bias: f64::NAN,
            };
        }
        let mae = residuals.iter().map(|r| r.abs()).sum::<f64>() / n as f64;
        let rmse = (residuals.iter().map(|r| r * r).sum::<f64>() / n as f64).sqrt();
        let max_abs = residuals.iter().map(|r| r.abs()).fold(0.0, f64::max);
        ResidualDiagnostics {
            n,
            mae,
            rmse,
            max_abs,
            bias: median(residuals),
        }
    }
}

/// Weighted least squares: minimise `Σ wᵢ (yᵢ - xᵢ·b)²`.
///
/// `rows` holds one feature vector per observation (include a constant `1.0`
/// column for an intercept). Zero-weight observations are allowed; they
/// contribute nothing to the fit but still receive a residual.
pub fn wls_fit(rows: &[Vec<f64>], ys: &[f64], weights: &[f64]) -> Result<WlsFit, WlsError> {
    let n = rows.len();
    if ys.len() != n || weights.len() != n {
        return Err(WlsError::DimensionMismatch);
    }
    let k = rows.first().map(|r| r.len()).unwrap_or(0);
    if k == 0 || rows.iter().any(|r| r.len() != k) {
        return Err(WlsError::DimensionMismatch);
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(WlsError::InvalidWeight);
    }
    if weights.iter().filter(|w| **w > 0.0).count() < k {
        return Err(WlsError::Underdetermined);
    }

    // Normal equations: (XᵀWX) b = XᵀWy.
    let mut xtx = vec![vec![0.0f64; k]; k];
    let mut xty = vec![0.0f64; k];
    for ((row, &y), &w) in rows.iter().zip(ys).zip(weights) {
        for i in 0..k {
            let wxi = w * row[i];
            xty[i] += wxi * y;
            for (cell, &xj) in xtx[i].iter_mut().zip(row) {
                *cell += wxi * xj;
            }
        }
    }

    let coefficients = solve(xtx, xty)?;
    let residuals: Vec<f64> = rows
        .iter()
        .zip(ys)
        .map(|(row, &y)| {
            y - row
                .iter()
                .zip(&coefficients)
                .map(|(a, b)| a * b)
                .sum::<f64>()
        })
        .collect();
    let weighted_rss = residuals.iter().zip(weights).map(|(r, &w)| w * r * r).sum();
    Ok(WlsFit {
        coefficients,
        residuals,
        weighted_rss,
    })
}

/// Number of Huber reweighting iterations in [`huber_fit`]. Fixed (rather
/// than convergence-tested) so the fit is exactly reproducible.
pub const HUBER_ITERATIONS: usize = 8;

/// Huber tuning constant: residuals beyond `1.345 σ` are down-weighted.
/// The textbook value giving 95 % efficiency under Gaussian errors.
pub const HUBER_K: f64 = 1.345;

/// Robust regression via iteratively reweighted least squares with the Huber
/// loss. Starts from the plain WLS solution and runs a fixed
/// [`HUBER_ITERATIONS`] reweighting passes; the residual scale is the
/// normal-consistent median absolute deviation, recomputed each pass.
///
/// `weights` are the base observation weights (sample counts); the Huber
/// weight multiplies them.
pub fn huber_fit(rows: &[Vec<f64>], ys: &[f64], weights: &[f64]) -> Result<WlsFit, WlsError> {
    let mut fit = wls_fit(rows, ys, weights)?;
    for _ in 0..HUBER_ITERATIONS {
        let abs: Vec<f64> = fit.residuals.iter().map(|r| r.abs()).collect();
        // MAD scaled to estimate σ under normality (Φ⁻¹(0.75) ≈ 0.6745).
        let scale = median(&abs) / 0.6745;
        if !(scale.is_finite() && scale > 0.0) {
            // Perfect (or near-perfect) fit: nothing to down-weight.
            break;
        }
        let threshold = HUBER_K * scale;
        let reweighted: Vec<f64> = fit
            .residuals
            .iter()
            .zip(weights)
            .map(|(r, &w)| {
                let a = r.abs();
                if a <= threshold {
                    w
                } else {
                    w * threshold / a
                }
            })
            .collect();
        fit = wls_fit(rows, ys, &reweighted)?;
    }
    Ok(fit)
}

/// Solve `A b = rhs` by Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut rhs: Vec<f64>) -> Result<Vec<f64>, WlsError> {
    let k = rhs.len();
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("non-finite pivot")
            })
            .expect("non-empty pivot range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(WlsError::Singular);
        }
        a.swap(col, pivot);
        rhs.swap(col, pivot);
        for row in col + 1..k {
            let (eliminated, remaining) = a.split_at_mut(row);
            let pivot_row = &eliminated[col];
            let target = &mut remaining[0];
            let factor = target[col] / pivot_row[col];
            if factor == 0.0 {
                continue;
            }
            for (t, &p) in target[col..].iter_mut().zip(&pivot_row[col..]) {
                *t -= factor * p;
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    let mut b = vec![0.0f64; k];
    for col in (0..k).rev() {
        let tail: f64 = (col + 1..k).map(|j| a[col][j] * b[j]).sum();
        b[col] = (rhs[col] - tail) / a[col][col];
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(xs: &[f64]) -> Vec<Vec<f64>> {
        xs.iter().map(|&x| vec![1.0, x]).collect()
    }

    #[test]
    fn recovers_exact_line() {
        // y = 2 + 3x with no noise: the fit must be exact.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let fit = wls_fit(&design(&xs), &ys, &[1.0; 5]).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 3.0).abs() < 1e-9);
        assert!(fit.weighted_rss < 1e-12);
        assert!((fit.predict(&[1.0, 10.0]) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn weights_steer_the_fit() {
        // Two clusters disagree on the intercept; the weighted fit must land
        // on the heavy one.
        let rows = vec![vec![1.0], vec![1.0], vec![1.0]];
        let ys = [10.0, 10.0, 40.0];
        let heavy_low = wls_fit(&rows, &ys, &[10.0, 10.0, 1.0]).unwrap();
        let heavy_high = wls_fit(&rows, &ys, &[1.0, 1.0, 100.0]).unwrap();
        assert!(heavy_low.coefficients[0] < 12.0);
        assert!(heavy_high.coefficients[0] > 38.0);
    }

    #[test]
    fn zero_weight_rows_are_ignored_but_get_residuals() {
        let xs = [0.0, 1.0, 2.0, 100.0];
        let mut ys: Vec<f64> = xs.iter().map(|x| 5.0 + x).collect();
        ys[3] = -1000.0; // wild outlier, weight 0
        let fit = wls_fit(&design(&xs), &ys, &[1.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((fit.coefficients[0] - 5.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 1.0).abs() < 1e-9);
        assert_eq!(fit.residuals.len(), 4);
        assert!(fit.residuals[3].abs() > 100.0);
    }

    #[test]
    fn huber_shrugs_off_an_outlier() {
        // A clean line plus one gross outlier: plain WLS is dragged off the
        // true slope, the Huber fit stays on it.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 1.0 + 0.5 * x).collect();
        ys[10] += 500.0;
        let w = vec![1.0; 20];
        let plain = wls_fit(&design(&xs), &ys, &w).unwrap();
        let robust = huber_fit(&design(&xs), &ys, &w).unwrap();
        let plain_err = (plain.coefficients[1] - 0.5).abs();
        let robust_err = (robust.coefficients[1] - 0.5).abs();
        assert!(
            robust_err < plain_err / 10.0,
            "huber slope error {robust_err} vs plain {plain_err}"
        );
    }

    #[test]
    fn huber_is_deterministic() {
        let xs: Vec<f64> = (0..15).map(|i| i as f64 * 0.7).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 - 0.2 * x + if i % 5 == 0 { 4.0 } else { 0.0 })
            .collect();
        let w = vec![1.0; 15];
        let a = huber_fit(&design(&xs), &ys, &w).unwrap();
        let b = huber_fit(&design(&xs), &ys, &w).unwrap();
        assert_eq!(a.coefficients, b.coefficients);
        assert_eq!(a.residuals, b.residuals);
    }

    #[test]
    fn error_cases() {
        let rows = design(&[0.0, 1.0]);
        assert_eq!(
            wls_fit(&rows, &[1.0], &[1.0, 1.0]),
            Err(WlsError::DimensionMismatch)
        );
        assert_eq!(
            wls_fit(&rows, &[1.0, 2.0], &[1.0, -1.0]),
            Err(WlsError::InvalidWeight)
        );
        // Two features but only one positively weighted row.
        assert_eq!(
            wls_fit(&rows, &[1.0, 2.0], &[1.0, 0.0]),
            Err(WlsError::Underdetermined)
        );
        // Collinear columns are singular.
        let collinear: Vec<Vec<f64>> = (0..4).map(|i| vec![1.0, 1.0, i as f64]).collect();
        assert_eq!(
            wls_fit(&collinear, &[0.0; 4], &[1.0; 4]),
            Err(WlsError::Singular)
        );
    }

    #[test]
    fn diagnostics_summarise_residuals() {
        let d = ResidualDiagnostics::of(&[1.0, -1.0, 3.0, -3.0]);
        assert_eq!(d.n, 4);
        assert!((d.mae - 2.0).abs() < 1e-12);
        assert!((d.rmse - (5.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(d.max_abs, 3.0);
        assert_eq!(d.bias, 0.0);
        assert!(ResidualDiagnostics::of(&[]).mae.is_nan());
    }
}
