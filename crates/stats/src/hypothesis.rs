//! Null-hypothesis tests and interval criteria used by Algorithms 1 and 2.
//!
//! Phase one validates a frequency pair by testing whether the mean iteration
//! times under the two frequencies are statistically distinguishable (the
//! pair is *skipped* when the confidence interval of the difference includes
//! zero). Phase three re-tests the post-transition iterations against the
//! target-frequency mean. Both are expressed here as Welch-style tests with
//! explicit intervals, plus the paper's two-standard-deviation detection band
//! (Sec. V-A), which deliberately tracks sample variability rather than the
//! collapsing standard error of the mean.

use crate::dist::{normal_cdf, student_t_cdf, t_critical_two_sided, z_critical_two_sided};
use crate::summary::Summary;

/// A two-sided confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level in (0, 1), e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether the interval contains zero — the pair-skipping criterion of
    /// Algorithm 1 and the acceptance criterion of Algorithm 2.
    pub fn contains_zero(&self) -> bool {
        self.contains(0.0)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Outcome of a two-sample location test.
#[derive(Clone, Copy, Debug)]
pub struct TestResult {
    /// The test statistic (t or z).
    pub statistic: f64,
    /// Degrees of freedom (Welch–Satterthwaite); infinite for the z-test.
    pub dof: f64,
    /// Two-sided p-value for H0: equal means.
    pub p_value: f64,
    /// Whether H0 (equal means) is rejected at the given significance.
    pub reject_equal_means: bool,
    /// Significance level used for the decision.
    pub alpha: f64,
}

/// Welch's unequal-variances t-test on two summaries.
///
/// Returns `None` when either sample is too small (n < 2) or degenerate
/// (both variances zero — in that case means are compared exactly).
pub fn welch_t_test(a: &Summary, b: &Summary, alpha: f64) -> Option<TestResult> {
    if a.n < 2 || b.n < 2 {
        return None;
    }
    let va = a.stdev * a.stdev / a.n as f64;
    let vb = b.stdev * b.stdev / b.n as f64;
    let se2 = va + vb;
    if se2 == 0.0 {
        let equal = a.mean == b.mean;
        return Some(TestResult {
            statistic: if equal { 0.0 } else { f64::INFINITY },
            dof: f64::INFINITY,
            p_value: if equal { 1.0 } else { 0.0 },
            reject_equal_means: !equal,
            alpha,
        });
    }
    let t = (a.mean - b.mean) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let dof = se2 * se2 / (va * va / (a.n as f64 - 1.0) + vb * vb / (b.n as f64 - 1.0));
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), dof));
    Some(TestResult {
        statistic: t,
        dof,
        p_value: p.clamp(0.0, 1.0),
        reject_equal_means: p < alpha,
        alpha,
    })
}

/// Large-sample z-test on two summaries (the paper allows "t-test or z-test
/// or confidence interval test" interchangeably in phase one, where n is in
/// the millions and they coincide).
pub fn z_test(a: &Summary, b: &Summary, alpha: f64) -> Option<TestResult> {
    if a.n < 2 || b.n < 2 {
        return None;
    }
    let se2 = a.stderr * a.stderr + b.stderr * b.stderr;
    if se2 == 0.0 {
        let equal = a.mean == b.mean;
        return Some(TestResult {
            statistic: if equal { 0.0 } else { f64::INFINITY },
            dof: f64::INFINITY,
            p_value: if equal { 1.0 } else { 0.0 },
            reject_equal_means: !equal,
            alpha,
        });
    }
    let z = (a.mean - b.mean) / se2.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(TestResult {
        statistic: z,
        dof: f64::INFINITY,
        p_value: p.clamp(0.0, 1.0),
        reject_equal_means: p < alpha,
        alpha,
    })
}

/// Confidence interval for the difference of means `a.mean - b.mean`
/// (Welch construction). This is `getConfInterval` of Algorithm 1 and
/// `meanDiffBounds` of Algorithm 2: the pair is usable iff the interval does
/// **not** contain zero; the transition is confirmed iff it **does**.
pub fn diff_confidence_interval(
    a: &Summary,
    b: &Summary,
    confidence: f64,
) -> Option<ConfidenceInterval> {
    if a.n < 2 || b.n < 2 {
        return None;
    }
    let va = a.stdev * a.stdev / a.n as f64;
    let vb = b.stdev * b.stdev / b.n as f64;
    let se = (va + vb).sqrt();
    let diff = a.mean - b.mean;
    let crit = if va + vb == 0.0 {
        0.0
    } else {
        let dof =
            (va + vb) * (va + vb) / (va * va / (a.n as f64 - 1.0) + vb * vb / (b.n as f64 - 1.0));
        // For the huge phase-one samples dof is enormous and t == z; computing
        // t throughout keeps small phase-three samples honest too.
        if dof.is_finite() && dof > 0.0 {
            t_critical_two_sided(confidence, dof)
        } else {
            z_critical_two_sided(confidence)
        }
    };
    Some(ConfidenceInterval {
        lo: diff - crit * se,
        hi: diff + crit * se,
        confidence,
    })
}

/// Mann–Whitney U test (Wilcoxon rank-sum) on two raw samples.
///
/// The distribution-free complement to [`welch_t_test`]: switching-latency
/// samples are routinely multi-modal (the RTX Quadro signature) and
/// heavy-tailed, where a t-test's normality assumption is indefensible. The
/// archive `diff` pipeline uses this test to decide whether two stored
/// campaigns' per-pair latency samples differ significantly.
///
/// Normal approximation with tie correction (adequate for n ≥ ~8 per side;
/// our per-pair samples are ≥ 25). Returns `None` when either sample has
/// fewer than 2 observations. Degenerate case (every observation equal):
/// p = 1, never rejected.
pub fn mann_whitney_u(a: &[f64], b: &[f64], alpha: f64) -> Option<TestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let n = na + nb;

    // Pool, sort, and assign mid-ranks to ties.
    let mut pooled: Vec<(f64, bool)> = a
        .iter()
        .map(|&x| (x, true))
        .chain(b.iter().map(|&x| (x, false)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut rank_sum_a = 0.0f64;
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0usize;
    while i < pooled.len() {
        let mut j = i;
        while j < pooled.len() && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let t = (j - i) as f64;
        // Ranks are 1-based; a tie group spanning positions i..j shares the
        // average rank (i+1 + j) / 2.
        let mid_rank = (i + 1 + j) as f64 / 2.0;
        for entry in &pooled[i..j] {
            if entry.1 {
                rank_sum_a += mid_rank;
            }
        }
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j;
    }

    let u_a = rank_sum_a - na * (na + 1.0) / 2.0;
    let mu = na * nb / 2.0;
    let sigma2 = na * nb / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if sigma2 <= 0.0 {
        // Every pooled observation identical: the samples cannot differ.
        return Some(TestResult {
            statistic: 0.0,
            dof: f64::INFINITY,
            p_value: 1.0,
            reject_equal_means: false,
            alpha,
        });
    }
    let z = (u_a - mu) / sigma2.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(TestResult {
        statistic: z,
        dof: f64::INFINITY,
        p_value: p.clamp(0.0, 1.0),
        reject_equal_means: p < alpha,
        alpha,
    })
}

/// The paper's transition-detection band (Sec. V-A): `mean ± k·stdev` with
/// k = 2 by default.
///
/// The key design point reproduced here: with millions of pooled iterations
/// the *standard error* collapses toward zero (narrower than the device timer
/// resolution), so an FTaLaT-style `mean ± 2·stderr` acceptance band rejects
/// nearly every honest iteration. The band must instead track the sample
/// *standard deviation*, within which ~95 % of iterations fall.
#[derive(Clone, Copy, Debug)]
pub struct SigmaBand {
    /// Band centre (target-frequency mean iteration time).
    pub mean: f64,
    /// Sample standard deviation.
    pub stdev: f64,
    /// Width multiplier (2.0 in the paper).
    pub k: f64,
}

impl SigmaBand {
    /// The two-standard-deviation band of the paper.
    pub fn two_sigma(summary: &Summary) -> Self {
        SigmaBand {
            mean: summary.mean,
            stdev: summary.stdev,
            k: 2.0,
        }
    }

    /// A custom-width band (used by the ablation benchmarks).
    pub fn with_k(summary: &Summary, k: f64) -> Self {
        SigmaBand {
            mean: summary.mean,
            stdev: summary.stdev,
            k,
        }
    }

    /// Lower edge of the band.
    pub fn lo(&self) -> f64 {
        self.mean - self.k * self.stdev
    }

    /// Upper edge of the band.
    pub fn hi(&self) -> f64 {
        self.mean + self.k * self.stdev
    }

    /// Whether a single iteration execution time falls inside the band —
    /// line 16 of Algorithm 2.
    pub fn contains(&self, x: f64) -> bool {
        self.lo() <= x && x <= self.hi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::RunningStats;

    fn summary(mean: f64, stdev: f64, n: u64) -> Summary {
        Summary {
            n,
            mean,
            stdev,
            stderr: stdev / (n as f64).sqrt(),
            min: mean - 3.0 * stdev,
            max: mean + 3.0 * stdev,
        }
    }

    #[test]
    fn welch_detects_separated_means() {
        let a = summary(100.0, 1.0, 1000);
        let b = summary(110.0, 1.0, 1000);
        let r = welch_t_test(&a, &b, 0.05).unwrap();
        assert!(r.reject_equal_means);
        assert!(r.p_value < 1e-6);
        assert!(r.statistic < 0.0); // a.mean < b.mean
    }

    #[test]
    fn welch_accepts_identical_populations() {
        let a = summary(100.0, 5.0, 50);
        let b = summary(100.1, 5.0, 50);
        let r = welch_t_test(&a, &b, 0.05).unwrap();
        assert!(!r.reject_equal_means, "p = {}", r.p_value);
    }

    #[test]
    fn welch_requires_two_samples() {
        let a = summary(1.0, 1.0, 1);
        let b = summary(2.0, 1.0, 100);
        assert!(welch_t_test(&a, &b, 0.05).is_none());
    }

    #[test]
    fn welch_degenerate_zero_variance() {
        let a = summary(5.0, 0.0, 10);
        let b = summary(5.0, 0.0, 10);
        let r = welch_t_test(&a, &b, 0.05).unwrap();
        assert!(!r.reject_equal_means);
        let c = summary(6.0, 0.0, 10);
        let r = welch_t_test(&a, &c, 0.05).unwrap();
        assert!(r.reject_equal_means);
    }

    #[test]
    fn welch_dof_matches_satterthwaite_hand_calc() {
        // Equal n, equal s: dof = 2(n-1).
        let a = summary(0.0, 2.0, 25);
        let b = summary(1.0, 2.0, 25);
        let r = welch_t_test(&a, &b, 0.05).unwrap();
        assert!((r.dof - 48.0).abs() < 1e-9, "dof = {}", r.dof);
    }

    #[test]
    fn z_and_t_agree_for_large_n() {
        let a = summary(10.0, 1.0, 100_000);
        let b = summary(10.01, 1.0, 100_000);
        let zt = z_test(&a, &b, 0.05).unwrap();
        let tt = welch_t_test(&a, &b, 0.05).unwrap();
        // t with dof ~ 2e5 differs from the normal by O(1/dof).
        assert!((zt.p_value - tt.p_value).abs() < 1e-4);
    }

    #[test]
    fn diff_ci_excludes_zero_for_distinguishable_pairs() {
        let fast = summary(50.0, 0.5, 10_000); // high frequency: short iterations
        let slow = summary(80.0, 0.8, 10_000);
        let ci = diff_confidence_interval(&slow, &fast, 0.95).unwrap();
        assert!(!ci.contains_zero());
        assert!(ci.lo > 0.0);
        assert!((ci.lo + ci.hi) / 2.0 - 30.0 < 1e-9);
    }

    #[test]
    fn diff_ci_includes_zero_for_close_pairs() {
        // Frequencies so close the runtimes are statistically identical.
        let a = summary(50.0, 5.0, 30);
        let b = summary(50.5, 5.0, 30);
        let ci = diff_confidence_interval(&a, &b, 0.95).unwrap();
        assert!(ci.contains_zero());
    }

    #[test]
    fn ci_width_shrinks_with_n() {
        let a_small = summary(50.0, 5.0, 10);
        let b_small = summary(52.0, 5.0, 10);
        let a_big = summary(50.0, 5.0, 10_000);
        let b_big = summary(52.0, 5.0, 10_000);
        let w_small = diff_confidence_interval(&a_small, &b_small, 0.95)
            .unwrap()
            .width();
        let w_big = diff_confidence_interval(&a_big, &b_big, 0.95)
            .unwrap()
            .width();
        assert!(w_big < w_small / 10.0);
    }

    #[test]
    fn mann_whitney_detects_shifted_samples() {
        let a: Vec<f64> = (0..40).map(|i| 10.0 + (i % 7) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..40).map(|i| 14.0 + (i % 7) as f64 * 0.1).collect();
        let r = mann_whitney_u(&a, &b, 0.05).unwrap();
        assert!(r.reject_equal_means, "p = {}", r.p_value);
        assert!(r.p_value < 1e-6);
        // a sits below b: U_a is small, z negative.
        assert!(r.statistic < 0.0);
    }

    #[test]
    fn mann_whitney_accepts_identical_samples() {
        let a: Vec<f64> = (0..50).map(|i| 5.0 + (i % 11) as f64 * 0.2).collect();
        let r = mann_whitney_u(&a, &a, 0.05).unwrap();
        assert!(!r.reject_equal_means, "p = {}", r.p_value);
        // Symmetric pooled sample: the rank sums split exactly in half.
        assert!(r.statistic.abs() < 1e-9);
        assert!(r.p_value > 0.999, "p = {}", r.p_value);
    }

    #[test]
    fn mann_whitney_is_robust_to_outliers_where_t_is_not() {
        // A single enormous outlier swamps the t-test's variance estimate but
        // moves only one rank.
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.01).collect();
        let mut b: Vec<f64> = (0..30).map(|i| 10.5 + (i % 5) as f64 * 0.01).collect();
        b[0] = 1e6;
        let r = mann_whitney_u(&a, &b, 0.05).unwrap();
        assert!(r.reject_equal_means, "p = {}", r.p_value);
    }

    #[test]
    fn mann_whitney_degenerate_and_tiny_samples() {
        assert!(mann_whitney_u(&[1.0], &[1.0, 2.0], 0.05).is_none());
        assert!(mann_whitney_u(&[1.0, 2.0], &[1.0], 0.05).is_none());
        let r = mann_whitney_u(&[3.0, 3.0, 3.0], &[3.0, 3.0], 0.05).unwrap();
        assert!(!r.reject_equal_means);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn mann_whitney_tie_correction_matches_untied_ranks() {
        // Heavy ties: the correction must shrink the variance, not panic.
        let a = vec![1.0, 1.0, 1.0, 2.0, 2.0, 3.0];
        let b = vec![2.0, 2.0, 3.0, 3.0, 3.0, 4.0];
        let r = mann_whitney_u(&a, &b, 0.05).unwrap();
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn sigma_band_semantics() {
        let s = Summary::of(&[9.0, 10.0, 11.0, 10.0, 10.0]);
        let band = SigmaBand::two_sigma(&s);
        assert!(band.contains(s.mean));
        assert!(band.contains(s.mean + 1.9 * s.stdev));
        assert!(!band.contains(s.mean + 2.1 * s.stdev));
        assert_eq!(band.lo(), s.mean - 2.0 * s.stdev);
        assert_eq!(band.hi(), s.mean + 2.0 * s.stdev);
    }

    #[test]
    fn sigma_band_vs_stderr_interval_paper_argument() {
        // Reproduce the Sec. V-A argument numerically: with n = 10^6 samples
        // of stdev 1, the 2-stderr interval has width 0.004 and contains a
        // vanishing share of samples, while the 2-stdev band contains ~95 %.
        let mut rs = RunningStats::new();
        // Deterministic pseudo-normal sample via inverse-CDF stratification.
        let n = 1_000_000u64;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            rs.push(100.0 + crate::dist::normal_quantile(p));
        }
        let s = rs.summary();
        let band = SigmaBand::two_sigma(&s);
        let stderr_band = SigmaBand {
            mean: s.mean,
            stdev: s.stderr,
            k: 2.0,
        };

        let mut in_band = 0u64;
        let mut in_stderr = 0u64;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            let x = 100.0 + crate::dist::normal_quantile(p);
            if band.contains(x) {
                in_band += 1;
            }
            if stderr_band.contains(x) {
                in_stderr += 1;
            }
        }
        let frac_band = in_band as f64 / n as f64;
        let frac_stderr = in_stderr as f64 / n as f64;
        assert!(
            frac_band > 0.94 && frac_band < 0.96,
            "2-sigma frac {frac_band}"
        );
        assert!(frac_stderr < 0.01, "2-stderr frac {frac_stderr}");
    }
}
