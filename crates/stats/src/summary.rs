//! Streaming descriptive statistics (Welford) with exact parallel pooling.
//!
//! Phase one of the methodology computes the mean iteration execution time and
//! its standard deviation per frequency from *millions* of samples (every
//! iteration on every SM). A numerically stable streaming accumulator that can
//! be merged across SMs is therefore the workhorse of the whole pipeline.

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm) with Chan's parallel merge rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build directly from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (Chan et al.). The result is
    /// identical (up to rounding) to having pushed all observations into one
    /// accumulator, which is what lets per-SM statistics be pooled exactly.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n-1 denominator); NaN for n < 2.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation; NaN for n < 2.
    pub fn stdev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (eq. 2 of the paper); NaN for n < 2.
    pub fn stderr(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Smallest observation; +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Freeze into an immutable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            stdev: self.stdev(),
            stderr: self.stderr(),
            min: self.min,
            max: self.max,
        }
    }
}

/// Immutable descriptive summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1).
    pub stdev: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarise a slice.
    pub fn of(xs: &[f64]) -> Summary {
        RunningStats::from_slice(xs).summary()
    }

    /// Relative standard error of this sample (see
    /// [`relative_standard_error`]).
    pub fn rse(&self) -> f64 {
        relative_standard_error(self.mean, self.stderr)
    }
}

/// Relative standard error: `stderr / |mean|`.
///
/// Section VI: "the benchmark runs until the RSE of the switching latency
/// falls below a predefined threshold" (default 5 %). Returns +inf for a zero
/// mean and NaN when either input is NaN, so a not-yet-converged controller
/// never stops early by accident.
pub fn relative_standard_error(mean: f64, stderr: f64) -> f64 {
    if mean == 0.0 {
        f64::INFINITY
    } else {
        stderr / mean.abs()
    }
}

/// Robust statistics: iteratively trim observations beyond `k_sigma` sample
/// standard deviations of the sample mean, re-estimating up to `passes`
/// times.
///
/// Device-side disturbances (ECC scrubs, context timeslices) produce rare
/// multi-x iteration durations. Left in, one such spike inflates the
/// standard deviation — and with it every σ-derived band and confidence
/// interval — by a large factor: phase 1 would widen the 2σ detection band,
/// and phase 3's confirmation interval would widen until it accepts streams
/// that are demonstrably not at the target frequency yet. Both phases
/// therefore estimate through this trimmer.
pub fn robust_stats(xs: &[f64], k_sigma: f64, passes: usize) -> RunningStats {
    let mut stats = RunningStats::from_slice(xs);
    for _ in 0..passes {
        let (mean, stdev) = (stats.mean(), stats.stdev());
        if !stdev.is_finite() || stdev == 0.0 {
            break;
        }
        let mut trimmed = RunningStats::new();
        for &x in xs {
            if (x - mean).abs() <= k_sigma * stdev {
                trimmed.push(x);
            }
        }
        if trimmed.count() == stats.count() || trimmed.count() < 16 {
            break;
        }
        stats = trimmed;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn known_small_sample() {
        // var([2,4,4,4,5,5,7,9]) with n-1 = 32/7
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 8);
        assert!(close(s.mean, 5.0, 1e-12));
        assert!(close(s.stdev, (32.0f64 / 7.0).sqrt(), 1e-12));
        assert!(close(s.stderr, (32.0f64 / 7.0 / 8.0).sqrt(), 1e-12));
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.stdev().is_nan());

        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert!(s.stdev().is_nan());
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 50.0)
            .collect();
        let whole = RunningStats::from_slice(&xs);
        let mut merged = RunningStats::new();
        for chunk in xs.chunks(77) {
            let part = RunningStats::from_slice(chunk);
            merged.merge(&part);
        }
        assert_eq!(whole.count(), merged.count());
        assert!(close(whole.mean(), merged.mean(), 1e-12));
        assert!(close(whole.variance(), merged.variance(), 1e-10));
        assert_eq!(whole.min(), merged.min());
        assert_eq!(whole.max(), merged.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::from_slice(&[1.0, 2.0, 3.0]);
        let before = a.summary();
        a.merge(&RunningStats::new());
        assert_eq!(a.summary(), before);

        let mut e = RunningStats::new();
        e.merge(&RunningStats::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(e.summary(), before);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: tiny variance on a huge mean.
        let xs: Vec<f64> = (0..10_000).map(|i| 1e9 + (i % 3) as f64).collect();
        let s = Summary::of(&xs);
        // exact variance of repeating 0,1,2 pattern is 2/3 (population),
        // sample variance is close to that for n = 10_000.
        assert!(
            (s.stdev * s.stdev - 2.0 / 3.0).abs() < 1e-3,
            "var = {}",
            s.stdev * s.stdev
        );
    }

    #[test]
    fn rse_definition() {
        assert_eq!(relative_standard_error(0.0, 1.0), f64::INFINITY);
        assert!(close(relative_standard_error(10.0, 0.5), 0.05, 1e-12));
        assert!(close(relative_standard_error(-10.0, 0.5), 0.05, 1e-12));
        let s = Summary::of(&[9.0, 10.0, 11.0]);
        assert!(close(s.rse(), s.stderr / 10.0, 1e-12));
    }
}
