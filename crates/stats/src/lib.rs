//! Statistical machinery behind the LATEST methodology.
//!
//! The paper (Sec. IV, V-A, V-B) leans on a small but precise set of
//! statistical tools; this crate implements them from scratch:
//!
//! * streaming descriptive statistics with exact pooling across GPU cores
//!   ([`summary::RunningStats`], [`summary::Summary`]),
//! * the normal and Student-t distributions ([`dist`]) — needed for
//!   confidence intervals and the null-hypothesis tests of Algorithm 1/2,
//! * Welch's t-test, z-test and the confidence interval on a difference of
//!   means ([`hypothesis`]),
//! * the paper's central measurement-theoretic point (Sec. V-A): transition
//!   *detection* must use a two-standard-*deviation* band around the mean,
//!   not the collapsing two-standard-*error* confidence interval
//!   ([`hypothesis::SigmaBand`]),
//! * the relative-standard-error stopping rule that bounds how many times a
//!   switching-latency measurement must be repeated
//!   ([`summary::relative_standard_error`]),
//! * quantiles and quantile ranges ([`mod@quantile`]) used by the adaptive
//!   DBSCAN outlier filter (Algorithm 3),
//! * weighted least squares with a Huber-robust IRLS variant and residual
//!   diagnostics ([`wls`]) — the regression engine behind the prediction
//!   service's parametric latency model.
//!
//! Everything is pure, allocation-light `f64` math with no external
//! dependencies, unit-tested against closed-form values.

pub mod dist;
pub mod hypothesis;
pub mod quantile;
pub mod summary;
pub mod wls;

pub use hypothesis::{
    diff_confidence_interval, welch_t_test, z_test, ConfidenceInterval, SigmaBand, TestResult,
};
pub use quantile::{median, quantile, quantile_range};
pub use summary::{relative_standard_error, robust_stats, RunningStats, Summary};
pub use wls::{huber_fit, wls_fit, ResidualDiagnostics, WlsError, WlsFit};
