//! Normal and Student-t distribution functions, implemented from scratch.
//!
//! The methodology needs: Φ and Φ⁻¹ for z-tests and confidence intervals, and
//! the Student-t CDF plus its inverse for Welch's test on the small
//! (25–1000 sample) switching-latency datasets. Accuracy targets are well
//! beyond what the measurement noise warrants (|err| < 1e-7 for Φ, < 1e-8 for
//! Φ⁻¹, < 1e-9 for the incomplete beta), verified in the unit tests.

/// Error function, Abramowitz & Stegun 7.1.26 (max abs error 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal density φ(x).
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |relative error| < 1e-9 over (0, 1)).
///
/// Panics if `p` is outside (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement using the high-accuracy erf-based CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularised incomplete beta function I_x(a, b) via the Lentz continued
/// fraction (Numerical Recipes style), with the symmetry transform for fast
/// convergence.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta requires a,b > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Student-t cumulative distribution function with `dof` degrees of freedom.
/// `dof` need not be an integer (Welch–Satterthwaite produces fractional
/// degrees of freedom).
pub fn student_t_cdf(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "student_t_cdf requires dof > 0");
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = dof / (dof + t * t);
    let p = 0.5 * incomplete_beta(dof / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Inverse Student-t CDF (quantile). Bisection seeded with the normal
/// quantile, refined by Newton steps; |err| < 1e-9 in t-units.
///
/// Panics if `p` is outside (0, 1).
pub fn student_t_quantile(p: f64, dof: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "student_t_quantile requires p in (0,1), got {p}"
    );
    assert!(dof > 0.0);
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }

    // Bracket: start from the normal quantile and expand.
    let mut lo = -1e3;
    let mut hi = 1e3;
    let guess = normal_quantile(p);
    if student_t_cdf(guess, dof) > p {
        hi = guess;
    } else {
        lo = guess;
    }
    // Bisection to ~1e-10.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, dof) > p {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Two-sided critical value `t*` such that P(|T| <= t*) = `confidence`.
pub fn t_critical_two_sided(confidence: f64, dof: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    student_t_quantile(0.5 + confidence / 2.0, dof)
}

/// Two-sided critical value `z*` such that P(|Z| <= z*) = `confidence`.
pub fn z_critical_two_sided(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    normal_quantile(0.5 + confidence / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        // The A&S erf approximation carries ~1.5e-7 absolute error.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959963985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.644853627) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-7, "p={p} x={x}");
        }
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn normal_quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn ln_gamma_reference_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_symmetry_and_bounds() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &x in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let lhs = incomplete_beta(2.5, 1.5, x);
            let rhs = 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12);
        }
        // I_x(1,1) = x (uniform distribution)
        for &x in &[0.2, 0.5, 0.8] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn t_cdf_reference_values() {
        // dof=1 is the Cauchy distribution: CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-9);
        // dof -> inf approaches the normal.
        assert!((student_t_cdf(1.96, 1e6) - normal_cdf(1.96)).abs() < 1e-5);
        // Standard table: t=2.228, dof=10 -> 0.975.
        assert!((student_t_cdf(2.228, 10.0) - 0.975).abs() < 2e-4);
        // Symmetry.
        assert!((student_t_cdf(-1.3, 7.0) + student_t_cdf(1.3, 7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_quantile_reference_values() {
        // Classic table values (two-sided 95 %).
        let cases = [(1.0, 12.706), (5.0, 2.571), (10.0, 2.228), (30.0, 2.042)];
        for (dof, want) in cases {
            let got = t_critical_two_sided(0.95, dof);
            assert!((got - want).abs() < 2e-3, "dof={dof} got={got} want={want}");
        }
        // Median is zero.
        assert_eq!(student_t_quantile(0.5, 3.0), 0.0);
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for &dof in &[1.0, 2.5, 7.0, 40.0] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let t = student_t_quantile(p, dof);
                assert!(
                    (student_t_cdf(t, dof) - p).abs() < 1e-8,
                    "dof={dof} p={p} t={t}"
                );
            }
        }
    }

    #[test]
    fn z_critical_matches_tables() {
        assert!((z_critical_two_sided(0.95) - 1.959964).abs() < 1e-4);
        assert!((z_critical_two_sided(0.99) - 2.575829).abs() < 1e-4);
    }
}
