//! Property-based tests for the statistics substrate: the methodology's
//! stopping rules and detection bands are only as sound as these invariants.

use latest_stats::quantile::{quantile_sorted, Histogram};
use latest_stats::{
    diff_confidence_interval, median, quantile, quantile_range, welch_t_test, z_test, RunningStats,
    SigmaBand, Summary,
};
use proptest::prelude::*;

/// Non-degenerate finite samples.
fn samples(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, min_len..200)
}

proptest! {
    // --- RunningStats / Summary -------------------------------------------

    #[test]
    fn running_stats_matches_two_pass_reference(xs in samples(2)) {
        let s = RunningStats::from_slice(&xs).summary();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        // Welford vs naive two-pass: equal within floating-point slack.
        prop_assert!((s.mean - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.stdev - var.sqrt()).abs() <= 1e-5 * (1.0 + var.sqrt()));
    }

    #[test]
    fn summary_orders_min_mean_max(xs in samples(1)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.n, xs.len() as u64);
    }

    #[test]
    fn stderr_is_stdev_over_sqrt_n(xs in samples(2)) {
        let s = Summary::of(&xs);
        let expected = s.stdev / (xs.len() as f64).sqrt();
        prop_assert!((s.stderr - expected).abs() <= 1e-9 * (1.0 + expected));
    }

    #[test]
    fn merge_equals_concatenation(a in samples(1), b in samples(1)) {
        let mut left = RunningStats::from_slice(&a);
        left.merge(&RunningStats::from_slice(&b));
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let whole = RunningStats::from_slice(&joined);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.stdev() - whole.stdev()).abs() <= 1e-5 * (1.0 + whole.stdev()));
    }

    #[test]
    fn shifting_data_shifts_mean_not_stdev(xs in samples(2), shift in -1.0e4..1.0e4f64) {
        let base = Summary::of(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let s = Summary::of(&shifted);
        prop_assert!((s.mean - (base.mean + shift)).abs() <= 1e-6 * (1.0 + base.mean.abs() + shift.abs()));
        prop_assert!((s.stdev - base.stdev).abs() <= 1e-6 * (1.0 + base.stdev));
    }

    #[test]
    fn rse_is_scale_invariant(xs in samples(3), k in 0.001..1000.0f64) {
        // All-positive data so the mean cannot cross zero.
        let pos: Vec<f64> = xs.iter().map(|x| 1.0 + x.abs()).collect();
        let scaled: Vec<f64> = pos.iter().map(|x| x * k).collect();
        let a = Summary::of(&pos).rse();
        let b = Summary::of(&scaled).rse();
        prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a));
    }

    // --- quantiles ---------------------------------------------------------

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in samples(1), p in 0.0..1.0f64, q in 0.0..1.0f64) {
        let (lo, hi) = (p.min(q), p.max(q));
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(a >= min - 1e-12 && b <= max + 1e-12);
    }

    #[test]
    fn quantile_sorted_agrees_with_unsorted(xs in samples(1), p in 0.0..1.0f64) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(quantile(&xs, p).to_bits(), quantile_sorted(&sorted, p).to_bits());
    }

    #[test]
    fn median_between_extremes(xs in samples(1)) {
        let m = median(&xs);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(m >= min - 1e-12 && m <= max + 1e-12);
    }

    #[test]
    fn quantile_range_is_nonnegative(xs in samples(2)) {
        prop_assert!(quantile_range(&xs, 0.05, 0.95) >= -1e-12);
    }

    // --- histogram ---------------------------------------------------------

    #[test]
    fn histogram_conserves_observations(xs in samples(1), bins in 1usize..64) {
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        let h = Histogram::build(&xs, lo, hi + 1.0, bins);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    // --- bands & tests ------------------------------------------------------

    #[test]
    fn sigma_band_always_contains_the_mean(xs in samples(2), k in 0.1..6.0f64) {
        let s = Summary::of(&xs);
        let band = SigmaBand::with_k(&s, k);
        prop_assert!(band.contains(s.mean));
        prop_assert!(band.lo() <= band.hi());
    }

    #[test]
    fn diff_ci_is_antisymmetric(a in samples(3), b in samples(3)) {
        if let (Some(ab), Some(ba)) = (
            diff_confidence_interval(&Summary::of(&a), &Summary::of(&b), 0.95),
            diff_confidence_interval(&Summary::of(&b), &Summary::of(&a), 0.95),
        ) {
            prop_assert!((ab.lo + ba.hi).abs() <= 1e-6 * (1.0 + ab.lo.abs()));
            prop_assert!((ab.hi + ba.lo).abs() <= 1e-6 * (1.0 + ab.hi.abs()));
        }
    }

    #[test]
    fn identical_samples_are_never_distinguished(xs in samples(3)) {
        let s = Summary::of(&xs);
        if let Some(ci) = diff_confidence_interval(&s, &s, 0.95) {
            prop_assert!(ci.contains_zero());
        }
        if let Some(t) = welch_t_test(&s, &s, 0.05) {
            prop_assert!(!t.reject_equal_means);
        }
        if let Some(z) = z_test(&s, &s, 0.05) {
            prop_assert!(!z.reject_equal_means);
        }
    }

    #[test]
    fn far_separated_samples_are_distinguished(
        xs in prop::collection::vec(0.0..1.0f64, 10..100),
        gap in 100.0..1.0e4f64,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + gap).collect();
        let a = Summary::of(&xs);
        let b = Summary::of(&shifted);
        // A 100x-the-spread separation must always reject the null.
        if let Some(ci) = diff_confidence_interval(&a, &b, 0.95) {
            prop_assert!(!ci.contains_zero());
        }
        if let Some(t) = welch_t_test(&a, &b, 0.05) {
            prop_assert!(t.reject_equal_means);
        }
    }

    #[test]
    fn wider_confidence_gives_wider_interval(a in samples(3), b in samples(3)) {
        let (sa, sb) = (Summary::of(&a), Summary::of(&b));
        if let (Some(ci90), Some(ci99)) = (
            diff_confidence_interval(&sa, &sb, 0.90),
            diff_confidence_interval(&sa, &sb, 0.99),
        ) {
            prop_assert!(ci99.width() >= ci90.width() - 1e-12);
        }
    }
}
