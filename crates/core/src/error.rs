//! Error types for the LATEST pipeline.

use latest_cuda_sim::CudaError;
use latest_gpu_sim::freq::FreqMhz;
use latest_nvml_sim::NvmlError;
use std::fmt;

/// Result alias for pipeline operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors surfaced by the LATEST pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// NVML façade failure.
    Nvml(NvmlError),
    /// CUDA façade failure.
    Cuda(CudaError),
    /// Fewer than two distinct frequencies requested.
    NotEnoughFrequencies {
        /// How many were given.
        got: usize,
    },
    /// A requested frequency is not on the device ladder.
    UnknownFrequency {
        /// The offending frequency.
        freq: FreqMhz,
    },
    /// A requested memory frequency is not on the device memory ladder.
    UnknownMemFrequency {
        /// The offending frequency.
        freq: FreqMhz,
    },
    /// The campaign sweeps memory clocks but the platform does not offer
    /// the [`MemoryClocks`](crate::platform::MemoryClocks) capability.
    MemoryClocksUnsupported,
    /// Phase 2/3 retried more than the configured bound without producing a
    /// single valid per-core latency (Algorithm 2's GOTO-line-1 loop guard).
    RetriesExhausted {
        /// Initial frequency of the pair.
        init: FreqMhz,
        /// Target frequency of the pair.
        target: FreqMhz,
        /// Number of attempts made.
        attempts: usize,
    },
    /// CSV parse failure.
    CsvFormat {
        /// Line number (1-based).
        line: usize,
        /// Description.
        message: String,
    },
    /// The session was cancelled before phase 1 produced anything worth
    /// checkpointing.
    Cancelled,
    /// A resume checkpoint does not match the configured campaign.
    CheckpointMismatch {
        /// What disagreed.
        reason: String,
    },
    /// A declarative campaign spec failed validation or resolution.
    Spec(crate::spec::SpecErrors),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nvml(e) => write!(f, "NVML: {e}"),
            CoreError::Cuda(e) => write!(f, "CUDA: {e}"),
            CoreError::NotEnoughFrequencies { got } => {
                write!(f, "need at least two distinct frequencies, got {got}")
            }
            CoreError::UnknownFrequency { freq } => {
                write!(f, "frequency {freq} MHz is not on the device ladder")
            }
            CoreError::UnknownMemFrequency { freq } => {
                write!(f, "memory frequency {freq} MHz is not on the device memory ladder")
            }
            CoreError::MemoryClocksUnsupported => {
                write!(f, "the platform does not expose memory-clock control")
            }
            CoreError::RetriesExhausted { init, target, attempts } => write!(
                f,
                "no valid switching-latency sample for {init}->{target} MHz after {attempts} attempts"
            ),
            CoreError::CsvFormat { line, message } => {
                write!(f, "CSV line {line}: {message}")
            }
            CoreError::Cancelled => write!(f, "campaign cancelled before any pair was measured"),
            CoreError::CheckpointMismatch { reason } => {
                write!(f, "resume checkpoint mismatch: {reason}")
            }
            CoreError::Spec(e) => write!(f, "invalid campaign spec: {e}"),
            CoreError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nvml(e) => Some(e),
            CoreError::Cuda(e) => Some(e),
            CoreError::Spec(e) => Some(e),
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvmlError> for CoreError {
    fn from(e: NvmlError) -> Self {
        CoreError::Nvml(e)
    }
}

impl From<CudaError> for CoreError {
    fn from(e: CudaError) -> Self {
        CoreError::Cuda(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

impl From<crate::spec::SpecErrors> for CoreError {
    fn from(e: crate::spec::SpecErrors) -> Self {
        CoreError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CoreError::NotEnoughFrequencies { got: 1 };
        assert!(e.to_string().contains("at least two"));
        let e = CoreError::UnknownFrequency { freq: FreqMhz(999) };
        assert!(e.to_string().contains("999"));
        let e = CoreError::RetriesExhausted {
            init: FreqMhz(300),
            target: FreqMhz(600),
            attempts: 12,
        };
        assert!(e.to_string().contains("300->600"));
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn conversions() {
        let e: CoreError = NvmlError::InvalidDeviceIndex { index: 1, count: 0 }.into();
        assert!(matches!(e, CoreError::Nvml(_)));
        let e: CoreError = std::io::Error::other("boom").into();
        assert!(matches!(e, CoreError::Io(_)));
    }
}
