//! The streaming campaign engine: pair-granular scheduling, typed progress
//! events, cooperative cancellation and checkpoint/resume.
//!
//! [`CampaignSession`] replaces the monolithic blocking `Latest::run()` with
//! an engine that
//!
//! * schedules work at **pair granularity** — phase 1 and the probe run
//!   once, then every ordered pair is an independent work item on its own
//!   freshly seeded platform (parallel by default, sequential on request,
//!   bitwise identical either way);
//! * emits **typed progress events** ([`CampaignEvent`]) through any number
//!   of observer hooks or a plain [`std::sync::mpsc`] channel, so UIs and
//!   loggers watch the campaign in real time;
//! * honours a **cooperative [`CancelToken`]**: cancellation is checked
//!   before each pair, unmeasured pairs are recorded as
//!   [`PairOutcome::Cancelled`], and the partial [`CampaignResult`] is a
//!   valid checkpoint;
//! * **resumes** from such a checkpoint: completed pairs are restored
//!   verbatim, only the missing ones run, and — because every pair's
//!   platform is seeded from `(campaign seed, pair)` — the resumed result
//!   is bitwise identical to an uninterrupted run.
//!
//! The engine is generic over [`PlatformFactory`], so the same scheduling,
//! eventing and checkpointing applies to any backend implementing
//! [`Platform`](crate::platform::Platform).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use latest_cluster::AdaptiveConfig;
use parking_lot::Mutex;
use rayon::prelude::*;

use crate::analysis::analyze_pair;
use crate::campaign::{CampaignResult, PairMeasurement};
use crate::config::CampaignConfig;
use crate::controller::{run_pair, PairOutcome};
use crate::error::{CoreError, CoreResult};
use crate::phase1::{run_phase1, Phase1Result};
use crate::platform::{PlatformFactory, SimPlatformFactory};
use crate::probe::{estimate_upper_bound, ProbeResult};
use crate::state::FreqState;

/// Why a pair produced no measurements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// Phase 1 found the pair statistically indistinguishable.
    Indistinguishable,
    /// Power throttling made the pair unmeasurable.
    PowerLimited,
    /// Every evaluation retry failed.
    RetriesExhausted,
    /// The session was cancelled before the pair was scheduled.
    Cancelled,
}

impl SkipReason {
    fn of(outcome: &PairOutcome) -> Option<SkipReason> {
        match outcome {
            PairOutcome::Completed(_) => None,
            PairOutcome::SkippedIndistinguishable => Some(SkipReason::Indistinguishable),
            PairOutcome::PowerLimited { .. } => Some(SkipReason::PowerLimited),
            PairOutcome::RetriesExhausted { .. } => Some(SkipReason::RetriesExhausted),
            PairOutcome::Cancelled => Some(SkipReason::Cancelled),
        }
    }
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SkipReason::Indistinguishable => "indistinguishable",
            SkipReason::PowerLimited => "power-limited",
            SkipReason::RetriesExhausted => "retries exhausted",
            SkipReason::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// Typed progress events emitted by a [`CampaignSession`].
///
/// Pair-level events may interleave arbitrarily between pairs when the
/// session runs in parallel; per pair, `PairStarted` always precedes
/// `PairFinished`/`PairSkipped`.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignEvent {
    /// The session started.
    CampaignStarted {
        /// Device under measurement.
        device_name: String,
        /// Number of ordered pairs scheduled.
        n_pairs: usize,
    },
    /// Phase 1 finished characterising and validating.
    Phase1Done {
        /// Pairs whose difference interval excluded zero.
        valid_pairs: usize,
        /// Pairs excluded as indistinguishable.
        skipped_pairs: usize,
    },
    /// The probe phase produced a capture-window bound.
    ProbeDone {
        /// Largest observed latency (ms).
        max_latency_ms: f64,
    },
    /// One pair's measurement loop is starting.
    PairStarted {
        /// Position in `ordered_state_pairs` order.
        index: usize,
        /// Initial frequency state.
        init: FreqState,
        /// Target frequency state.
        target: FreqState,
    },
    /// One pair completed with measurements.
    PairFinished {
        /// Position in `ordered_state_pairs` order.
        index: usize,
        /// Initial frequency state.
        init: FreqState,
        /// Target frequency state.
        target: FreqState,
        /// Accepted measurement count.
        measurements: usize,
        /// Outlier-filtered mean latency (ms).
        mean_ms: f64,
    },
    /// One pair ended without measurements.
    PairSkipped {
        /// Position in `ordered_state_pairs` order.
        index: usize,
        /// Initial frequency state.
        init: FreqState,
        /// Target frequency state.
        target: FreqState,
        /// Why.
        reason: SkipReason,
    },
    /// One pair was restored from a resume checkpoint without re-running.
    PairRestored {
        /// Position in `ordered_state_pairs` order.
        index: usize,
        /// Initial frequency state.
        init: FreqState,
        /// Target frequency state.
        target: FreqState,
    },
    /// A [`WorkUnit`] shard began executing its pairs.
    ShardStarted {
        /// Shard position in its plan (0-based).
        shard: usize,
        /// Number of shards in the plan.
        n_shards: usize,
        /// Pairs the shard owns.
        pairs: usize,
    },
    /// A [`WorkUnit`] shard finished every pair it owns.
    ShardFinished {
        /// Shard position in its plan (0-based).
        shard: usize,
        /// Number of shards in the plan.
        n_shards: usize,
        /// Pairs the shard owns.
        pairs: usize,
    },
    /// The session finished (possibly partially, after cancellation).
    CampaignFinished {
        /// Pairs that completed with measurements.
        completed: usize,
        /// Pairs skipped for statistical/thermal reasons.
        skipped: usize,
        /// Pairs left unmeasured by cancellation.
        cancelled: usize,
    },
}

impl std::fmt::Display for CampaignEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignEvent::CampaignStarted {
                device_name,
                n_pairs,
            } => {
                write!(f, "campaign started on {device_name}: {n_pairs} pairs")
            }
            CampaignEvent::Phase1Done {
                valid_pairs,
                skipped_pairs,
            } => {
                write!(
                    f,
                    "phase 1 done: {valid_pairs} valid, {skipped_pairs} skipped"
                )
            }
            CampaignEvent::ProbeDone { max_latency_ms } => {
                write!(f, "probe done: bound {max_latency_ms:.3} ms")
            }
            CampaignEvent::PairStarted { init, target, .. } => {
                write!(f, "pair {init}->{target} MHz started")
            }
            CampaignEvent::PairFinished {
                init,
                target,
                measurements,
                mean_ms,
                ..
            } => {
                write!(
                    f,
                    "pair {init}->{target} MHz finished: n={measurements}, mean {mean_ms:.3} ms"
                )
            }
            CampaignEvent::PairSkipped {
                init,
                target,
                reason,
                ..
            } => {
                write!(f, "pair {init}->{target} MHz skipped ({reason})")
            }
            CampaignEvent::PairRestored { init, target, .. } => {
                write!(f, "pair {init}->{target} MHz restored from checkpoint")
            }
            CampaignEvent::ShardStarted {
                shard,
                n_shards,
                pairs,
            } => {
                write!(f, "shard {}/{n_shards} started: {pairs} pairs", shard + 1)
            }
            CampaignEvent::ShardFinished {
                shard,
                n_shards,
                pairs,
            } => {
                write!(f, "shard {}/{n_shards} finished: {pairs} pairs", shard + 1)
            }
            CampaignEvent::CampaignFinished {
                completed,
                skipped,
                cancelled,
            } => {
                write!(
                    f,
                    "campaign finished: {completed} completed, {skipped} skipped, {cancelled} cancelled"
                )
            }
        }
    }
}

/// Observer hook for [`CampaignEvent`]s.
///
/// Implemented for any `Fn(&CampaignEvent) + Send + Sync` closure; events
/// may arrive from worker threads when the session runs in parallel.
pub trait CampaignObserver: Send + Sync {
    /// Called for every event, in emission order per pair.
    fn event(&self, event: &CampaignEvent);
}

impl<F: Fn(&CampaignEvent) + Send + Sync> CampaignObserver for F {
    fn event(&self, event: &CampaignEvent) {
        self(event)
    }
}

/// Observer that forwards every event into an mpsc channel.
pub struct ChannelObserver {
    tx: Mutex<Sender<CampaignEvent>>,
}

impl ChannelObserver {
    /// Wrap a sender.
    pub fn new(tx: Sender<CampaignEvent>) -> Self {
        ChannelObserver { tx: Mutex::new(tx) }
    }
}

impl CampaignObserver for ChannelObserver {
    fn event(&self, event: &CampaignEvent) {
        // A dropped receiver only means nobody is listening any more.
        let _ = self.tx.lock().send(event.clone());
    }
}

/// Cooperative cancellation handle.
///
/// Clone it out of the session, hand it to another thread (or an observer),
/// and call [`CancelToken::cancel`]; the session checks it at pair
/// granularity and winds down, recording unmeasured pairs as
/// [`PairOutcome::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Phase 1 + probe: the once-per-campaign preamble every shard shares.
///
/// Produced by [`CampaignSession::prelude`] on a platform seeded from the
/// campaign seed alone (or restored from a resume checkpoint, which is
/// equivalent bit for bit), then handed unchanged to every
/// [`CampaignSession::run_unit`] call.
#[derive(Clone, Debug)]
pub struct CampaignPrelude {
    /// Phase-1 characterisation and pair validation.
    pub phase1: Phase1Result,
    /// Probe-phase capture-window bound.
    pub probe: ProbeResult,
}

/// One pair inside a [`WorkUnit`]: its canonical position plus the
/// `pair_seed`-derived seed its platform is constructed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairTask {
    /// Position in `ordered_state_pairs` order.
    pub index: usize,
    /// Initial frequency state.
    pub init: FreqState,
    /// Target frequency state.
    pub target: FreqState,
    /// The platform seed for this pair:
    /// `config.state_pair_seed(init, target)`.
    pub seed: u64,
}

/// One schedulable shard of a campaign: a subset of the ordered pairs.
///
/// # Determinism contract
///
/// A work unit owns everything its pairs need. Each [`PairTask`] carries
/// the `pair_seed`-derived seed its `Platform` is built from through the
/// session's [`PlatformFactory`], and phase 1 + probe arrive as the shared
/// [`CampaignPrelude`]. No state flows between pairs or between shards, so
/// *any* partition of the pairs into units, executed in *any* order on
/// *any* number of threads (or processes), yields measurements bitwise
/// identical to a sequential run; [`CampaignResult::merge`] only has to
/// put them back in canonical order.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    shard: usize,
    n_shards: usize,
    announce: bool,
    pairs: Vec<PairTask>,
}

impl WorkUnit {
    /// This shard's position in its plan (0-based).
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of shards in the plan this unit belongs to.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The pairs this shard owns, in canonical order.
    pub fn pairs(&self) -> &[PairTask] {
        &self.pairs
    }

    /// Number of pairs in this shard.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the shard owns no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Measurements produced by one [`WorkUnit`], tagged with canonical pair
/// indices so [`CampaignResult::merge`] can reassemble them in order.
#[derive(Clone, Debug)]
pub struct ShardResult {
    /// The shard that produced these measurements.
    pub shard: usize,
    /// `(canonical pair index, measurement)` for every pair of the unit.
    pub pairs: Vec<(usize, PairMeasurement)>,
}

/// An enumerable partition of a campaign's pending pairs into
/// [`WorkUnit`]s, produced by [`CampaignSession::plan`].
#[derive(Clone, Debug)]
pub struct ShardPlan {
    total_pairs: usize,
    units: Vec<WorkUnit>,
}

impl ShardPlan {
    /// The work units, in shard order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Ordered pairs in the whole campaign (including any already restored
    /// from a checkpoint and therefore absent from this plan).
    pub fn total_pairs(&self) -> usize {
        self.total_pairs
    }

    /// Pairs covered by this plan's units.
    pub fn planned_pairs(&self) -> usize {
        self.units.iter().map(WorkUnit::len).sum()
    }
}

/// Receives periodic partial-result snapshots; see
/// [`CampaignSession::checkpoint_to`].
type CheckpointSink = Arc<dyn Fn(&CampaignResult) + Send + Sync>;

/// The streaming campaign engine. See the [module docs](self) for the tour.
pub struct CampaignSession<F: PlatformFactory = SimPlatformFactory> {
    config: CampaignConfig,
    adaptive: AdaptiveConfig,
    factory: F,
    observers: Vec<Arc<dyn CampaignObserver>>,
    cancel: CancelToken,
    sequential: bool,
    checkpoint: Option<CampaignResult>,
    checkpoint_every: usize,
    checkpoint_sink: Option<CheckpointSink>,
}

impl CampaignSession<SimPlatformFactory> {
    /// A session over the simulated backend described by `config.spec`.
    pub fn new(config: CampaignConfig) -> Self {
        let factory = SimPlatformFactory::new(config.spec.clone());
        CampaignSession::with_factory(config, factory)
    }
}

impl<F: PlatformFactory> CampaignSession<F> {
    /// A session over an arbitrary backend.
    pub fn with_factory(config: CampaignConfig, factory: F) -> Self {
        CampaignSession {
            config,
            adaptive: AdaptiveConfig::default(),
            factory,
            observers: Vec::new(),
            cancel: CancelToken::new(),
            sequential: false,
            checkpoint: None,
            checkpoint_every: 0,
            checkpoint_sink: None,
        }
    }

    /// Override the Algorithm-3 parameters.
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Attach an observer; may be called several times.
    pub fn observe(mut self, observer: impl CampaignObserver + 'static) -> Self {
        self.observers.push(Arc::new(observer));
        self
    }

    /// Attach a channel observer and return its receiving end.
    pub fn events(&mut self) -> Receiver<CampaignEvent> {
        let (tx, rx) = channel();
        self.observers.push(Arc::new(ChannelObserver::new(tx)));
        rx
    }

    /// Share a caller-owned cancellation token with the session.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The session's cancellation token (clone it before `run`).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Force sequential pair scheduling (parallel is the default; both give
    /// bitwise-identical results).
    pub fn sequential(mut self, on: bool) -> Self {
        self.sequential = on;
        self
    }

    /// Stream resumable checkpoints while the campaign runs: after every
    /// `every` settled pairs (and once more when the last pair settles),
    /// `sink` receives a partial [`CampaignResult`] whose unmeasured pairs
    /// are recorded as [`PairOutcome::Cancelled`] — exactly the shape
    /// [`CampaignSession::resume_from`] accepts, so persisting each
    /// snapshot gives crash recovery for free.
    ///
    /// The sink is called from worker threads (serialised by an internal
    /// lock) and must not assume any particular pair order.
    pub fn checkpoint_to(
        mut self,
        every: usize,
        sink: impl Fn(&CampaignResult) + Send + Sync + 'static,
    ) -> Self {
        self.checkpoint_every = every.max(1);
        self.checkpoint_sink = Some(Arc::new(sink));
        self
    }

    /// Resume from a partial result: pairs already measured (or skipped for
    /// statistical/thermal reasons) are restored verbatim, only
    /// [`PairOutcome::Cancelled`] pairs run.
    ///
    /// Fails fast at [`CampaignSession::run`] time if the checkpoint does
    /// not match the configuration (different device or pair set).
    pub fn resume_from(mut self, checkpoint: CampaignResult) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    fn emit(&self, event: CampaignEvent) {
        for obs in &self.observers {
            obs.event(&event);
        }
    }

    /// Validate a checkpoint against the configured campaign.
    ///
    /// A checkpoint is only usable when it was taken by *this* campaign:
    /// same device, same seed (restored pairs would otherwise mix noise
    /// streams with re-run ones) and the exact configured pair set (the
    /// restored phase 1 must have characterised every configured
    /// frequency, or missing pairs would be silently mis-skipped as
    /// indistinguishable).
    fn check_checkpoint(&self, cp: &CampaignResult) -> CoreResult<()> {
        let expected = self.factory.device_name();
        if cp.device_name != expected {
            return Err(CoreError::CheckpointMismatch {
                reason: format!(
                    "checkpoint is for device {:?}, session runs {expected:?}",
                    cp.device_name
                ),
            });
        }
        if cp.seed != self.config.seed {
            return Err(CoreError::CheckpointMismatch {
                reason: format!(
                    "checkpoint was taken under seed {}, session is configured with seed {}",
                    cp.seed, self.config.seed
                ),
            });
        }
        let ordered = self.config.ordered_state_pairs();
        if cp.pairs().len() != ordered.len() {
            return Err(CoreError::CheckpointMismatch {
                reason: format!(
                    "checkpoint covers {} pairs, the configuration schedules {}",
                    cp.pairs().len(),
                    ordered.len()
                ),
            });
        }
        for &(init, target) in &ordered {
            if cp.pair(init, target).is_none() {
                return Err(CoreError::CheckpointMismatch {
                    reason: format!(
                        "configured pair {init}->{target} MHz is missing from the checkpoint"
                    ),
                });
            }
        }
        for state in self.config.states() {
            if cp.phase1.of(state).is_none() {
                return Err(CoreError::CheckpointMismatch {
                    reason: format!("checkpoint phase 1 never characterised {state} MHz"),
                });
            }
        }
        Ok(())
    }

    /// Run phase 1 and the probe — the once-per-campaign preamble every
    /// shard shares — emitting `CampaignStarted`, `Phase1Done` and
    /// `ProbeDone`.
    ///
    /// On a resume, phase 1 + probe are restored from the (validated)
    /// checkpoint; their platform is seeded from the campaign seed alone,
    /// so a re-run would reproduce them bit for bit anyway.
    pub fn prelude(&self) -> CoreResult<CampaignPrelude> {
        let config = &self.config;
        self.emit(CampaignEvent::CampaignStarted {
            device_name: self.factory.device_name(),
            n_pairs: config.ordered_state_pairs().len(),
        });

        if let Some(cp) = &self.checkpoint {
            self.check_checkpoint(cp)?;
        }

        let (phase1, probe) = match &self.checkpoint {
            Some(cp) => (cp.phase1.clone(), cp.probe.clone()),
            None => {
                if self.cancel.is_cancelled() {
                    return Err(CoreError::Cancelled);
                }
                let mut p0 = self.factory.create(config.seed)?;
                let phase1 = run_phase1(&mut p0, config)?;
                let probe = estimate_upper_bound(&mut p0, config, &phase1)?;
                (phase1, probe)
            }
        };
        self.emit(CampaignEvent::Phase1Done {
            valid_pairs: phase1.valid_pairs.len(),
            skipped_pairs: phase1.skipped_pairs.len(),
        });
        self.emit(CampaignEvent::ProbeDone {
            max_latency_ms: probe.max_latency_ms,
        });
        Ok(CampaignPrelude { phase1, probe })
    }

    /// Whether the resume checkpoint already holds this pair's measurement.
    fn is_restored(&self, init: FreqState, target: FreqState) -> bool {
        self.checkpoint
            .as_ref()
            .and_then(|cp| cp.pair(init, target))
            .is_some_and(|p| !p.outcome.is_cancelled())
    }

    /// Pairs restorable verbatim from the resume checkpoint, as
    /// `(canonical index, measurement)` in canonical order (empty without a
    /// checkpoint). These are exactly the pairs [`CampaignSession::plan`]
    /// excludes; feed them to [`CampaignResult::merge`] as one extra
    /// [`ShardResult`] alongside the executed units.
    pub fn restored_pairs(&self) -> Vec<(usize, PairMeasurement)> {
        let Some(cp) = &self.checkpoint else {
            return Vec::new();
        };
        self.config
            .ordered_state_pairs()
            .iter()
            .enumerate()
            .filter_map(|(i, &(a, b))| {
                cp.pair(a, b)
                    .filter(|p| !p.outcome.is_cancelled())
                    .map(|p| (i, p.clone()))
            })
            .collect()
    }

    /// Partition the campaign's *pending* pairs (everything not restorable
    /// from the resume checkpoint) into at most `n_shards` [`WorkUnit`]s of
    /// near-equal size, in canonical pair order.
    ///
    /// Each unit is self-contained — canonical indices, frequencies and
    /// per-pair platform seeds — so units can be executed in any order, on
    /// any thread or process, and merged back deterministically; see the
    /// [`WorkUnit`] contract.
    pub fn plan(&self, n_shards: usize) -> ShardPlan {
        self.plan_with(n_shards, true)
    }

    fn plan_with(&self, n_shards: usize, announce: bool) -> ShardPlan {
        let ordered = self.config.ordered_state_pairs();
        let pending: Vec<PairTask> = ordered
            .iter()
            .enumerate()
            .filter(|&(_, &(init, target))| !self.is_restored(init, target))
            .map(|(index, &(init, target))| PairTask {
                index,
                init,
                target,
                seed: self.config.state_pair_seed(init, target),
            })
            .collect();
        let mut units = Vec::new();
        if !pending.is_empty() {
            let n = n_shards.clamp(1, pending.len());
            let chunk = pending.len().div_ceil(n);
            units = pending
                .chunks(chunk)
                .enumerate()
                .map(|(shard, pairs)| WorkUnit {
                    shard,
                    n_shards: 0, // patched below once the count is known
                    announce,
                    pairs: pairs.to_vec(),
                })
                .collect();
        }
        let n_units = units.len();
        for unit in &mut units {
            unit.n_shards = n_units;
        }
        ShardPlan {
            total_pairs: ordered.len(),
            units,
        }
    }

    /// Execute one [`WorkUnit`]: every pair on its own `pair_seed`-seeded
    /// platform, in the unit's canonical order, with the usual pair events
    /// (plus `ShardStarted`/`ShardFinished` for plans built through
    /// [`CampaignSession::plan`]).
    pub fn run_unit(&self, prelude: &CampaignPrelude, unit: &WorkUnit) -> CoreResult<ShardResult> {
        self.run_unit_with(prelude, unit, |_, _| {})
    }

    /// [`CampaignSession::run_unit`] with a per-pair settle hook: called
    /// after each pair of the unit is measured (not for pairs skipped by
    /// cancellation), before the next pair starts. The queue's shard
    /// scheduler uses it to fold settled pairs into cross-shard
    /// checkpoints and to poll cancellation at pair granularity.
    pub fn run_unit_with(
        &self,
        prelude: &CampaignPrelude,
        unit: &WorkUnit,
        on_settle: impl Fn(usize, &PairMeasurement),
    ) -> CoreResult<ShardResult> {
        if unit.announce {
            self.emit(CampaignEvent::ShardStarted {
                shard: unit.shard,
                n_shards: unit.n_shards,
                pairs: unit.len(),
            });
        }
        let mut pairs = Vec::with_capacity(unit.len());
        for task in &unit.pairs {
            let meas = self.measure_pair(prelude, task, &on_settle)?;
            pairs.push((task.index, meas));
        }
        if unit.announce {
            self.emit(CampaignEvent::ShardFinished {
                shard: unit.shard,
                n_shards: unit.n_shards,
                pairs: unit.len(),
            });
        }
        Ok(ShardResult {
            shard: unit.shard,
            pairs,
        })
    }

    /// Measure one pair on a freshly seeded platform (or record it as
    /// cancelled), emitting the pair events.
    fn measure_pair(
        &self,
        prelude: &CampaignPrelude,
        task: &PairTask,
        on_settle: &dyn Fn(usize, &PairMeasurement),
    ) -> CoreResult<PairMeasurement> {
        let PairTask {
            index,
            init,
            target,
            seed,
        } = *task;
        if self.cancel.is_cancelled() {
            self.emit(CampaignEvent::PairSkipped {
                index,
                init,
                target,
                reason: SkipReason::Cancelled,
            });
            return Ok(PairMeasurement {
                init,
                target,
                outcome: PairOutcome::Cancelled,
                analysis: None,
            });
        }
        self.emit(CampaignEvent::PairStarted {
            index,
            init,
            target,
        });
        let mut platform = self.factory.create(seed)?;
        let outcome = run_pair(
            &mut platform,
            &self.config,
            &prelude.phase1,
            init,
            target,
            prelude.probe.max_latency_ms,
        )?;
        let analysis = outcome
            .run()
            .map(|r| analyze_pair(&r.latencies_ms, &self.adaptive));
        match (&outcome, &analysis) {
            (PairOutcome::Completed(run), Some(a)) => {
                self.emit(CampaignEvent::PairFinished {
                    index,
                    init,
                    target,
                    measurements: run.latencies_ms.len(),
                    mean_ms: a.filtered.mean,
                });
            }
            _ => {
                if let Some(reason) = SkipReason::of(&outcome) {
                    self.emit(CampaignEvent::PairSkipped {
                        index,
                        init,
                        target,
                        reason,
                    });
                }
            }
        }
        let measurement = PairMeasurement {
            init,
            target,
            outcome,
            analysis,
        };
        on_settle(index, &measurement);
        Ok(measurement)
    }

    /// Assemble shard results (in any completion order) into this
    /// campaign's [`CampaignResult`] via [`CampaignResult::merge`].
    pub fn merge_shards(
        &self,
        prelude: &CampaignPrelude,
        shards: Vec<ShardResult>,
    ) -> CampaignResult {
        CampaignResult::merge(
            self.factory.device_name(),
            self.config.device_index,
            self.config.seed,
            prelude.phase1.clone(),
            prelude.probe.clone(),
            &self.config.ordered_state_pairs(),
            shards,
        )
    }

    /// Run the campaign to completion (or cancellation).
    ///
    /// Returns the full [`CampaignResult`]; after a cancellation the result
    /// is partial ([`CampaignResult::is_partial`]) and can be fed back
    /// through [`CampaignSession::resume_from`].
    pub fn run(&self) -> CoreResult<CampaignResult> {
        self.run_plan(None)
    }

    /// Run the campaign through the [`WorkUnit`] layer with an explicit
    /// shard count: pending pairs are partitioned into at most `n_shards`
    /// units executed (in parallel unless [`CampaignSession::sequential`])
    /// and merged — bitwise identical to [`CampaignSession::run`] for any
    /// shard count, with `ShardStarted`/`ShardFinished` progress events.
    pub fn run_sharded(&self, n_shards: usize) -> CoreResult<CampaignResult> {
        self.run_plan(Some(n_shards.max(1)))
    }

    fn run_plan(&self, shards: Option<usize>) -> CoreResult<CampaignResult> {
        let ordered = self.config.ordered_state_pairs();
        let prelude = self.prelude()?;

        // Periodic checkpointing: settled pairs are recorded slot-wise so a
        // snapshot can stand Cancelled placeholders in for pairs still
        // running — giving the sink exactly the resumable partial-result
        // shape `resume_from` validates.
        let snapshot_slots: Mutex<Vec<Option<PairMeasurement>>> =
            Mutex::new(vec![None; ordered.len()]);
        let settle = |index: usize, meas: &PairMeasurement| {
            let Some(sink) = &self.checkpoint_sink else {
                return;
            };
            let mut slots = snapshot_slots.lock();
            slots[index] = Some(meas.clone());
            let settled = slots.iter().filter(|s| s.is_some()).count();
            if settled % self.checkpoint_every == 0 || settled == slots.len() {
                let pairs = slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.clone().map(|m| (i, m)))
                    .collect();
                let snapshot = self.merge_shards(&prelude, vec![ShardResult { shard: 0, pairs }]);
                sink(&snapshot);
            }
        };

        // Checkpoint hits restore without touching the device; only the
        // pending pairs are planned into work units.
        let restored = self.restored_pairs();
        for &(index, ref meas) in &restored {
            self.emit(CampaignEvent::PairRestored {
                index,
                init: meas.init,
                target: meas.target,
            });
            settle(index, meas);
        }

        // Without an explicit shard count, every pair is its own unit —
        // the scheduling granularity (and results) of the classic engine.
        let plan = self.plan_with(shards.unwrap_or(usize::MAX), shards.is_some());
        let run_one = |unit: &WorkUnit| self.run_unit_with(&prelude, unit, settle);
        let results: CoreResult<Vec<ShardResult>> = if self.sequential {
            plan.units().iter().map(run_one).collect()
        } else {
            plan.units().par_iter().map(run_one).collect()
        };
        let mut shard_results = results?;
        shard_results.push(ShardResult {
            shard: shard_results.len(),
            pairs: restored,
        });

        let result = self.merge_shards(&prelude, shard_results);
        let completed = result.completed().count();
        let cancelled = result
            .pairs()
            .iter()
            .filter(|p| p.outcome.is_cancelled())
            .count();
        self.emit(CampaignEvent::CampaignFinished {
            completed,
            skipped: result.pairs().len() - completed - cancelled,
            cancelled,
        });
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn small_campaign(seed: u64) -> CampaignConfig {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(7),
        });
        CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .measurements(8, 20)
            .simulated_sms(Some(4))
            .seed(seed)
            .build()
    }

    #[test]
    fn session_reproduces_latest_results() {
        let via_latest = crate::campaign::Latest::new(small_campaign(21))
            .run()
            .unwrap();
        let via_session = CampaignSession::new(small_campaign(21)).run().unwrap();
        for (a, b) in via_latest.pairs().iter().zip(via_session.pairs()) {
            assert_eq!(a.latencies_ms(), b.latencies_ms());
        }
    }

    #[test]
    fn events_cover_every_pair_in_order() {
        let mut session = CampaignSession::new(small_campaign(22)).sequential(true);
        let rx = session.events();
        let result = session.run().unwrap();
        drop(session);
        let events: Vec<CampaignEvent> = rx.try_iter().collect();
        assert!(matches!(
            events.first(),
            Some(CampaignEvent::CampaignStarted { n_pairs: 2, .. })
        ));
        let phase1_at = events
            .iter()
            .position(|e| matches!(e, CampaignEvent::Phase1Done { .. }))
            .unwrap();
        let first_start = events
            .iter()
            .position(|e| matches!(e, CampaignEvent::PairStarted { .. }))
            .unwrap();
        assert!(phase1_at < first_start, "phase 1 must precede pair work");
        let finishes = events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::PairFinished { .. }))
            .count();
        assert_eq!(finishes, result.completed().count());
        assert!(matches!(
            events.last(),
            Some(CampaignEvent::CampaignFinished { .. })
        ));
    }

    #[test]
    fn cancellation_yields_partial_checkpoint() {
        let session = CampaignSession::new(small_campaign(23)).sequential(true);
        let token = session.cancel_token();
        // Cancel as soon as the first pair finishes: the second must be
        // recorded as cancelled, not measured.
        let session = session.observe(move |e: &CampaignEvent| {
            if matches!(e, CampaignEvent::PairFinished { .. }) {
                token.cancel();
            }
        });
        let result = session.run().unwrap();
        assert!(result.is_partial());
        assert_eq!(result.completed().count(), 1);
        assert_eq!(
            result
                .pairs()
                .iter()
                .filter(|p| p.outcome.is_cancelled())
                .count(),
            1
        );
    }

    #[test]
    fn cancel_before_start_aborts_cleanly() {
        let session = CampaignSession::new(small_campaign(24));
        session.cancel_token().cancel();
        assert!(matches!(session.run(), Err(CoreError::Cancelled)));
    }

    #[test]
    fn resume_completes_a_cancelled_run_bitwise() {
        let full = CampaignSession::new(small_campaign(25))
            .sequential(true)
            .run()
            .unwrap();

        let session = CampaignSession::new(small_campaign(25)).sequential(true);
        let token = session.cancel_token();
        let session = session.observe(move |e: &CampaignEvent| {
            if matches!(e, CampaignEvent::PairFinished { .. }) {
                token.cancel();
            }
        });
        let partial = session.run().unwrap();
        assert!(partial.is_partial());

        // Round-trip the checkpoint through its serialised form, as a
        // process restart would.
        let checkpoint = CampaignResult::from_json(&partial.to_json()).unwrap();
        let resumed = CampaignSession::new(small_campaign(25))
            .sequential(true)
            .resume_from(checkpoint)
            .run()
            .unwrap();
        assert!(!resumed.is_partial());
        for (a, b) in full.pairs().iter().zip(resumed.pairs()) {
            let bits =
                |xs: Option<&[f64]>| xs.map(|v| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>());
            assert_eq!(bits(a.latencies_ms()), bits(b.latencies_ms()));
        }
    }

    #[test]
    fn periodic_checkpoints_are_resumable_and_converge() {
        let snapshots: Arc<Mutex<Vec<CampaignResult>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = snapshots.clone();
        let full = CampaignSession::new(small_campaign(30))
            .sequential(true)
            .checkpoint_to(1, move |cp: &CampaignResult| sink.lock().push(cp.clone()))
            .run()
            .unwrap();

        let snaps = snapshots.lock();
        // Two pairs, every = 1: one snapshot per settled pair.
        assert_eq!(snaps.len(), 2);
        assert!(snaps[0].is_partial(), "first snapshot must be partial");
        assert!(!snaps[1].is_partial(), "last snapshot must be complete");

        // A mid-run snapshot round-trips through JSON (as a process restart
        // would) and resumes to the uninterrupted result, bit for bit.
        let cp = CampaignResult::from_json(&snaps[0].to_json()).unwrap();
        let resumed = CampaignSession::new(small_campaign(30))
            .sequential(true)
            .resume_from(cp)
            .run()
            .unwrap();
        for (a, b) in full.pairs().iter().zip(resumed.pairs()) {
            let bits =
                |xs: Option<&[f64]>| xs.map(|v| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>());
            assert_eq!(bits(a.latencies_ms()), bits(b.latencies_ms()));
        }
        // And the final snapshot IS the final result.
        for (a, b) in full.pairs().iter().zip(snaps[1].pairs()) {
            assert_eq!(a.latencies_ms(), b.latencies_ms());
        }
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let cp = CampaignSession::new(small_campaign(26)).run().unwrap();

        // Wrong device.
        let other = CampaignConfig::builder(devices::gh200())
            .frequencies_mhz(&[705, 1980])
            .measurements(8, 20)
            .seed(26)
            .build();
        let err = CampaignSession::new(other).resume_from(cp.clone()).run();
        assert!(matches!(err, Err(CoreError::CheckpointMismatch { .. })));

        // Wrong seed: restored pairs would mix noise streams with re-runs.
        let err = CampaignSession::new(small_campaign(27))
            .resume_from(cp.clone())
            .run();
        assert!(matches!(err, Err(CoreError::CheckpointMismatch { .. })));

        // Wrong frequency set: the checkpoint's phase 1 never characterised
        // 1095 MHz, so its pairs could not be scheduled from this resume.
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(7),
        });
        let wider = CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1095, 1410])
            .measurements(8, 20)
            .simulated_sms(Some(4))
            .seed(26)
            .build();
        let err = CampaignSession::new(wider).resume_from(cp).run();
        assert!(matches!(err, Err(CoreError::CheckpointMismatch { .. })));
    }
}
