//! Per-pair measurement analysis (Sec. V-C): adaptive DBSCAN outlier
//! filtering, cluster census and silhouette validation.

use latest_cluster::{adaptive_outlier_filter, silhouette_score_1d, AdaptiveConfig};
use latest_stats::Summary;

/// The analysed view of one pair's latency dataset.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PairAnalysis {
    /// Latencies that survived the outlier filter (all of them when the
    /// dataset was too small/degenerate to cluster).
    pub inliers_ms: Vec<f64>,
    /// Latencies flagged as outliers.
    pub outliers_ms: Vec<f64>,
    /// Number of DBSCAN clusters among the inliers (1 when unfiltered).
    pub n_clusters: usize,
    /// Silhouette score, defined only when 2+ clusters exist.
    pub silhouette: Option<f64>,
    /// Summary over the raw dataset.
    pub raw: Summary,
    /// Summary over the inliers.
    pub filtered: Summary,
    /// Whether the adaptive loop converged (outlier ratio <= 10 %).
    pub converged: bool,
}

impl PairAnalysis {
    /// Outlier fraction of the raw dataset.
    pub fn outlier_ratio(&self) -> f64 {
        let n = self.inliers_ms.len() + self.outliers_ms.len();
        if n == 0 {
            0.0
        } else {
            self.outliers_ms.len() as f64 / n as f64
        }
    }
}

/// Analyse one pair's latencies with Algorithm 3 (paper defaults unless
/// `config` overrides them).
pub fn analyze_pair(latencies_ms: &[f64], config: &AdaptiveConfig) -> PairAnalysis {
    let raw = Summary::of(latencies_ms);
    match adaptive_outlier_filter(latencies_ms, config) {
        Some(outcome) => {
            let inliers = outcome.inliers(latencies_ms);
            let outliers = outcome.outliers(latencies_ms);
            let silhouette = silhouette_score_1d(latencies_ms, &outcome.labeling);
            PairAnalysis {
                filtered: Summary::of(&inliers),
                inliers_ms: inliers,
                outliers_ms: outliers,
                n_clusters: outcome.labeling.n_clusters,
                silhouette,
                raw,
                converged: outcome.converged,
            }
        }
        None => PairAnalysis {
            inliers_ms: latencies_ms.to_vec(),
            outliers_ms: Vec::new(),
            n_clusters: 1,
            silhouette: None,
            raw,
            filtered: raw,
            converged: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outliers_are_removed_from_filtered_summary() {
        let mut data: Vec<f64> = (0..200).map(|i| 15.0 + (i % 10) as f64 * 0.05).collect();
        data.extend([300.0, 450.0, 520.0]);
        let a = analyze_pair(&data, &AdaptiveConfig::default());
        assert_eq!(a.outliers_ms.len(), 3);
        assert!(a.filtered.max < 20.0);
        assert!(a.raw.max > 500.0);
        assert!(a.converged);
        assert!(a.outlier_ratio() < 0.02);
    }

    #[test]
    fn multi_cluster_silhouette_reported() {
        let mut data = Vec::new();
        for c in 0..3 {
            let base = 20.0 + c as f64 * 80.0;
            for i in 0..80 {
                data.push(base + (i % 7) as f64 * 0.1);
            }
        }
        let a = analyze_pair(&data, &AdaptiveConfig::default());
        assert_eq!(a.n_clusters, 3);
        let s = a.silhouette.expect("defined for 2+ clusters");
        assert!(s > 0.4, "silhouette {s} below the paper's floor");
    }

    #[test]
    fn tiny_dataset_passes_through() {
        let data = [5.0, 5.1, 5.2];
        let a = analyze_pair(&data, &AdaptiveConfig::default());
        assert_eq!(a.inliers_ms.len(), 3);
        assert!(a.outliers_ms.is_empty());
        assert_eq!(a.n_clusters, 1);
        assert!(a.silhouette.is_none());
    }
}
