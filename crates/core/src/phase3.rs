//! Phase 3 — per-core evaluation (Algorithm 2, lines 9–24).
//!
//! For each SM record stream:
//!
//! 1. skip iterations that started before `t_s`,
//! 2. find the first iteration whose execution time falls inside the
//!    two-standard-deviation band of the *target* frequency's phase-1
//!    characterisation, then walk back over immediately preceding
//!    iterations that are still target-regime evidence (noisy at-target
//!    draws, isolated disturbance spikes) — the entry iteration's start
//!    read is the candidate `t_e`,
//! 3. confirm: the mean of the iterations from the candidate onward must be
//!    statistically indistinguishable from the phase-1 target mean (the
//!    difference interval contains zero, or the difference is inside the
//!    relative tolerance). This rejects lucky hits inside the adaptation
//!    ramp, where "execution time ... might correspond to any frequency
//!    value, including the target frequency" (Sec. IV);
//! 4. the per-core switching latency is `t_e − t_s`; the pair's value for
//!    this pass is the **maximum across cores** (the whole device must have
//!    settled).
//!
//! If no core yields a confirmed latency the pass is discarded and phases
//! 2–3 repeat (the `GOTO line 1` of Algorithm 2), with the capture window
//! enlarged if the transition may simply not have finished inside it.

use latest_gpu_sim::sm::IterRecord;
use latest_stats::{diff_confidence_interval, robust_stats, SigmaBand, Summary};

use crate::config::CampaignConfig;
use crate::phase2::SwitchCapture;

/// Why a single SM stream produced no confirmed latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreRejection {
    /// No iteration after `t_s` entered the target band: the transition
    /// (probably) did not complete inside the capture window.
    NoBandEntry,
    /// A band entry existed but the post-entry mean failed confirmation:
    /// the device was still adapting.
    ConfirmationFailed,
    /// Too few iterations after the candidate to run the confirmation test.
    WindowTooShort,
}

/// Per-SM evaluation detail.
#[derive(Clone, Copy, Debug)]
pub struct CoreEvaluation {
    /// SM index within the record set.
    pub sm: usize,
    /// The confirmed latency in nanoseconds, or the rejection reason.
    pub outcome: Result<u64, CoreRejection>,
}

/// Result of evaluating one capture.
#[derive(Clone, Debug)]
pub struct PassEvaluation {
    /// Per-core outcomes.
    pub cores: Vec<CoreEvaluation>,
    /// The pass-level switching latency: max over confirmed cores (ns).
    pub latency_ns: Option<u64>,
}

impl PassEvaluation {
    /// Number of cores that produced a confirmed latency.
    pub fn confirmed_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Whether every core failed only because the window was too short /
    /// never entered the band — the signal to grow the capture window on
    /// retry rather than just re-rolling.
    pub fn looks_truncated(&self) -> bool {
        self.latency_ns.is_none()
            && self.cores.iter().all(|c| {
                matches!(
                    c.outcome,
                    Err(CoreRejection::NoBandEntry | CoreRejection::WindowTooShort)
                )
            })
    }
}

/// Evaluate one capture against the target frequency's characterisation.
pub fn evaluate_pass(
    capture: &SwitchCapture,
    target_iter_ns: &Summary,
    config: &CampaignConfig,
) -> PassEvaluation {
    let band = SigmaBand::with_k(target_iter_ns, config.sigma_k);
    let cores: Vec<CoreEvaluation> = capture
        .records
        .iter()
        .enumerate()
        .map(|(sm, records)| CoreEvaluation {
            sm,
            outcome: evaluate_core(records, capture, &band, target_iter_ns, config),
        })
        .collect();
    let latency_ns = cores.iter().filter_map(|c| c.outcome.ok()).max();
    PassEvaluation { cores, latency_ns }
}

/// Algorithm 2's inner loop for one SM.
fn evaluate_core(
    records: &[IterRecord],
    capture: &SwitchCapture,
    band: &SigmaBand,
    target_iter_ns: &Summary,
    config: &CampaignConfig,
) -> Result<u64, CoreRejection> {
    // Line 12: only iterations starting at/after t_s are relevant.
    let first_after = records.partition_point(|r| r.start < capture.ts_device);
    let relevant = &records[first_after..];
    if relevant.is_empty() {
        return Err(CoreRejection::WindowTooShort);
    }

    // Line 16: first iteration inside the 2σ band of the target mean.
    let Some(hit) = relevant
        .iter()
        .position(|r| band.contains(r.duration().as_nanos() as f64))
    else {
        return Err(CoreRejection::NoBandEntry);
    };

    // The first in-band iteration can lag the true regime entry: an
    // iteration already at the target can fall outside the 2σ band (≈ 4.6 %
    // of honest draws), and a disturbance spike (a rare multi-x iteration)
    // right at the boundary pushes the first band hit later by its whole
    // duration. Both would inflate the reported latency by whole
    // iterations. Walk back over immediately preceding iterations that are
    // still evidence of the *target* regime:
    //   * durations inside a 1.5×-widened band (noisy at-target draws), or
    //   * durations slower than `spike_floor` — slower than both regimes,
    //     so they cannot be initial-frequency or adaptation-ramp
    //     iterations, only disturbances.
    // The transition straddler and ramp iterations have durations between
    // the two regimes and stop the walk. The walk is capped: spikes are
    // isolated events, and an unbounded walk must not crawl into the
    // initial regime. Residual bias: a spiked iteration that *straddles*
    // the boundary is walked over too, undershooting by up to one spike
    // length (spike_scale x one iteration) — the same order as the
    // detection granularity already accepted, and bounded by the cap.
    let init_est = {
        let pre = &records[..first_after];
        let tail = &pre[pre.len().saturating_sub(32)..];
        if tail.is_empty() {
            target_iter_ns.mean
        } else {
            tail.iter()
                .map(|r| r.duration().as_nanos() as f64)
                .sum::<f64>()
                / tail.len() as f64
        }
    };
    let wide = SigmaBand::with_k(target_iter_ns, config.sigma_k * 1.5);
    let spike_floor = 1.25 * init_est.max(target_iter_ns.mean);
    let mut entry = hit;
    while entry > 0 && hit - entry < 8 {
        let d = relevant[entry - 1].duration().as_nanos() as f64;
        if wide.contains(d) || d > spike_floor {
            entry -= 1;
        } else {
            break;
        }
    }

    // `t_e`: the entry iteration's start read — the end read of the last
    // iteration that still carried pre-target content. Using the entry's
    // *end* read would systematically overshoot by one full iteration (and
    // by the whole spike length when a spike sits on the boundary).
    let te = relevant[entry].start;

    // Lines 19-20: confirm with the remaining iterations. The window is
    // estimated through the same 4σ spike trimmer as phase 1: one untrimmed
    // disturbance spike (a rare multi-x iteration) inflates the window's
    // standard deviation enough to widen the Welch interval over zero and
    // launder a false early detection into an acceptance.
    let confirm_window = &relevant[entry..];
    if confirm_window.len() < 8 {
        return Err(CoreRejection::WindowTooShort);
    }
    let confirm_n = (config.confirm_iterations as usize).min(confirm_window.len());
    let durations: Vec<f64> = confirm_window[..confirm_n]
        .iter()
        .map(|r| r.duration().as_nanos() as f64)
        .collect();
    let confirm = robust_stats(&durations, 4.0, 2).summary();

    let accepted = match diff_confidence_interval(&confirm, target_iter_ns, config.confidence) {
        Some(ci) => {
            ci.contains_zero()
                || (confirm.mean - target_iter_ns.mean).abs()
                    < config.mean_tolerance_rel * target_iter_ns.mean
        }
        None => false,
    };
    if !accepted {
        return Err(CoreRejection::ConfirmationFailed);
    }

    // t_e - t_s on the device timeline.
    Ok(te.saturating_since(capture.ts_device).as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::phase1::run_phase1;
    use crate::phase2::run_phase2;
    use crate::platform::SimPlatform;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::freq::FreqMhz;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::{SimDuration, SimTime};
    use std::sync::Arc;

    fn fixed_config(ms: u64) -> CampaignConfig {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(ms),
        });
        CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .seed(23)
            .build()
    }

    /// End-to-end phases 1→3 on a fixed-latency device: the measured value
    /// must recover the ground truth within granularity bounds.
    #[test]
    fn recovers_fixed_ground_truth() {
        let config = fixed_config(10);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let p1 = run_phase1(&mut platform, &config).unwrap();
        let init_stats = p1.of(FreqMhz(1410)).unwrap().iter_ns;
        let cap = run_phase2(
            &mut platform,
            &config,
            FreqMhz(1410),
            FreqMhz(705),
            &init_stats,
            15.0,
        )
        .unwrap();
        let target_stats = p1.of(FreqMhz(705)).unwrap().iter_ns;
        let eval = evaluate_pass(&cap, &target_stats, &config);
        let measured_ms = eval.latency_ns.expect("pass must evaluate") as f64 / 1e6;

        let gt = platform
            .last_ground_truth()
            .unwrap()
            .switching_latency()
            .as_millis_f64();
        // Detection granularity: one iteration at the slow clock (~142 us)
        // plus sync uncertainty (~10 us) plus driver travel.
        assert!(
            (measured_ms - gt).abs() < 0.5,
            "measured {measured_ms:.3} ms vs ground truth {gt:.3} ms"
        );
        assert!(eval.confirmed_cores() >= 1);
    }

    #[test]
    fn max_over_cores_is_taken() {
        let config = fixed_config(6);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let p1 = run_phase1(&mut platform, &config).unwrap();
        let init_stats = p1.of(FreqMhz(705)).unwrap().iter_ns;
        let cap = run_phase2(
            &mut platform,
            &config,
            FreqMhz(705),
            FreqMhz(1410),
            &init_stats,
            10.0,
        )
        .unwrap();
        let target_stats = p1.of(FreqMhz(1410)).unwrap().iter_ns;
        let eval = evaluate_pass(&cap, &target_stats, &config);
        let per_core: Vec<u64> = eval.cores.iter().filter_map(|c| c.outcome.ok()).collect();
        assert!(!per_core.is_empty());
        assert_eq!(eval.latency_ns.unwrap(), *per_core.iter().max().unwrap());
    }

    #[test]
    fn truncated_capture_reports_no_band_entry() {
        // Latency far beyond the capture window: no core can see the target
        // regime, and the evaluation must say "truncated", not invent data.
        let config = fixed_config(500);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let p1 = run_phase1(&mut platform, &config).unwrap();
        // Bound lied: claim 2 ms so the kernel is far too short.
        let init_stats = p1.of(FreqMhz(1410)).unwrap().iter_ns;
        let cap = run_phase2(
            &mut platform,
            &config,
            FreqMhz(1410),
            FreqMhz(705),
            &init_stats,
            2.0,
        )
        .unwrap();
        let target_stats = p1.of(FreqMhz(705)).unwrap().iter_ns;
        let eval = evaluate_pass(&cap, &target_stats, &config);
        assert!(eval.latency_ns.is_none());
        assert!(eval.looks_truncated());
    }

    #[test]
    fn synthetic_adaptation_ramp_is_rejected_by_confirmation() {
        // Hand-build a capture where iterations sit inside the band briefly
        // (fake target-like durations) and then leave it: confirmation must
        // reject the stream rather than report a bogus early latency.
        let config = fixed_config(10);
        let target = Summary {
            n: 10_000,
            mean: 100_000.0,
            stdev: 1_000.0,
            stderr: 10.0,
            min: 95_000.0,
            max: 105_000.0,
        };
        let mut records = Vec::new();
        let mut t = 1_000_000u64;
        // 5 iterations at init speed (50 us), 3 "lucky" in-band (100 us),
        // then 40 at a wrong speed (130 us) — an adaptation artefact.
        for dur in std::iter::repeat_n(50_000u64, 5)
            .chain(std::iter::repeat_n(100_000u64, 3))
            .chain(std::iter::repeat_n(130_000u64, 40))
        {
            records.push(IterRecord {
                start: SimTime::from_nanos(t),
                end: SimTime::from_nanos(t + dur),
            });
            t += dur;
        }
        let cap = SwitchCapture {
            init: FreqMhz(1410).into(),
            target: FreqMhz(705).into(),
            ts_device: SimTime::from_nanos(1_000_000),
            records: vec![records],
            sync: latest_clock_sync::SyncResult {
                offset_ns: 0,
                uncertainty_ns: 1_000,
                rounds: 1,
                best_round_trip_ns: 1_000,
            },
            kernel_iters: 48,
        };
        let eval = evaluate_pass(&cap, &target, &config);
        assert_eq!(eval.latency_ns, None);
        assert_eq!(
            eval.cores[0].outcome,
            Err(CoreRejection::ConfirmationFailed)
        );
    }

    #[test]
    fn empty_post_ts_window_is_too_short() {
        let config = fixed_config(10);
        let target = Summary {
            n: 100,
            mean: 100_000.0,
            stdev: 1_000.0,
            stderr: 100.0,
            min: 0.0,
            max: 0.0,
        };
        let records = vec![IterRecord {
            start: SimTime::from_nanos(0),
            end: SimTime::from_nanos(100_000),
        }];
        let cap = SwitchCapture {
            init: FreqMhz(1410).into(),
            target: FreqMhz(705).into(),
            ts_device: SimTime::from_nanos(500_000), // after every record
            records: vec![records],
            sync: latest_clock_sync::SyncResult {
                offset_ns: 0,
                uncertainty_ns: 1_000,
                rounds: 1,
                best_round_trip_ns: 1_000,
            },
            kernel_iters: 1,
        };
        let eval = evaluate_pass(&cap, &target, &config);
        assert_eq!(eval.cores[0].outcome, Err(CoreRejection::WindowTooShort));
        assert!(eval.looks_truncated());
    }
}
