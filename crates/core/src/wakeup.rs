//! Wake-up latency estimation (Sec. V, "Wake-up latency" bullet).
//!
//! Before trusting any frequency characterisation, the methodology checks
//! how long a previously idle accelerator takes to reach and hold the
//! imposed clock: run the workload "split into several kernels", then
//! compare the iteration times at the start of the *first* kernel against
//! the settled average of the *last* kernel. The wake-up latency is the time
//! from kernel start until iterations stabilise inside the settled band.

use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::KernelConfig;
use latest_sim_clock::{SimDuration, SimTime};
use latest_stats::{RunningStats, SigmaBand};

use crate::config::CampaignConfig;
use crate::error::CoreResult;
use crate::platform::Platform;

/// Result of a wake-up estimation run.
#[derive(Clone, Debug)]
pub struct WakeupEstimate {
    /// The frequency under test.
    pub freq: FreqMhz,
    /// Time from first-kernel start until sustained settled execution.
    pub wakeup: SimDuration,
    /// Settled mean iteration time (ns) from the last kernel.
    pub settled_iter_ns: f64,
    /// Mean iteration time (ns) of the first 32 iterations of the first
    /// kernel — the cold-start penalty made visible.
    pub cold_iter_ns: f64,
}

/// How many consecutive in-band iterations count as "stabilised".
const SUSTAIN: usize = 16;

/// Estimate the wake-up latency at `freq` after at least `idle_for` of
/// device idleness.
pub fn estimate_wakeup<P: Platform>(
    platform: &mut P,
    config: &CampaignConfig,
    freq: FreqMhz,
    idle_for: SimDuration,
) -> CoreResult<WakeupEstimate> {
    platform.set_locked_clocks(freq)?;
    // Let the clock request settle, then go idle long enough to sleep.
    platform.sleep(idle_for);

    let kernel_cfg = KernelConfig {
        iters_per_sm: config.phase1_iters,
        workload: config.workload,
        simulated_sms: Some(1),
    };
    // Several kernels: first one carries the wake-up, last one is settled.
    let n_kernels = config.phase1_kernels.max(2);
    let mut all = Vec::with_capacity(n_kernels);
    for _ in 0..n_kernels {
        let id = platform.launch_benchmark(kernel_cfg)?;
        platform.synchronize();
        all.push(platform.collect_records(id)?.remove(0));
    }

    // Settled statistics from the last kernel.
    let mut settled = RunningStats::new();
    for r in all.last().unwrap() {
        settled.push(r.duration().as_nanos() as f64);
    }
    let band = SigmaBand::with_k(&settled.summary(), config.sigma_k);

    // Scan the first kernel for the first sustained in-band stretch.
    let first = &all[0];
    let kernel_start: SimTime = first[0].start;
    let mut stable_at = first.last().unwrap().end;
    'scan: for i in 0..first.len() {
        if first[i..]
            .iter()
            .take(SUSTAIN)
            .filter(|r| band.contains(r.duration().as_nanos() as f64))
            .count()
            == SUSTAIN.min(first.len() - i)
        {
            stable_at = first[i].start;
            break 'scan;
        }
    }

    let cold = RunningStats::from_slice(
        &first
            .iter()
            .take(32)
            .map(|r| r.duration().as_nanos() as f64)
            .collect::<Vec<_>>(),
    );

    Ok(WakeupEstimate {
        freq,
        wakeup: stable_at.saturating_since(kernel_start),
        settled_iter_ns: settled.summary().mean,
        cold_iter_ns: cold.summary().mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimPlatform;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use std::sync::Arc;

    fn config_with_ramp(ramp_ms: u64) -> CampaignConfig {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(2),
        });
        spec.wakeup_ramp = SimDuration::from_millis(ramp_ms);
        spec.wakeup_idle_threshold = SimDuration::from_millis(5);
        CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .seed(17)
            .build()
    }

    #[test]
    fn wakeup_estimate_tracks_configured_ramp() {
        let config = config_with_ramp(40);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let est = estimate_wakeup(
            &mut platform,
            &config,
            FreqMhz(1410),
            SimDuration::from_millis(50),
        )
        .unwrap();
        let wake_ms = est.wakeup.as_millis_f64();
        assert!(
            (25.0..60.0).contains(&wake_ms),
            "estimated wake-up {wake_ms:.1} ms for a 40 ms ramp"
        );
        // Cold iterations must be visibly slower than settled ones.
        assert!(est.cold_iter_ns > est.settled_iter_ns * 1.3);
    }

    #[test]
    fn warm_device_has_negligible_wakeup() {
        let config = config_with_ramp(40);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        // First run wakes the device…
        let _ = estimate_wakeup(
            &mut platform,
            &config,
            FreqMhz(1410),
            SimDuration::from_millis(50),
        )
        .unwrap();
        // …then measure again while still warm (idle below the threshold).
        let est = estimate_wakeup(
            &mut platform,
            &config,
            FreqMhz(1410),
            SimDuration::from_millis(1),
        )
        .unwrap();
        assert!(
            est.wakeup < SimDuration::from_millis(8),
            "warm wake-up {} too long",
            est.wakeup
        );
    }
}
