//! CSV output with the paper's naming convention (Sec. VI).
//!
//! "After each frequency pair measurement, the switching latencies are
//! output to a .csv file. The .csv filename contains the initial, the target
//! frequency, the hostname, and the index of the benchmarked GPU."

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use latest_gpu_sim::freq::FreqMhz;

use crate::controller::PairRun;
use crate::error::{CoreError, CoreResult};
use crate::state::FreqState;

/// One state's file-name token: `{core}MHz` for a core-only state (the
/// paper's convention, unchanged), `{core}MHzm{mem}` when the state pins a
/// memory clock.
fn state_token(s: FreqState) -> String {
    match s.mem {
        None => format!("{}MHz", s.core),
        Some(m) => format!("{}MHzm{}", s.core, m.0),
    }
}

fn parse_state_token(tok: &str) -> Option<FreqState> {
    let (core_s, rest) = tok.split_once("MHz")?;
    let core: u32 = core_s.parse().ok()?;
    if rest.is_empty() {
        Some(FreqState::core_only(FreqMhz(core)))
    } else {
        let mem: u32 = rest.strip_prefix('m')?.parse().ok()?;
        Some(FreqState::with_mem(FreqMhz(core), FreqMhz(mem)))
    }
}

/// The standardised file name:
/// `latest_{init}MHz_{target}MHz_{hostname}_gpu{index}.csv`, with an
/// `m{mem}` suffix on each frequency token when the campaign sweeps the
/// memory domain.
pub fn csv_filename(
    init: impl Into<FreqState>,
    target: impl Into<FreqState>,
    hostname: &str,
    gpu_index: usize,
) -> String {
    format!(
        "latest_{}_{}_{hostname}_gpu{gpu_index}.csv",
        state_token(init.into()),
        state_token(target.into())
    )
}

/// Parse a standardised file name back into its components.
pub fn parse_csv_filename(name: &str) -> Option<(FreqState, FreqState, String, usize)> {
    let stem = name.strip_suffix(".csv")?;
    let rest = stem.strip_prefix("latest_")?;
    let mut parts = rest.split('_');
    let init = parse_state_token(parts.next()?)?;
    let target = parse_state_token(parts.next()?)?;
    let mut middle: Vec<&str> = parts.collect();
    let gpu_part = middle.pop()?;
    let gpu_index: usize = gpu_part.strip_prefix("gpu")?.parse().ok()?;
    if middle.is_empty() {
        return None;
    }
    Some((init, target, middle.join("_"), gpu_index))
}

/// Write one pair's latencies to `dir` under the standardised name.
/// Returns the full path.
///
/// Latencies are written with Rust's shortest-round-trip `f64` formatting,
/// so [`read_pair_csv`] reconstructs every value bit for bit (a fixed
/// `{:.6}` precision would silently lose sub-microsecond detail the
/// archive's diff pipeline relies on).
pub fn write_pair_csv(
    dir: &Path,
    run: &PairRun,
    hostname: &str,
    gpu_index: usize,
) -> CoreResult<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(csv_filename(run.init, run.target, hostname, gpu_index));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "measurement,switching_latency_ms")?;
    for (i, ms) in run.latencies_ms.iter().enumerate() {
        writeln!(f, "{i},{ms}")?;
    }
    Ok(path)
}

/// Read latencies back from a pair CSV.
pub fn read_pair_csv(path: &Path) -> CoreResult<Vec<f64>> {
    let text = fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 {
            if line != "measurement,switching_latency_ms" {
                return Err(CoreError::CsvFormat {
                    line: 1,
                    message: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut cols = line.split(',');
        let _idx = cols.next();
        let val = cols
            .next()
            .ok_or_else(|| CoreError::CsvFormat {
                line: lineno + 1,
                message: "missing latency column".to_string(),
            })?
            .trim();
        let ms: f64 = val.parse().map_err(|_| CoreError::CsvFormat {
            line: lineno + 1,
            message: format!("bad latency value {val:?}"),
        })?;
        out.push(ms);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fixture() -> PairRun {
        PairRun {
            init: FreqMhz(1095).into(),
            target: FreqMhz(705).into(),
            latencies_ms: vec![5.125, 5.25, 5.0625, 21.5],
            ground_truth_ms: vec![5.1, 5.2, 5.0, 21.4],
            retries: 0,
            thermal_events: 0,
            final_rse: 0.02,
            final_bound_ms: 20.0,
        }
    }

    #[test]
    fn filename_convention() {
        let name = csv_filename(FreqMhz(1095), FreqMhz(705), "karolina-acn01", 2);
        assert_eq!(name, "latest_1095MHz_705MHz_karolina-acn01_gpu2.csv");
    }

    #[test]
    fn filename_roundtrip() {
        let name = csv_filename(FreqMhz(345), FreqMhz(1980), "gh-node_a", 0);
        let (i, t, h, g) = parse_csv_filename(&name).unwrap();
        assert_eq!(i, FreqState::core_only(FreqMhz(345)));
        assert_eq!(t, FreqState::core_only(FreqMhz(1980)));
        assert_eq!(h, "gh-node_a");
        assert_eq!(g, 0);
        assert!(parse_csv_filename("nonsense.csv").is_none());
        assert!(parse_csv_filename("latest_x_y_z_gpu0.csv").is_none());
    }

    #[test]
    fn two_domain_filename_round_trips() {
        let init = FreqState::with_mem(FreqMhz(1095), FreqMhz(810));
        let target = FreqState::with_mem(FreqMhz(705), FreqMhz(1215));
        let name = csv_filename(init, target, "node-a", 1);
        assert_eq!(name, "latest_1095MHzm810_705MHzm1215_node-a_gpu1.csv");
        let (i, t, h, g) = parse_csv_filename(&name).unwrap();
        assert_eq!((i, t, h.as_str(), g), (init, target, "node-a", 1));
    }

    #[test]
    fn csv_roundtrip_is_bit_exact() {
        let dir = std::env::temp_dir().join("latest_rs_output_test");
        let mut run = run_fixture();
        // Values with no short decimal representation must still survive.
        run.latencies_ms.push(5.1 + 0.2 / 3.0);
        run.latencies_ms.push(f64::from_bits(0x4014_9999_9999_999A));
        let path = write_pair_csv(&dir, &run, "testhost", 0).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains("1095MHz_705MHz"));
        let back = read_pair_csv(&path).unwrap();
        assert_eq!(back.len(), run.latencies_ms.len());
        for (a, b) in back.iter().zip(&run.latencies_ms) {
            assert_eq!(a.to_bits(), b.to_bits(), "csv {a} vs memory {b}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_rejects_malformed() {
        let dir = std::env::temp_dir().join("latest_rs_output_test_bad");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.csv");
        fs::write(&p, "wrong,header\n0,1.0\n").unwrap();
        assert!(matches!(
            read_pair_csv(&p),
            Err(CoreError::CsvFormat { line: 1, .. })
        ));
        fs::write(&p, "measurement,switching_latency_ms\n0,not_a_number\n").unwrap();
        assert!(matches!(
            read_pair_csv(&p),
            Err(CoreError::CsvFormat { line: 2, .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
