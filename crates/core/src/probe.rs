//! The switching-latency upper-bound probe (Sec. V, "Switching latency"
//! bullet).
//!
//! Before measuring every pair, the methodology estimates how long capture
//! windows must be: measure a handful of pairs spanning "small, medium, and
//! high-frequency levels" once each, and size the real benchmark at tenfold
//! the longest observed latency. If even the probe cannot capture a
//! transition, its own window grows tenfold and retries.

use crate::config::CampaignConfig;
use crate::error::CoreResult;
use crate::phase1::Phase1Result;
use crate::phase2::run_phase2;
use crate::phase3::evaluate_pass;
use crate::platform::Platform;
use crate::state::FreqState;

/// Result of the probe phase.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ProbeResult {
    /// Latencies observed per probed state pair (ms).
    pub samples: Vec<(FreqState, FreqState, f64)>,
    /// The largest observed latency (ms) — the basis for window sizing.
    pub max_latency_ms: f64,
}

/// The representative clock states probed: low, median and high entries of
/// the campaign's state list (for a core-only campaign, exactly the low /
/// median / high configured frequencies).
pub fn probe_states(config: &CampaignConfig) -> Vec<FreqState> {
    let mut sorted = config.states();
    sorted.sort();
    sorted.dedup();
    match sorted.len() {
        0..=2 => sorted,
        n => vec![sorted[0], sorted[n / 2], sorted[n - 1]],
    }
}

/// Run the probe on `platform`. Probes each ordered pair of the
/// representative frequencies once.
pub fn estimate_upper_bound<P: Platform>(
    platform: &mut P,
    config: &CampaignConfig,
    phase1: &Phase1Result,
) -> CoreResult<ProbeResult> {
    let states = probe_states(config);
    let mut samples = Vec::new();
    let mut max_latency_ms: f64 = 0.0;

    for &init in &states {
        for &target in &states {
            if init == target || !phase1.is_valid(init, target) {
                continue;
            }
            let target_stats = phase1.of(target).expect("characterised").iter_ns;
            let init_stats = phase1.of(init).expect("characterised").iter_ns;
            let mut bound = config.initial_latency_guess_ms;
            // Up to three window growths; a pair that still cannot be
            // captured is reported via the max of others.
            for _ in 0..3 {
                let capture = run_phase2(platform, config, init, target, &init_stats, bound)?;
                let eval = evaluate_pass(&capture, &target_stats, config);
                match eval.latency_ns {
                    Some(ns) => {
                        let ms = ns as f64 / 1e6;
                        samples.push((init, target, ms));
                        max_latency_ms = max_latency_ms.max(ms);
                        break;
                    }
                    None if eval.looks_truncated() => bound *= 10.0,
                    None => {}
                }
            }
        }
    }

    // Nothing captured at all: fall back to the configured guess so the
    // campaign still sizes sane windows.
    if max_latency_ms == 0.0 {
        max_latency_ms = config.initial_latency_guess_ms;
    }
    Ok(ProbeResult {
        samples,
        max_latency_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::run_phase1;
    use crate::platform::SimPlatform;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    #[test]
    fn representative_states_are_low_mid_high() {
        use latest_gpu_sim::freq::FreqMhz;
        let config = CampaignConfig::builder(devices::a100_sxm4())
            .frequencies_mhz(&[210, 405, 705, 1095, 1410])
            .build();
        let f = probe_states(&config);
        assert_eq!(
            f,
            vec![
                FreqState::core_only(FreqMhz(210)),
                FreqState::core_only(FreqMhz(705)),
                FreqState::core_only(FreqMhz(1410)),
            ]
        );

        let two = CampaignConfig::builder(devices::a100_sxm4())
            .frequencies_mhz(&[705, 1410])
            .build();
        assert_eq!(probe_states(&two).len(), 2);

        // A 2-D campaign's probe spans the state plane's extremes.
        let plane = CampaignConfig::builder(devices::a100_sxm4())
            .frequencies_mhz(&[705, 1410])
            .mem_frequencies_mhz(&[810, 1215])
            .build();
        let s = probe_states(&plane);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], FreqState::with_mem(FreqMhz(705), FreqMhz(810)));
        assert_eq!(s[2], FreqState::with_mem(FreqMhz(1410), FreqMhz(1215)));
    }

    #[test]
    fn probe_finds_the_latency_scale() {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(18),
        });
        let config = CampaignConfig::builder(spec)
            .frequencies_mhz(&[210, 705, 1410])
            .seed(5)
            .build();
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let p1 = run_phase1(&mut platform, &config).unwrap();
        let probe = estimate_upper_bound(&mut platform, &config, &p1).unwrap();
        assert!(!probe.samples.is_empty());
        assert!(
            (probe.max_latency_ms - 18.0).abs() < 1.5,
            "probe max {} ms",
            probe.max_latency_ms
        );
    }

    #[test]
    fn probe_grows_window_for_slow_devices() {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(400),
        });
        let config = CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .seed(6)
            .build();
        // Initial guess 50 ms: window 500 ms covers 400 ms, so this works
        // even on the first try; shrink the guess to force growth.
        let mut config = config;
        config.initial_latency_guess_ms = 3.0;
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let p1 = run_phase1(&mut platform, &config).unwrap();
        let probe = estimate_upper_bound(&mut platform, &config, &p1).unwrap();
        assert!(
            (probe.max_latency_ms - 400.0).abs() < 10.0,
            "probe max {} ms",
            probe.max_latency_ms
        );
    }
}
