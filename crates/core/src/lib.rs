//! The LATEST methodology: accelerator frequency-switching-latency
//! measurement (Sections V and VI of the paper).
//!
//! This crate is the paper's primary contribution, implemented faithfully
//! over the simulated CUDA/NVML substrate:
//!
//! * **Phase 1** ([`phase1`]) — warm-up and per-frequency characterisation:
//!   run the microbenchmark under every frequency, pool per-SM iteration
//!   statistics, and validate every ordered frequency pair with a
//!   confidence-interval test on the difference of means (Algorithm 1).
//! * **Phase 2** ([`phase2`]) — the switching benchmark: IEEE 1588 timer
//!   sync, start the kernel at the initial frequency, sleep through the
//!   delay period, stamp `t_s`, issue the frequency change, synchronise and
//!   collect per-SM records (Algorithm 2, lines 1–8).
//! * **Phase 3** ([`phase3`]) — per-core evaluation: find the first
//!   iteration inside the two-standard-deviation band of the target
//!   frequency, confirm the remaining iterations match the target mean, and
//!   aggregate `max(t_e − t_s)` over cores (Algorithm 2, lines 9–24).
//! * **Controller** ([`controller`]) — repetition with the relative-
//!   standard-error stopping rule (checked every 25 passes), throttle
//!   polling every 5 passes with discard + 10 s backoff on thermal events
//!   and pair-skip on power events (Sec. VI).
//! * **Analysis** ([`analysis`]) — the adaptive DBSCAN outlier filter
//!   (Algorithm 3) applied per pair, with cluster census and silhouette
//!   validation.
//! * **Campaign** ([`campaign`]) — the end-to-end LATEST tool: all phases
//!   over all requested pairs, parallelised across pairs (each pair runs on
//!   its own simulated platform instance; on real hardware the tool is
//!   sequential — the parallelism is a simulation-only speedup that
//!   preserves per-pair semantics).
//! * **Output** ([`output`]) — the `.csv` convention of Sec. VI:
//!   `latest_{init}MHz_{target}MHz_{hostname}_gpu{index}.csv`.
//!
//! Closed-loop validation: the simulated device records ground-truth
//! transition times, so integration tests assert that the tool's measured
//! switching latency matches what the silicon actually did — a check that is
//! impossible on physical hardware and the main payoff of the simulation
//! substrate.

pub mod analysis;
pub mod campaign;
pub mod config;
pub mod controller;
pub mod error;
pub mod output;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod platform;
pub mod probe;
pub mod wakeup;

pub use analysis::{PairAnalysis, analyze_pair};
pub use campaign::{CampaignResult, Latest, PairMeasurement};
pub use config::{CampaignConfig, CampaignConfigBuilder};
pub use controller::{PairOutcome, PairRun};
pub use error::{CoreError, CoreResult};
pub use phase1::{FreqCharacterization, Phase1Result};
pub use platform::SimPlatform;
