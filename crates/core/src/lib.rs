//! The LATEST methodology: accelerator frequency-switching-latency
//! measurement (Sections V and VI of the paper).
//!
//! This crate is the paper's primary contribution, implemented faithfully
//! over the simulated CUDA/NVML substrate:
//!
//! * **Phase 1** ([`phase1`]) — warm-up and per-frequency characterisation:
//!   run the microbenchmark under every frequency, pool per-SM iteration
//!   statistics, and validate every ordered frequency pair with a
//!   confidence-interval test on the difference of means (Algorithm 1).
//! * **Phase 2** ([`phase2`]) — the switching benchmark: IEEE 1588 timer
//!   sync, start the kernel at the initial frequency, sleep through the
//!   delay period, stamp `t_s`, issue the frequency change, synchronise and
//!   collect per-SM records (Algorithm 2, lines 1–8).
//! * **Phase 3** ([`phase3`]) — per-core evaluation: find the first
//!   iteration inside the two-standard-deviation band of the target
//!   frequency, confirm the remaining iterations match the target mean, and
//!   aggregate `max(t_e − t_s)` over cores (Algorithm 2, lines 9–24).
//! * **Controller** ([`controller`]) — repetition with the relative-
//!   standard-error stopping rule (checked every 25 passes), throttle
//!   polling every 5 passes with discard + 10 s backoff on thermal events
//!   and pair-skip on power events (Sec. VI).
//! * **Analysis** ([`analysis`]) — the adaptive DBSCAN outlier filter
//!   (Algorithm 3) applied per pair, with cluster census and silhouette
//!   validation.
//! * **Session** ([`session`]) — the streaming campaign engine: work
//!   scheduled at pair granularity, typed progress events through observer
//!   hooks or channels, cooperative cancellation, and checkpoint/resume
//!   over the serialisable [`CampaignResult`]. [`Latest`] is a thin
//!   blocking wrapper over it.
//! * **Fleet** ([`fleet`]) — multi-device orchestration: one campaign per
//!   device spec, run in parallel, aggregated into per-device results and
//!   cross-device summary rows.
//! * **Store** ([`store`]) — the results archive: campaign runs persisted
//!   under content-addressed [`RunId`]s with the effective spec and
//!   provenance, so experiments accumulate into a queryable corpus instead
//!   of evaporating.
//! * **View** ([`view`]) — typed query views over results:
//!   [`LatencyView`]/[`PairView`] filter by frequency pair, direction,
//!   outcome and percentile band, replacing ad-hoc pair iteration in every
//!   consumer.
//! * **Spec** ([`spec`]) — declarative campaign descriptions: serialisable
//!   [`CampaignSpec`]/[`FleetSpec`] with fail-fast validation that
//!   enumerates every violated constraint, resolved through device and
//!   workload registries into sessions and fleets.
//! * **Platform** ([`platform`]) — the backend abstraction the methodology
//!   is generic over: NVML-style control plus CUDA-style execution, with
//!   ground truth as an optional capability only the simulator implements.
//! * **Output** ([`output`]) — the `.csv` convention of Sec. VI:
//!   `latest_{init}MHz_{target}MHz_{hostname}_gpu{index}.csv`.
//!
//! Closed-loop validation: the simulated device records ground-truth
//! transition times, so integration tests assert that the tool's measured
//! switching latency matches what the silicon actually did — a check that is
//! impossible on physical hardware and the main payoff of the simulation
//! substrate.

pub mod analysis;
pub mod campaign;
pub mod config;
pub mod controller;
pub mod error;
pub mod fleet;
pub mod output;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod platform;
pub mod probe;
pub mod session;
pub mod spec;
pub mod state;
pub mod store;
pub mod view;
pub mod wakeup;

pub use analysis::{analyze_pair, PairAnalysis};
pub use campaign::{CampaignResult, Latest, PairMeasurement};
pub use config::{CampaignConfig, CampaignConfigBuilder};
pub use controller::{PairOutcome, PairRun};
pub use error::{CoreError, CoreResult};
pub use fleet::{Fleet, FleetDeviceSummary, FleetObserver, FleetResult};
pub use phase1::{FreqCharacterization, Phase1Result};
pub use platform::{
    GroundTruth, MemoryClocks, Platform, PlatformFactory, SimPlatform, SimPlatformFactory,
};
pub use session::{
    CampaignEvent, CampaignObserver, CampaignPrelude, CampaignSession, CancelToken,
    ChannelObserver, PairTask, ShardPlan, ShardResult, SkipReason, WorkUnit,
};
pub use spec::{
    CampaignSpec, CampaignSpecBuilder, FleetSpec, FreqSelection, ScenarioSpec, SpecCheckpoint,
    SpecError, SpecErrors,
};
pub use state::{FreqState, PairKind};
pub use store::{Provenance, ResultStore, RunId, StoreError, StoreResult, StoredRun};
pub use view::{Direction, LatencyView, OutcomeKind, PairStat, PairView};
