//! Clock *states*: a point in the (core, memory) frequency plane.
//!
//! The original methodology measures transitions between core (SM) clock
//! values; [`FreqState`] widens that to a second, optional memory/DRAM
//! dimension. A state with `mem: None` is a *core-only* state — exactly
//! the single-domain model every pre-memory campaign used — and its
//! serialised form is a bare MHz number, byte-identical to the old
//! [`FreqMhz`] encoding, so existing archives, checkpoints and
//! content-addressed run ids are untouched. A state with `mem: Some(..)`
//! serialises as `{"core": c, "mem": m}`.
//!
//! Transitions between two states fall into three [`PairKind`]s by which
//! domains change: core-only, memory-only, or simultaneous (both).

use latest_gpu_sim::freq::FreqMhz;

/// One clock state: a core (SM) frequency plus an optional memory/DRAM
/// frequency.
///
/// Ordering is core first, then memory with `None < Some(_)` — so a sorted
/// state list groups core-only states ahead of 2-D ones and campaign pair
/// enumeration stays deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FreqState {
    /// SM / graphics clock.
    pub core: FreqMhz,
    /// Memory (DRAM) clock; `None` means the memory domain is not part of
    /// the campaign and stays at the device default.
    pub mem: Option<FreqMhz>,
}

/// Which clock domains change between two [`FreqState`]s — the paper's
/// single pair notion split three ways once a second domain exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PairKind {
    /// Only the core (SM) clock changes.
    Core,
    /// Only the memory clock changes.
    Memory,
    /// Both domains change in one transition (driver calls issued
    /// back-to-back, core first).
    Simultaneous,
}

impl PairKind {
    /// Stable lower-case label used in reports and serialised measurements.
    pub fn label(self) -> &'static str {
        match self {
            PairKind::Core => "core",
            PairKind::Memory => "memory",
            PairKind::Simultaneous => "simultaneous",
        }
    }

    /// Parse the [`Self::label`] form back.
    pub fn from_label(s: &str) -> Option<PairKind> {
        match s {
            "core" => Some(PairKind::Core),
            "memory" => Some(PairKind::Memory),
            "simultaneous" => Some(PairKind::Simultaneous),
            _ => None,
        }
    }
}

impl std::fmt::Display for PairKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FreqState {
    /// A core-only state (the single-domain model).
    pub fn core_only(core: FreqMhz) -> FreqState {
        FreqState { core, mem: None }
    }

    /// A full 2-D state.
    pub fn with_mem(core: FreqMhz, mem: FreqMhz) -> FreqState {
        FreqState {
            core,
            mem: Some(mem),
        }
    }

    /// A core-only state from a raw MHz value — convenience for crates
    /// that don't depend on the simulator's [`FreqMhz`] newtype.
    pub fn core_mhz(mhz: u32) -> FreqState {
        FreqState::core_only(FreqMhz(mhz))
    }

    /// A full 2-D state from raw MHz values.
    pub fn mhz(core: u32, mem: u32) -> FreqState {
        FreqState::with_mem(FreqMhz(core), FreqMhz(mem))
    }

    /// Whether this state carries a memory clock.
    pub fn has_mem(&self) -> bool {
        self.mem.is_some()
    }

    /// The memory clock in MHz, if any.
    pub fn mem_mhz(&self) -> Option<u32> {
        self.mem.map(|m| m.0)
    }

    /// Which domains change going from `self` to `target`, or `None` for
    /// the identity (no domain changes — not a measurable pair).
    pub fn kind_to(&self, target: &FreqState) -> Option<PairKind> {
        let core_changes = self.core != target.core;
        let mem_changes = self.mem != target.mem;
        match (core_changes, mem_changes) {
            (true, false) => Some(PairKind::Core),
            (false, true) => Some(PairKind::Memory),
            (true, true) => Some(PairKind::Simultaneous),
            (false, false) => None,
        }
    }

    /// Compact human label: `"1410"` core-only, `"1410+m810"` with memory.
    pub fn label(&self) -> String {
        match self.mem {
            None => format!("{}", self.core.0),
            Some(m) => format!("{}+m{}", self.core.0, m.0),
        }
    }
}

impl From<FreqMhz> for FreqState {
    fn from(core: FreqMhz) -> FreqState {
        FreqState::core_only(core)
    }
}

impl std::fmt::Display for FreqState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl serde::Serialize for FreqState {
    fn to_value(&self) -> serde::Value {
        match self.mem {
            // Core-only states keep the legacy bare-number encoding so
            // single-domain archives and run ids stay byte-identical.
            None => self.core.to_value(),
            Some(mem) => serde::Value::Map(vec![
                ("core".to_string(), self.core.to_value()),
                ("mem".to_string(), mem.to_value()),
            ]),
        }
    }
}

impl serde::Deserialize for FreqState {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::U64(_) | serde::Value::I64(_) => {
                Ok(FreqState::core_only(serde::Deserialize::from_value(value)?))
            }
            serde::Value::Map(entries) => {
                for (key, _) in entries {
                    if key != "core" && key != "mem" {
                        return Err(serde::Error::custom(format!(
                            "unknown field `{key}` in FreqState (known fields: core, mem)"
                        )));
                    }
                }
                let core =
                    serde::Deserialize::from_value(serde::field(entries, "core", "FreqState")?)?;
                let mem = match entries.iter().find(|(k, _)| k == "mem") {
                    Some((_, v)) => Some(serde::Deserialize::from_value(v)?),
                    None => None,
                };
                Ok(FreqState { core, mem })
            }
            other => Err(serde::Error::custom(format!(
                "FreqState must be a bare MHz number or {{\"core\", \"mem\"}}; got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_only_serialises_as_bare_number() {
        let s = FreqState::core_only(FreqMhz(1410));
        assert_eq!(serde_json::to_string(&s).unwrap(), "1410");
        // Byte-identical to the legacy FreqMhz encoding.
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&FreqMhz(1410)).unwrap()
        );
    }

    #[test]
    fn two_domain_state_round_trips_as_map() {
        let s = FreqState::with_mem(FreqMhz(1410), FreqMhz(810));
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"core\""), "{json}");
        assert!(json.contains("\"mem\""), "{json}");
        let back: FreqState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let bare: FreqState = serde_json::from_str("705").unwrap();
        assert_eq!(bare, FreqState::core_only(FreqMhz(705)));
    }

    #[test]
    fn ordering_is_core_then_mem_with_none_first() {
        let mut states = vec![
            FreqState::with_mem(FreqMhz(705), FreqMhz(1215)),
            FreqState::core_only(FreqMhz(1410)),
            FreqState::with_mem(FreqMhz(705), FreqMhz(810)),
            FreqState::core_only(FreqMhz(705)),
        ];
        states.sort();
        assert_eq!(
            states,
            vec![
                FreqState::core_only(FreqMhz(705)),
                FreqState::with_mem(FreqMhz(705), FreqMhz(810)),
                FreqState::with_mem(FreqMhz(705), FreqMhz(1215)),
                FreqState::core_only(FreqMhz(1410)),
            ]
        );
    }

    #[test]
    fn pair_kinds_cover_the_three_transition_shapes() {
        let a = FreqState::with_mem(FreqMhz(705), FreqMhz(810));
        let b = FreqState::with_mem(FreqMhz(1410), FreqMhz(810));
        let c = FreqState::with_mem(FreqMhz(705), FreqMhz(1215));
        let d = FreqState::with_mem(FreqMhz(1410), FreqMhz(1215));
        assert_eq!(a.kind_to(&b), Some(PairKind::Core));
        assert_eq!(a.kind_to(&c), Some(PairKind::Memory));
        assert_eq!(a.kind_to(&d), Some(PairKind::Simultaneous));
        assert_eq!(a.kind_to(&a), None);
        for k in [PairKind::Core, PairKind::Memory, PairKind::Simultaneous] {
            assert_eq!(PairKind::from_label(k.label()), Some(k));
        }
    }

    #[test]
    fn labels_read_naturally() {
        assert_eq!(FreqState::core_only(FreqMhz(1410)).label(), "1410");
        assert_eq!(
            FreqState::with_mem(FreqMhz(1410), FreqMhz(810)).label(),
            "1410+m810"
        );
    }
}
