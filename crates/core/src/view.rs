//! Typed query views over campaign results.
//!
//! Every consumer of a [`CampaignResult`] used to re-implement the same
//! filter chain — `result.pairs().iter().filter(|p| ...)` with its own
//! completion check, direction test and statistic extraction — in the
//! governor's [`LatencyTable`](../../latest_governor/table/struct.LatencyTable.html),
//! the report renderers, the fleet aggregation and the CLI. [`LatencyView`]
//! replaces all of them: a builder that narrows a result by device
//! coordinates, frequency pair, transition direction, outcome and percentile
//! band, then projects the selection as [`PairView`]s, pooled latencies or
//! per-pair statistics.
//!
//! ```
//! use latest_core::view::{Direction, LatencyView, PairStat};
//! # use latest_core::{CampaignConfig, Latest};
//! # use latest_gpu_sim::devices;
//! # let config = CampaignConfig::builder(devices::a100_sxm4())
//! #     .frequencies_mhz(&[705, 1410]).measurements(5, 10).build();
//! # let result = Latest::new(config).run().unwrap();
//! // Pool the outlier-filtered latencies of every completed down-switch.
//! let down = LatencyView::of(&result)
//!     .direction(Direction::Decreasing)
//!     .pooled_filtered_ms();
//! // Worst filtered latency over all completed pairs.
//! let worst = LatencyView::of(&result).stat(PairStat::Max);
//! # let _ = (down, worst);
//! ```
//!
//! Views borrow the result; building one allocates nothing until a
//! projection runs.

use latest_gpu_sim::freq::FreqMhz;
use latest_stats::{quantile, Summary};

use crate::campaign::{CampaignResult, PairMeasurement};
use crate::controller::PairOutcome;
use crate::state::{FreqState, PairKind};

/// Transition direction of a frequency pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Target frequency above the initial one.
    Increasing,
    /// Target frequency below the initial one.
    Decreasing,
}

/// The shape of a pair's outcome, without its payload — the filterable
/// classification of [`PairOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Measured to completion.
    Completed,
    /// Abandoned on a power event.
    PowerLimited,
    /// Phase 1 found the pair statistically indistinguishable.
    Indistinguishable,
    /// Every phase-2/3 attempt failed evaluation.
    RetriesExhausted,
    /// Never scheduled before cancellation.
    Cancelled,
}

impl PairOutcome {
    /// Classify this outcome for filtering.
    pub fn kind(&self) -> OutcomeKind {
        match self {
            PairOutcome::Completed(_) => OutcomeKind::Completed,
            PairOutcome::PowerLimited { .. } => OutcomeKind::PowerLimited,
            PairOutcome::SkippedIndistinguishable => OutcomeKind::Indistinguishable,
            PairOutcome::RetriesExhausted { .. } => OutcomeKind::RetriesExhausted,
            PairOutcome::Cancelled => OutcomeKind::Cancelled,
        }
    }
}

/// Which per-pair statistic a projection extracts (over the
/// outlier-filtered sample).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairStat {
    /// Best case: minimum filtered latency.
    Min,
    /// Mean of the filtered latencies.
    Mean,
    /// Worst case: maximum filtered latency.
    Max,
}

/// A read-only view of one pair's measurement: typed access to its
/// coordinates, outcome, and raw/filtered latency samples.
#[derive(Clone, Copy, Debug)]
pub struct PairView<'a> {
    measurement: &'a PairMeasurement,
}

impl<'a> PairView<'a> {
    /// View one measurement.
    pub fn new(measurement: &'a PairMeasurement) -> Self {
        PairView { measurement }
    }

    /// The underlying measurement record.
    pub fn measurement(&self) -> &'a PairMeasurement {
        self.measurement
    }

    /// Initial frequency state.
    pub fn init(&self) -> FreqState {
        self.measurement.init
    }

    /// Target frequency state.
    pub fn target(&self) -> FreqState {
        self.measurement.target
    }

    /// Initial core frequency (MHz).
    pub fn init_mhz(&self) -> u32 {
        self.measurement.init_mhz()
    }

    /// Target core frequency (MHz).
    pub fn target_mhz(&self) -> u32 {
        self.measurement.target_mhz()
    }

    /// Initial memory frequency (MHz), when the pair carries one.
    pub fn init_mem_mhz(&self) -> Option<u32> {
        self.measurement.init.mem.map(|m| m.0)
    }

    /// Target memory frequency (MHz), when the pair carries one.
    pub fn target_mem_mhz(&self) -> Option<u32> {
        self.measurement.target.mem.map(|m| m.0)
    }

    /// Which domain(s) the transition moves.
    pub fn kind(&self) -> PairKind {
        self.measurement.kind()
    }

    /// Transition direction (core compared first; for core-equal —
    /// memory-only — pairs, the memory clocks decide).
    pub fn direction(&self) -> Direction {
        if self.measurement.target > self.measurement.init {
            Direction::Increasing
        } else {
            Direction::Decreasing
        }
    }

    /// Outcome classification.
    pub fn outcome(&self) -> OutcomeKind {
        self.measurement.outcome.kind()
    }

    /// Whether the pair completed with measurements.
    pub fn is_completed(&self) -> bool {
        self.outcome() == OutcomeKind::Completed
    }

    /// Raw latencies (ms) when the pair completed.
    pub fn raw_ms(&self) -> Option<&'a [f64]> {
        self.measurement.latencies_ms()
    }

    /// Outlier-filtered latencies (ms) when the pair completed and the
    /// filter left data.
    pub fn filtered_ms(&self) -> Option<&'a [f64]> {
        let a = self.measurement.analysis.as_ref()?;
        if a.inliers_ms.is_empty() {
            None
        } else {
            Some(&a.inliers_ms)
        }
    }

    /// Summary over the outlier-filtered sample.
    pub fn filtered_summary(&self) -> Option<Summary> {
        self.filtered_ms().map(|_| {
            self.measurement
                .analysis
                .as_ref()
                .expect("checked")
                .filtered
        })
    }

    /// One statistic of the outlier-filtered sample.
    pub fn stat(&self, stat: PairStat) -> Option<f64> {
        let s = self.filtered_summary()?;
        Some(match stat {
            PairStat::Min => s.min,
            PairStat::Mean => s.mean,
            PairStat::Max => s.max,
        })
    }

    /// Quantile `q` of the outlier-filtered sample.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.filtered_ms().map(|xs| quantile(xs, q))
    }
}

/// A filtering, projecting view over a whole campaign's pairs.
///
/// Filters compose with builder chaining; projections iterate the result's
/// pairs lazily in `ordered_pairs` order (so every projection is
/// deterministic).
#[derive(Clone, Copy, Debug)]
pub struct LatencyView<'a> {
    result: &'a CampaignResult,
    direction: Option<Direction>,
    init_mhz: Option<u32>,
    target_mhz: Option<u32>,
    kind: Option<PairKind>,
    mem_slice: Option<u32>,
    outcome: Option<OutcomeKind>,
    band: Option<(f64, f64)>,
}

impl<'a> LatencyView<'a> {
    /// An unfiltered view of every pair in the campaign.
    pub fn of(result: &'a CampaignResult) -> Self {
        LatencyView {
            result,
            direction: None,
            init_mhz: None,
            target_mhz: None,
            kind: None,
            mem_slice: None,
            outcome: None,
            band: None,
        }
    }

    /// The campaign the view projects.
    pub fn result(&self) -> &'a CampaignResult {
        self.result
    }

    /// Keep only pairs transitioning in `direction`.
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = Some(direction);
        self
    }

    /// Keep only pairs starting at `mhz`.
    pub fn init_mhz(mut self, mhz: u32) -> Self {
        self.init_mhz = Some(mhz);
        self
    }

    /// Keep only pairs targeting `mhz`.
    pub fn target_mhz(mut self, mhz: u32) -> Self {
        self.target_mhz = Some(mhz);
        self
    }

    /// Keep only pairs whose transition moves `kind`'s domain(s) —
    /// core-only, memory-only or simultaneous.
    pub fn pair_kind(mut self, kind: PairKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Keep only pairs measured entirely at memory clock `mhz` (both
    /// endpoints pin it) — one core × core slice of a 2-D sweep, the
    /// unit a per-memory-clock heatmap renders.
    pub fn mem_slice_mhz(mut self, mhz: u32) -> Self {
        self.mem_slice = Some(mhz);
        self
    }

    /// Keep only pairs whose outcome classifies as `kind`.
    pub fn outcome(mut self, kind: OutcomeKind) -> Self {
        self.outcome = Some(kind);
        self
    }

    /// Shorthand for `outcome(OutcomeKind::Completed)`.
    pub fn completed(self) -> Self {
        self.outcome(OutcomeKind::Completed)
    }

    /// Restrict latency projections to each pair's `[lo, hi]` percentile
    /// band (quantiles in `[0, 1]` of the pair's own filtered sample) —
    /// e.g. `.percentile_band(0.0, 0.5)` keeps each pair's fastest half.
    ///
    /// Affects [`LatencyView::pooled_filtered_ms`] and
    /// [`LatencyView::pair_latencies`]; per-pair summaries keep the full
    /// sample.
    pub fn percentile_band(mut self, lo: f64, hi: f64) -> Self {
        self.band = Some((lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0)));
        self
    }

    fn admits(&self, view: &PairView<'_>) -> bool {
        if let Some(d) = self.direction {
            if view.direction() != d {
                return false;
            }
        }
        if let Some(init) = self.init_mhz {
            if view.init_mhz() != init {
                return false;
            }
        }
        if let Some(target) = self.target_mhz {
            if view.target_mhz() != target {
                return false;
            }
        }
        if let Some(kind) = self.kind {
            if view.kind() != kind {
                return false;
            }
        }
        if let Some(mem) = self.mem_slice {
            if view.init_mem_mhz() != Some(mem) || view.target_mem_mhz() != Some(mem) {
                return false;
            }
        }
        if let Some(kind) = self.outcome {
            if view.outcome() != kind {
                return false;
            }
        }
        true
    }

    fn band_of(&self, xs: &[f64]) -> Option<(f64, f64)> {
        self.band
            .map(|(lo, hi)| (quantile(xs, lo), quantile(xs, hi)))
    }

    /// Every pair admitted by the filters, in schedule order.
    pub fn pairs(&self) -> impl Iterator<Item = PairView<'a>> + '_ {
        self.result
            .pairs()
            .iter()
            .map(PairView::new)
            .filter(move |p| self.admits(p))
    }

    /// Number of admitted pairs.
    pub fn count(&self) -> usize {
        self.pairs().count()
    }

    /// O(1) lookup of one admitted core-only pair by its coordinates.
    pub fn pair(&self, init_mhz: u32, target_mhz: u32) -> Option<PairView<'a>> {
        self.pair_state(FreqMhz(init_mhz).into(), FreqMhz(target_mhz).into())
    }

    /// O(1) lookup of one admitted pair by its full two-domain
    /// coordinates.
    pub fn pair_state(&self, init: FreqState, target: FreqState) -> Option<PairView<'a>> {
        let m = self.result.pair(init, target)?;
        let view = PairView::new(m);
        if self.admits(&view) {
            Some(view)
        } else {
            None
        }
    }

    /// One admitted pair's filtered latencies, percentile band applied.
    pub fn pair_latencies(&self, init_mhz: u32, target_mhz: u32) -> Option<Vec<f64>> {
        let view = self.pair(init_mhz, target_mhz)?;
        let xs = view.filtered_ms()?;
        Some(match self.band_of(xs) {
            Some((lo, hi)) => xs.iter().copied().filter(|&x| lo <= x && x <= hi).collect(),
            None => xs.to_vec(),
        })
    }

    /// Pool the outlier-filtered latencies of every admitted completed
    /// pair (percentile band applied per pair).
    pub fn pooled_filtered_ms(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for p in self.pairs() {
            if let Some(xs) = p.filtered_ms() {
                match self.band_of(xs) {
                    Some((lo, hi)) => {
                        out.extend(xs.iter().copied().filter(|&x| lo <= x && x <= hi))
                    }
                    None => out.extend_from_slice(xs),
                }
            }
        }
        out
    }

    /// Aggregate one per-pair statistic over every admitted pair:
    /// `(min, mean-of-means, max)` of the statistic, `None` when no admitted
    /// pair has filtered data.
    pub fn stat_range(&self, stat: PairStat) -> Option<(f64, f64, f64)> {
        let vals: Vec<f64> = self.pairs().filter_map(|p| p.stat(stat)).collect();
        if vals.is_empty() {
            return None;
        }
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        Some((min, mean, max))
    }

    /// The extreme of one statistic over admitted pairs, with the pair it
    /// occurs on: `(value, init_mhz, target_mhz)`. `largest` picks max.
    /// Core coordinates only — ambiguous over a 2-D sweep, where
    /// [`LatencyView::stat_extreme_state`] carries the full states.
    pub fn stat_extreme(&self, stat: PairStat, largest: bool) -> Option<(f64, u32, u32)> {
        self.stat_extreme_state(stat, largest)
            .map(|(v, i, t)| (v, i.core.0, t.core.0))
    }

    /// The extreme of one statistic over admitted pairs, with the full
    /// two-domain coordinates of the pair it occurs on.
    pub fn stat_extreme_state(
        &self,
        stat: PairStat,
        largest: bool,
    ) -> Option<(f64, FreqState, FreqState)> {
        let cells = self
            .pairs()
            .filter_map(|p| p.stat(stat).map(|v| (v, p.init(), p.target())));
        if largest {
            cells.max_by(|a, b| a.0.total_cmp(&b.0))
        } else {
            cells.min_by(|a, b| a.0.total_cmp(&b.0))
        }
    }

    /// One statistic over every admitted pair, reduced to its worst (max);
    /// `None` when nothing is admitted. Shorthand over
    /// [`LatencyView::stat_range`].
    pub fn stat(&self, stat: PairStat) -> Option<f64> {
        self.stat_range(stat).map(|(_, _, max)| max)
    }

    /// The distinct core frequencies (MHz) appearing in admitted pairs,
    /// ascending — the axis of a heatmap over this view.
    pub fn frequencies_mhz(&self) -> Vec<u32> {
        let mut freqs: Vec<u32> = self
            .pairs()
            .flat_map(|p| [p.init_mhz(), p.target_mhz()])
            .collect();
        freqs.sort_unstable();
        freqs.dedup();
        freqs
    }

    /// The distinct memory clocks (MHz) appearing in admitted pairs,
    /// ascending — the slice axis of a 2-D sweep (empty for a core-only
    /// campaign).
    pub fn mem_clocks_mhz(&self) -> Vec<u32> {
        let mut mems: Vec<u32> = self
            .pairs()
            .flat_map(|p| [p.init_mem_mhz(), p.target_mem_mhz()])
            .flatten()
            .collect();
        mems.sort_unstable();
        mems.dedup();
        mems
    }

    /// The distinct clock states appearing in admitted pairs, in the
    /// canonical [`FreqState`] order — the axis of a state×state heatmap
    /// over a 2-D sweep.
    pub fn states(&self) -> Vec<FreqState> {
        let mut states: Vec<FreqState> =
            self.pairs().flat_map(|p| [p.init(), p.target()]).collect();
        states.sort_unstable();
        states.dedup();
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::Latest;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn small_result(seed: u64) -> CampaignResult {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(8),
        });
        let config = CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1095, 1410])
            .measurements(6, 12)
            .simulated_sms(Some(2))
            .seed(seed)
            .build();
        Latest::new(config).run().unwrap()
    }

    #[test]
    fn unfiltered_view_sees_every_pair() {
        let r = small_result(3);
        let v = LatencyView::of(&r);
        assert_eq!(v.count(), r.pairs().len());
        assert_eq!(v.frequencies_mhz(), vec![705, 1095, 1410]);
    }

    #[test]
    fn direction_filter_partitions_pairs() {
        let r = small_result(4);
        let up = LatencyView::of(&r).direction(Direction::Increasing);
        let down = LatencyView::of(&r).direction(Direction::Decreasing);
        assert_eq!(up.count() + down.count(), r.pairs().len());
        assert!(up.pairs().all(|p| p.target_mhz() > p.init_mhz()));
        assert!(down.pairs().all(|p| p.target_mhz() < p.init_mhz()));
    }

    #[test]
    fn coordinate_filters_compose() {
        let r = small_result(5);
        let v = LatencyView::of(&r).init_mhz(705).target_mhz(1410);
        assert_eq!(v.count(), 1);
        let p = v.pair(705, 1410).unwrap();
        assert_eq!(p.direction(), Direction::Increasing);
        // The same pair is invisible through a contradictory filter.
        assert!(LatencyView::of(&r)
            .direction(Direction::Decreasing)
            .pair(705, 1410)
            .is_none());
    }

    #[test]
    fn completed_filter_matches_result_completed() {
        let r = small_result(6);
        let via_view: Vec<(u32, u32)> = LatencyView::of(&r)
            .completed()
            .pairs()
            .map(|p| (p.init_mhz(), p.target_mhz()))
            .collect();
        let via_result: Vec<(u32, u32)> = r
            .completed()
            .map(|p| (p.init_mhz(), p.target_mhz()))
            .collect();
        assert_eq!(via_view, via_result);
    }

    #[test]
    fn pooled_latencies_match_manual_pooling() {
        let r = small_result(7);
        let pooled = LatencyView::of(&r).completed().pooled_filtered_ms();
        let manual: Vec<f64> = r
            .completed()
            .filter_map(|p| p.analysis.as_ref())
            .flat_map(|a| a.inliers_ms.iter().copied())
            .collect();
        assert_eq!(pooled, manual);
        assert!(!pooled.is_empty());
    }

    #[test]
    fn percentile_band_narrows_the_pool() {
        let r = small_result(8);
        let full = LatencyView::of(&r).completed().pooled_filtered_ms();
        let lower_half = LatencyView::of(&r)
            .completed()
            .percentile_band(0.0, 0.5)
            .pooled_filtered_ms();
        assert!(lower_half.len() <= full.len());
        assert!(!lower_half.is_empty());
        // Everything in the banded pool exists in the full pool.
        for x in &lower_half {
            assert!(full.contains(x));
        }
    }

    #[test]
    fn stat_projections_are_consistent() {
        let r = small_result(9);
        let v = LatencyView::of(&r).completed();
        let (min, mean, max) = v.stat_range(PairStat::Mean).unwrap();
        assert!(min <= mean && mean <= max);
        let (worst, init, target) = v.stat_extreme(PairStat::Max, true).unwrap();
        assert_eq!(
            v.pair(init, target).unwrap().stat(PairStat::Max),
            Some(worst)
        );
        let (best, _, _) = v.stat_extreme(PairStat::Min, false).unwrap();
        assert!(best <= worst);
    }

    #[test]
    fn outcome_kinds_classify() {
        assert_eq!(
            PairOutcome::SkippedIndistinguishable.kind(),
            OutcomeKind::Indistinguishable
        );
        assert_eq!(PairOutcome::Cancelled.kind(), OutcomeKind::Cancelled);
        assert_eq!(
            PairOutcome::PowerLimited {
                measurements_before: 3
            }
            .kind(),
            OutcomeKind::PowerLimited
        );
    }
}
