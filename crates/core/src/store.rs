//! The results archive: a directory-backed, JSON-persisted store of
//! campaign runs, keyed by content-addressed run ids.
//!
//! A finished [`CampaignResult`] used to evaporate unless the caller
//! hand-wired CSV paths. [`ResultStore`] makes results durable and
//! addressable: every archived run records the *effective*
//! [`CampaignSpec`], the full result, and provenance metadata, under a
//! [`RunId`] derived from the canonical spec JSON — so the same experiment
//! (same device, seed, frequencies, knobs) always lands on the same id, and
//! two stores built from the same specs agree on every address.
//!
//! ```no_run
//! use latest_core::store::ResultStore;
//! use latest_core::spec::CampaignSpec;
//! # use latest_core::Latest;
//! let spec = CampaignSpec::builder("a100")
//!     .frequencies_mhz(&[705, 1410])
//!     .build()
//!     .unwrap();
//! let result = Latest::new(spec.resolve().unwrap()).run().unwrap();
//!
//! let store = ResultStore::open("latest-store").unwrap();
//! let id = store.put(&spec, &result).unwrap();
//! let back = store.get(&id).unwrap();
//! assert_eq!(back.result.seed, result.seed);
//! assert_eq!(store.latest_for(&spec).unwrap().unwrap().run_id, id);
//! ```
//!
//! Layout: one file per run, `<root>/<run-id>.json`, written atomically
//! (temp + rename). Loads validate integrity: the stored spec must re-hash
//! to the file's id, parse-validate, and agree with the stored result's
//! seed and device index — a corrupted or hand-edited archive entry is
//! reported, never silently served.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::campaign::CampaignResult;
use crate::spec::{CampaignSpec, FleetSpec};

/// Content-addressed identity of an archived run: a stable hash of the
/// effective spec's canonical JSON (which covers device, seed, frequencies
/// and every stopping-rule knob).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(String);

impl RunId {
    /// Derive the id of the run a spec describes.
    ///
    /// Stable across re-serialisation: the canonical JSON emitted by
    /// [`CampaignSpec::to_json`] has a fixed field order, so
    /// spec → JSON → spec → JSON is byte-identical and re-hashes to the
    /// same id.
    pub fn of_spec(spec: &CampaignSpec) -> RunId {
        let (h1, h2) = content_hash128(spec.to_json().as_bytes());
        RunId(format!("run-{h1:016x}{h2:016x}"))
    }

    /// Parse an id string (`run-<32 hex>`), rejecting malformed input.
    pub fn parse(text: &str) -> Result<RunId, StoreError> {
        let hex = text
            .strip_prefix("run-")
            .filter(|h| h.len() == 32 && h.bytes().all(|b| b.is_ascii_hexdigit()))
            .ok_or_else(|| StoreError::BadRunId {
                text: text.to_string(),
            })?;
        Ok(RunId(format!("run-{}", hex.to_ascii_lowercase())))
    }

    /// The id as a string (`run-<32 hex>`); also the archive file stem.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The *family* id of the experiment a spec describes: the id the spec
    /// would have under seed 0.
    ///
    /// Re-runs of the same experiment conventionally vary only the seed, so
    /// the family id groups them — [`ResultStore::gc`] keeps the most
    /// recent N entries per family. Two specs differing in anything other
    /// than the seed land in different families.
    pub fn family_of(spec: &CampaignSpec) -> RunId {
        let mut normalized = spec.clone();
        normalized.seed = 0;
        RunId::of_spec(&normalized)
    }
}

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// 128 content-address bits over a canonical byte string: FNV-1a twice
/// with distinct offset bases. Dependency-free and deterministic across
/// platforms; the single hashing scheme behind [`RunId`] and the queue's
/// job keys — one implementation so the two addressing spaces can never
/// silently drift.
pub fn content_hash128(bytes: &[u8]) -> (u64, u64) {
    (
        fnv1a64(bytes, 0xcbf2_9ce4_8422_2325),
        fnv1a64(bytes, 0x6c62_272e_07bb_0142),
    )
}

fn fnv1a64(bytes: &[u8], offset_basis: u64) -> u64 {
    let mut hash = offset_basis;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Provenance metadata recorded next to every archived run. Deliberately
/// free of wall-clock timestamps: an archive entry's bytes are a pure
/// function of the run, so re-archiving the same run is a no-op and
/// rendered bundles stay bitwise reproducible.
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    /// Version of this tool that produced the result.
    pub tool_version: String,
    /// Resolved device name (e.g. `NVIDIA A100-SXM4-40GB`).
    pub device_name: String,
    /// Device unit index.
    pub device_index: usize,
    /// Hostname the spec names for output files.
    pub hostname: String,
    /// Campaign seed.
    pub seed: u64,
    /// Ordered pairs scheduled.
    pub pairs_total: usize,
    /// Pairs that completed with measurements.
    pub pairs_completed: usize,
    /// The spec's free-text description.
    pub description: String,
}

impl Provenance {
    fn derive(spec: &CampaignSpec, result: &CampaignResult) -> Provenance {
        Provenance {
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            device_name: result.device_name.clone(),
            device_index: result.device_index,
            hostname: spec.hostname.clone(),
            seed: result.seed,
            pairs_total: result.pairs().len(),
            pairs_completed: result.completed().count(),
            description: spec.description.clone(),
        }
    }
}

impl serde::Serialize for Provenance {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("tool_version".to_string(), self.tool_version.to_value()),
            ("device_name".to_string(), self.device_name.to_value()),
            ("device_index".to_string(), self.device_index.to_value()),
            ("hostname".to_string(), self.hostname.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("pairs_total".to_string(), self.pairs_total.to_value()),
            (
                "pairs_completed".to_string(),
                self.pairs_completed.to_value(),
            ),
            ("description".to_string(), self.description.to_value()),
        ])
    }
}

impl serde::Deserialize for Provenance {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for Provenance, got {value:?}"))
        })?;
        let field = |name: &str| serde::field(entries, name, "Provenance");
        Ok(Provenance {
            tool_version: serde::Deserialize::from_value(field("tool_version")?)?,
            device_name: serde::Deserialize::from_value(field("device_name")?)?,
            device_index: serde::Deserialize::from_value(field("device_index")?)?,
            hostname: serde::Deserialize::from_value(field("hostname")?)?,
            seed: serde::Deserialize::from_value(field("seed")?)?,
            pairs_total: serde::Deserialize::from_value(field("pairs_total")?)?,
            pairs_completed: serde::Deserialize::from_value(field("pairs_completed")?)?,
            description: serde::Deserialize::from_value(field("description")?)?,
        })
    }
}

/// One archived run: the effective spec, the full result, and provenance.
#[derive(Clone, Debug)]
pub struct StoredRun {
    /// The run's content address.
    pub run_id: RunId,
    /// Provenance metadata.
    pub provenance: Provenance,
    /// The effective campaign spec the result was produced from.
    pub spec: CampaignSpec,
    /// The full campaign result.
    pub result: CampaignResult,
}

const STORE_FORMAT: u64 = 1;

impl serde::Serialize for StoredRun {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("format".to_string(), STORE_FORMAT.to_value()),
            (
                "run_id".to_string(),
                self.run_id.as_str().to_string().to_value(),
            ),
            ("provenance".to_string(), self.provenance.to_value()),
            ("spec".to_string(), self.spec.to_value()),
            ("result".to_string(), self.result.to_value()),
        ])
    }
}

impl serde::Deserialize for StoredRun {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for StoredRun, got {value:?}"))
        })?;
        let field = |name: &str| serde::field(entries, name, "StoredRun");
        let format: u64 = serde::Deserialize::from_value(field("format")?)?;
        if format != STORE_FORMAT {
            return Err(serde::Error::custom(format!(
                "unsupported archive format {format} (this tool reads {STORE_FORMAT})"
            )));
        }
        let id_text: String = serde::Deserialize::from_value(field("run_id")?)?;
        let run_id = RunId::parse(&id_text)
            .map_err(|e| serde::Error::custom(format!("bad run_id in archive entry: {e}")))?;
        Ok(StoredRun {
            run_id,
            provenance: serde::Deserialize::from_value(field("provenance")?)?,
            spec: serde::Deserialize::from_value(field("spec")?)?,
            result: serde::Deserialize::from_value(field("result")?)?,
        })
    }
}

/// Errors surfaced by the archive.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A run id string is not `run-<32 hex>`.
    BadRunId {
        /// The offending text.
        text: String,
    },
    /// The requested run is not in the archive.
    NotFound {
        /// The requested id.
        run_id: String,
    },
    /// An archive entry failed to parse.
    Parse {
        /// File involved.
        path: PathBuf,
        /// Parser message.
        message: String,
    },
    /// An archive entry parsed but failed integrity validation (stored spec
    /// re-hashes to a different id, or disagrees with the stored result).
    Corrupt {
        /// File involved.
        path: PathBuf,
        /// What disagreed.
        reason: String,
    },
    /// A run-id prefix matched more than one archived run.
    AmbiguousPrefix {
        /// The prefix given.
        prefix: String,
        /// Every matching id.
        matches: Vec<String>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::BadRunId { text } => {
                write!(
                    f,
                    "malformed run id {text:?} (expected run-<32 hex digits>)"
                )
            }
            StoreError::NotFound { run_id } => write!(f, "run {run_id} is not in the archive"),
            StoreError::Parse { path, message } => {
                write!(f, "unreadable archive entry {}: {message}", path.display())
            }
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt archive entry {}: {reason}", path.display())
            }
            StoreError::AmbiguousPrefix { prefix, matches } => write!(
                f,
                "run id prefix {prefix:?} is ambiguous ({})",
                matches.join(", ")
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// A directory-backed archive of campaign runs.
#[derive(Clone, Debug)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Open (creating if necessary) the archive rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> StoreResult<ResultStore> {
        let root = dir.into();
        fs::create_dir_all(&root)?;
        Ok(ResultStore { root })
    }

    /// The archive's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, id: &RunId) -> PathBuf {
        self.root.join(format!("{}.json", id.as_str()))
    }

    /// Archive one run under the id its spec hashes to, returning that id.
    ///
    /// Idempotent: re-putting the same (spec, result) rewrites the same
    /// bytes at the same address. A different result under the same spec
    /// (e.g. a partial checkpoint vs the finished run) overwrites — the
    /// archive keeps the latest result per address, which is what
    /// [`ResultStore::latest_for`] means.
    pub fn put(&self, spec: &CampaignSpec, result: &CampaignResult) -> StoreResult<RunId> {
        let run_id = RunId::of_spec(spec);
        let doc = StoredRun {
            run_id: run_id.clone(),
            provenance: Provenance::derive(spec, result),
            spec: spec.clone(),
            result: result.clone(),
        };
        let path = self.path_of(&run_id);
        let json = serde_json::to_string_pretty(&doc).expect("stored run serialises");
        // Atomic write: a crash mid-write must not corrupt an existing
        // entry.
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, &json)?;
        fs::rename(&tmp, &path)?;
        Ok(run_id)
    }

    /// Archive every member of a fleet run per slot, returning the member
    /// run ids in slot order. Members whose campaigns never started
    /// (cancelled fleets) are skipped.
    pub fn put_fleet(
        &self,
        spec: &FleetSpec,
        results: &[CampaignResult],
    ) -> StoreResult<Vec<RunId>> {
        let mut ids = Vec::new();
        for (member, result) in spec.members.iter().zip(results) {
            ids.push(self.put(member, result)?);
        }
        Ok(ids)
    }

    /// Load one archived run, validating its integrity.
    pub fn get(&self, id: &RunId) -> StoreResult<StoredRun> {
        let path = self.path_of(id);
        let text = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                StoreError::NotFound {
                    run_id: id.to_string(),
                }
            } else {
                StoreError::Io(e)
            }
        })?;
        let doc: StoredRun = serde_json::from_str(&text).map_err(|e| StoreError::Parse {
            path: path.clone(),
            message: e.to_string(),
        })?;
        self.validate(&path, id, &doc)?;
        Ok(doc)
    }

    fn validate(&self, path: &Path, requested: &RunId, doc: &StoredRun) -> StoreResult<()> {
        let corrupt = |reason: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            reason,
        };
        if &doc.run_id != requested {
            return Err(corrupt(format!(
                "entry records id {} but was addressed as {requested}",
                doc.run_id
            )));
        }
        let rehash = RunId::of_spec(&doc.spec);
        if rehash != doc.run_id {
            return Err(corrupt(format!(
                "stored spec re-hashes to {rehash}, not {} — the spec or id was edited",
                doc.run_id
            )));
        }
        if doc.result.seed != doc.spec.seed {
            return Err(corrupt(format!(
                "result seed {} disagrees with spec seed {}",
                doc.result.seed, doc.spec.seed
            )));
        }
        if doc.result.device_index != doc.spec.device_index {
            return Err(corrupt(format!(
                "result device index {} disagrees with spec device index {}",
                doc.result.device_index, doc.spec.device_index
            )));
        }
        if let Err(errors) = doc.spec.validate() {
            return Err(corrupt(format!(
                "stored spec no longer validates: {errors}"
            )));
        }
        Ok(())
    }

    /// The archived run a spec addresses, if present.
    pub fn latest_for(&self, spec: &CampaignSpec) -> StoreResult<Option<StoredRun>> {
        match self.get(&RunId::of_spec(spec)) {
            Ok(run) => Ok(Some(run)),
            Err(StoreError::NotFound { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Whether a run id is present (without loading the result).
    pub fn contains(&self, id: &RunId) -> bool {
        self.path_of(id).is_file()
    }

    /// Every archived run, sorted by id (validated on load).
    pub fn list(&self) -> StoreResult<Vec<StoredRun>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".json") {
                if let Ok(id) = RunId::parse(stem) {
                    ids.push(id);
                }
            }
        }
        ids.sort();
        ids.into_iter().map(|id| self.get(&id)).collect()
    }

    /// Delete one archived run, returning whether it was present.
    ///
    /// Removing an absent id is not an error (`Ok(false)`): deletion is
    /// idempotent so queue retention and `list-runs --prune` can race
    /// harmlessly with each other.
    pub fn remove(&self, id: &RunId) -> StoreResult<bool> {
        match fs::remove_file(self.path_of(id)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Bound archive growth: keep only the `keep_latest_n_per_spec` most
    /// recently written runs of each experiment *family* (the spec modulo
    /// seed — see [`RunId::family_of`]) and delete the rest, returning the
    /// removed ids in ascending order.
    ///
    /// Recency is file modification time (entry bytes are deliberately
    /// timestamp-free), with ties broken by id so the outcome is
    /// deterministic. `keep_latest_n_per_spec == 0` empties the archive.
    pub fn gc(&self, keep_latest_n_per_spec: usize) -> StoreResult<Vec<RunId>> {
        use std::collections::BTreeMap;
        let mut families: BTreeMap<RunId, Vec<(std::time::SystemTime, RunId)>> = BTreeMap::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            let Some(stem) = name.strip_suffix(".json") else {
                continue;
            };
            let Ok(id) = RunId::parse(stem) else {
                continue;
            };
            let run = match self.get(&id) {
                Ok(run) => run,
                // A torn or tampered entry must not block pruning every
                // valid one — it is skipped (and left in place: gc bounds
                // growth, it does not adjudicate corruption).
                Err(StoreError::Parse { .. } | StoreError::Corrupt { .. }) => continue,
                Err(e) => return Err(e),
            };
            let mtime = fs::metadata(self.path_of(&run.run_id))?.modified()?;
            families
                .entry(RunId::family_of(&run.spec))
                .or_default()
                .push((mtime, run.run_id));
        }
        let mut removed = Vec::new();
        for (_, mut members) in families {
            // Newest first; mtime ties broken by id for determinism.
            members.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            for (_, id) in members.into_iter().skip(keep_latest_n_per_spec) {
                self.remove(&id)?;
                removed.push(id);
            }
        }
        removed.sort();
        Ok(removed)
    }

    /// Resolve a full run id or an unambiguous prefix (≥ 4 hex digits after
    /// `run-`, or the bare hex) to the archived id it names.
    pub fn resolve(&self, text: &str) -> StoreResult<RunId> {
        if let Ok(id) = RunId::parse(text) {
            if self.contains(&id) {
                return Ok(id);
            }
            return Err(StoreError::NotFound {
                run_id: id.to_string(),
            });
        }
        let needle = text.strip_prefix("run-").unwrap_or(text).to_lowercase();
        if needle.len() < 4 || !needle.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(StoreError::BadRunId {
                text: text.to_string(),
            });
        }
        let mut matches = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".json") {
                if let Ok(id) = RunId::parse(stem) {
                    if id.as_str()["run-".len()..].starts_with(&needle) {
                        matches.push(id);
                    }
                }
            }
        }
        matches.sort();
        match matches.len() {
            0 => Err(StoreError::NotFound {
                run_id: format!("run-{needle}…"),
            }),
            1 => Ok(matches.remove(0)),
            _ => Err(StoreError::AmbiguousPrefix {
                prefix: text.to_string(),
                matches: matches.iter().map(|m| m.to_string()).collect(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Latest;

    fn spec(seed: u64) -> CampaignSpec {
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .measurements(4, 8)
            .simulated_sms(Some(2))
            .seed(seed)
            .build()
            .unwrap()
    }

    fn run(spec: &CampaignSpec) -> CampaignResult {
        Latest::new(spec.resolve().unwrap()).run().unwrap()
    }

    fn temp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("latest_store_test_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        ResultStore::open(dir).unwrap()
    }

    #[test]
    fn run_id_is_content_addressed_and_stable() {
        let s = spec(7);
        let id1 = RunId::of_spec(&s);
        // Re-serialisation changes nothing.
        let reparsed = CampaignSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(RunId::of_spec(&reparsed), id1);
        // Any knob change moves the address.
        let mut other = s.clone();
        other.seed = 8;
        assert_ne!(RunId::of_spec(&other), id1);
        // Ids parse back to themselves.
        assert_eq!(RunId::parse(id1.as_str()).unwrap(), id1);
        assert!(RunId::parse("run-xyz").is_err());
        assert!(RunId::parse("not-an-id").is_err());
    }

    #[test]
    fn put_get_round_trips_with_provenance() {
        let store = temp_store("roundtrip");
        let s = spec(11);
        let r = run(&s);
        let id = store.put(&s, &r).unwrap();
        let back = store.get(&id).unwrap();
        assert_eq!(back.spec, s);
        assert_eq!(back.result.seed, r.seed);
        assert_eq!(back.provenance.pairs_total, r.pairs().len());
        assert_eq!(back.provenance.device_name, r.device_name);
        assert!(store.contains(&id));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn put_is_idempotent_and_latest_for_finds_it() {
        let store = temp_store("idem");
        let s = spec(13);
        let r = run(&s);
        let id1 = store.put(&s, &r).unwrap();
        let bytes1 = fs::read(store.root().join(format!("{id1}.json"))).unwrap();
        let id2 = store.put(&s, &r).unwrap();
        let bytes2 = fs::read(store.root().join(format!("{id2}.json"))).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(bytes1, bytes2, "re-put must rewrite identical bytes");
        let latest = store.latest_for(&s).unwrap().unwrap();
        assert_eq!(latest.run_id, id1);
        assert!(store.latest_for(&spec(999)).unwrap().is_none());
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn list_and_prefix_resolution() {
        let store = temp_store("list");
        let s1 = spec(1);
        let s2 = spec(2);
        store.put(&s1, &run(&s1)).unwrap();
        store.put(&s2, &run(&s2)).unwrap();
        let all = store.list().unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.windows(2).all(|w| w[0].run_id < w[1].run_id));
        // A long-enough unique prefix resolves.
        let id = RunId::of_spec(&s1);
        let short = &id.as_str()[..12]; // "run-" + 8 hex
        assert_eq!(store.resolve(short).unwrap(), id);
        assert!(matches!(
            store.resolve("run-ffff"),
            Err(StoreError::NotFound { .. }) | Err(StoreError::AmbiguousPrefix { .. })
        ));
        assert!(matches!(
            store.resolve("zz"),
            Err(StoreError::BadRunId { .. })
        ));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn remove_is_idempotent() {
        let store = temp_store("remove");
        let s = spec(41);
        let id = store.put(&s, &run(&s)).unwrap();
        assert!(store.contains(&id));
        assert!(store.remove(&id).unwrap());
        assert!(!store.contains(&id));
        assert!(!store.remove(&id).unwrap(), "second remove reports absent");
        assert!(matches!(store.get(&id), Err(StoreError::NotFound { .. })));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn gc_keeps_latest_n_per_family() {
        let store = temp_store("gc");
        // One family (same spec, seeds 1..=3) plus an unrelated spec.
        let family: Vec<CampaignSpec> = (1..=3).map(spec).collect();
        let mut ids = Vec::new();
        for (i, s) in family.iter().enumerate() {
            ids.push(store.put(s, &run(s)).unwrap());
            // Distinct mtimes so "latest" is well defined (coarse
            // filesystems round to a second).
            let path = store.root().join(format!("{}.json", ids[i]));
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64 * 100);
            let f = fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(t).unwrap();
        }
        let other = CampaignSpec::builder("gh200")
            .frequencies_mhz(&[705, 1980])
            .measurements(4, 8)
            .simulated_sms(Some(2))
            .build()
            .unwrap();
        let other_id = store.put(&other, &run(&other)).unwrap();

        assert_eq!(
            RunId::family_of(&family[0]),
            RunId::family_of(&family[2]),
            "same spec modulo seed shares a family"
        );
        assert_ne!(RunId::family_of(&family[0]), RunId::family_of(&other));

        let removed = store.gc(1).unwrap();
        // The two oldest family members go; the newest and the unrelated
        // spec stay.
        assert_eq!(removed.len(), 2);
        assert!(removed.contains(&ids[0]) && removed.contains(&ids[1]));
        assert!(store.contains(&ids[2]));
        assert!(store.contains(&other_id));
        assert!(store.gc(1).unwrap().is_empty(), "gc is idempotent");
        assert!(!store.gc(0).unwrap().is_empty());
        assert!(store.list().unwrap().is_empty(), "gc(0) empties the store");
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn gc_skips_corrupt_entries_instead_of_failing() {
        let store = temp_store("gc_corrupt");
        let family: Vec<CampaignSpec> = (1..=2).map(spec).collect();
        let mut ids = Vec::new();
        for (i, s) in family.iter().enumerate() {
            ids.push(store.put(s, &run(s)).unwrap());
            let path = store.root().join(format!("{}.json", ids[i]));
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64 * 100);
            let f = fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(t).unwrap();
        }
        // Tear a third entry: valid id filename, garbage content.
        let torn = store
            .root()
            .join("run-ffffffffffffffffffffffffffffffff.json");
        fs::write(&torn, "{torn").unwrap();
        // Pruning still works on the valid family; the torn entry neither
        // fails the call nor gets deleted.
        let removed = store.gc(1).unwrap();
        assert_eq!(removed, vec![ids[0].clone()]);
        assert!(store.contains(&ids[1]));
        assert!(torn.is_file());
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn ambiguous_prefix_error_lists_every_candidate() {
        let store = temp_store("ambig");
        let mut ids = Vec::new();
        // Seeds until two ids share a 1-hex-digit prefix; resolve() needs 4
        // digits, so synthesize the collision by renaming the second file
        // onto a shared prefix instead of fishing for a real hash collision.
        let s1 = spec(51);
        let s2 = spec(52);
        ids.push(store.put(&s1, &run(&s1)).unwrap());
        ids.push(store.put(&s2, &run(&s2)).unwrap());
        let shared = "deadbeef";
        ids = ids
            .into_iter()
            .map(|id| {
                let forged = format!("run-{shared}{}", &id.as_str()[12..]);
                fs::rename(
                    store.root().join(format!("{id}.json")),
                    store.root().join(format!("{forged}.json")),
                )
                .unwrap();
                RunId::parse(&forged).unwrap()
            })
            .collect();
        let err = store.resolve(shared).unwrap_err();
        match err {
            StoreError::AmbiguousPrefix { matches, .. } => {
                assert_eq!(matches.len(), 2);
                for id in &ids {
                    assert!(matches.contains(&id.to_string()), "missing {id}");
                }
            }
            other => panic!("expected AmbiguousPrefix, got {other}"),
        }
        // And the rendered message carries every candidate too.
        let msg = store.resolve(shared).unwrap_err().to_string();
        for id in &ids {
            assert!(msg.contains(id.as_str()), "message must list {id}: {msg}");
        }
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn tampered_entries_are_rejected() {
        let store = temp_store("tamper");
        let s = spec(21);
        let id = store.put(&s, &run(&s)).unwrap();
        let path = store.root().join(format!("{id}.json"));
        // Edit the stored spec's seed without re-hashing.
        let text = fs::read_to_string(&path).unwrap();
        let edited = text.replacen("\"seed\": 21", "\"seed\": 22", 2);
        assert_ne!(text, edited);
        fs::write(&path, edited).unwrap();
        assert!(matches!(store.get(&id), Err(StoreError::Corrupt { .. })));
        // Unparseable JSON is a parse error, not a panic.
        fs::write(&path, "{not json").unwrap();
        assert!(matches!(store.get(&id), Err(StoreError::Parse { .. })));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn fleet_members_are_stored_per_slot() {
        let store = temp_store("fleet");
        let fleet = FleetSpec::new().member(spec(31)).member(spec(32));
        let results: Vec<CampaignResult> = fleet.members.iter().map(run).collect();
        let ids = store.put_fleet(&fleet, &results).unwrap();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        for (member, id) in fleet.members.iter().zip(&ids) {
            assert_eq!(&RunId::of_spec(member), id);
            assert!(store.contains(id));
        }
        fs::remove_dir_all(store.root()).ok();
    }
}
