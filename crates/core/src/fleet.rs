//! The multi-device fleet driver: one campaign per [`DeviceSpec`], run in
//! parallel, aggregated per device.
//!
//! The paper benchmarks three GPU models and four units of the same SKU;
//! related frequency-scaling studies sweep whole clusters. [`Fleet`] is the
//! orchestration layer for that shape: add one [`CampaignConfig`] per
//! device (different models, or units of one model), run them all — each
//! device is an independent [`CampaignSession`] scheduled at pair
//! granularity — and collect a [`FleetResult`] holding per-device
//! [`CampaignResult`]s plus cross-device summary rows ready for
//! `latest-report`'s table renderers.
//!
//! Cancellation and progress events compose: one shared [`CancelToken`]
//! winds down every member session, and a [`FleetObserver`] sees every
//! member's [`CampaignEvent`] tagged with its device slot.

use latest_cluster::AdaptiveConfig;
use latest_gpu_sim::devices::DeviceSpec;
use rayon::prelude::*;

use crate::campaign::CampaignResult;
use crate::config::CampaignConfig;
use crate::error::{CoreError, CoreResult};
use crate::session::{CampaignEvent, CampaignSession, CancelToken};

/// Observer hook for fleet-wide progress: every member session's event,
/// tagged with the member's slot in the fleet.
pub trait FleetObserver: Send + Sync {
    /// Called for every event of every member campaign.
    fn event(&self, device_slot: usize, event: &CampaignEvent);
}

impl<F: Fn(usize, &CampaignEvent) + Send + Sync> FleetObserver for F {
    fn event(&self, device_slot: usize, event: &CampaignEvent) {
        self(device_slot, event)
    }
}

/// A fleet of devices to measure, one campaign each.
#[derive(Default)]
pub struct Fleet {
    members: Vec<CampaignConfig>,
    adaptive: AdaptiveConfig,
    observers: Vec<std::sync::Arc<dyn FleetObserver>>,
    cancel: CancelToken,
    sequential: bool,
    shard_pairs: Option<usize>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Fleet::default()
    }

    /// Add one device's campaign configuration.
    pub fn add_campaign(mut self, config: CampaignConfig) -> Self {
        self.members.push(config);
        self
    }

    /// Convenience: add a device spec measured over `frequencies_mhz`, with
    /// the device index and a per-device seed derived from the slot.
    pub fn add_device(self, spec: DeviceSpec, frequencies_mhz: &[u32], base_seed: u64) -> Self {
        let slot = self.members.len();
        let config = CampaignConfig::builder(spec)
            .frequencies_mhz(frequencies_mhz)
            .device_index(slot)
            .seed(base_seed.wrapping_add(slot as u64))
            .build();
        self.add_campaign(config)
    }

    /// Override the Algorithm-3 parameters for every member.
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Attach a fleet-wide observer.
    pub fn observe(mut self, observer: impl FleetObserver + 'static) -> Self {
        self.observers.push(std::sync::Arc::new(observer));
        self
    }

    /// The shared cancellation token: cancelling it winds down every member.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Force sequential scheduling (members and their pairs).
    pub fn sequential(mut self, on: bool) -> Self {
        self.sequential = on;
        self
    }

    /// Run every member through the session's
    /// [`WorkUnit`](crate::session::WorkUnit) layer, its pairs partitioned
    /// into work units of at most `n` pairs each — bitwise identical to
    /// the default pair-granular scheduling, with shard progress events.
    pub fn shard_pairs(mut self, n: usize) -> Self {
        self.shard_pairs = Some(n.max(1));
        self
    }

    /// Number of member devices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the fleet has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members' campaign configurations, in slot order.
    ///
    /// Each member is an independent campaign — its own device, seed and
    /// pair set — so each decomposes into its own shard set
    /// ([`CampaignSession::plan`]) with no state shared between members:
    /// fleet members are first-class parallel units, and a scheduler (the
    /// queue's worker pool) may interleave shards of different members
    /// freely without affecting any result.
    pub fn members(&self) -> &[CampaignConfig] {
        &self.members
    }

    /// Run every member campaign and aggregate per-device results.
    ///
    /// Members run in parallel (each internally parallel over pairs); the
    /// per-device seeding makes the outcome independent of scheduling. A
    /// shared-token cancellation that lands before a member even starts its
    /// phase 1 leaves that member in [`FleetResult::unstarted`] rather than
    /// failing the whole fleet.
    pub fn run(&self) -> CoreResult<FleetResult> {
        let run_one =
            |(slot, config): (usize, &CampaignConfig)| -> CoreResult<Option<CampaignResult>> {
                let mut session = CampaignSession::new(config.clone())
                    .with_adaptive(self.adaptive)
                    .with_cancel_token(self.cancel.clone())
                    .sequential(self.sequential);
                for obs in &self.observers {
                    let obs = obs.clone();
                    session = session.observe(move |e: &CampaignEvent| obs.event(slot, e));
                }
                let outcome = match self.shard_pairs {
                    Some(n) => session.run_sharded(config.ordered_state_pairs().len().div_ceil(n)),
                    None => session.run(),
                };
                match outcome {
                    Ok(r) => Ok(Some(r)),
                    Err(CoreError::Cancelled) => Ok(None),
                    Err(e) => Err(e),
                }
            };
        let outcomes: CoreResult<Vec<Option<CampaignResult>>> = if self.sequential {
            self.members.iter().enumerate().map(run_one).collect()
        } else {
            self.members.par_iter().enumerate().map(run_one).collect()
        };
        let mut devices = Vec::new();
        let mut unstarted = Vec::new();
        for (slot, outcome) in outcomes?.into_iter().enumerate() {
            match outcome {
                Some(r) => devices.push(r),
                None => unstarted.push(slot),
            }
        }
        Ok(FleetResult { devices, unstarted })
    }
}

/// Aggregated result of a fleet run: one [`CampaignResult`] per member that
/// ran, in fleet order.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FleetResult {
    devices: Vec<CampaignResult>,
    unstarted: Vec<usize>,
}

impl FleetResult {
    /// Assemble a result from per-member campaign results already in hand
    /// — archived runs served as a cache hit, say — in slot order.
    pub fn from_devices(devices: Vec<CampaignResult>) -> FleetResult {
        FleetResult {
            devices,
            unstarted: Vec::new(),
        }
    }

    /// Per-device results, in the order devices were added (members that
    /// were cancelled before starting are absent; see
    /// [`FleetResult::unstarted`]).
    pub fn devices(&self) -> &[CampaignResult] {
        &self.devices
    }

    /// Fleet slots whose campaigns were cancelled before phase 1 ran.
    pub fn unstarted(&self) -> &[usize] {
        &self.unstarted
    }

    /// The result for the first device with this name, if any.
    pub fn by_name(&self, name: &str) -> Option<&CampaignResult> {
        self.devices.iter().find(|d| d.device_name == name)
    }

    /// Cross-device summary rows (per device: pair counts and the filtered
    /// best/mean/worst latency over completed pairs) — the input shape of
    /// `latest_report::cross_device_table`.
    pub fn summary_rows(&self) -> Vec<FleetDeviceSummary> {
        use crate::view::{LatencyView, OutcomeKind, PairStat};
        self.devices
            .iter()
            .map(|r| {
                let completed = LatencyView::of(r).outcome(OutcomeKind::Completed);
                let best = completed.stat_range(PairStat::Min);
                let mean = completed.stat_range(PairStat::Mean);
                let worst = completed.stat_range(PairStat::Max);
                FleetDeviceSummary {
                    device_name: r.device_name.clone(),
                    device_index: r.device_index,
                    pairs_total: r.pairs().len(),
                    pairs_completed: completed.count(),
                    best_ms: best.map_or(f64::INFINITY, |(min, _, _)| min),
                    mean_ms: mean.map_or(f64::NAN, |(_, mean, _)| mean),
                    worst_ms: worst.map_or(f64::NEG_INFINITY, |(_, _, max)| max),
                }
            })
            .collect()
    }

    /// Serialise to pretty JSON (the `latest run --json` fleet format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet result serialises")
    }

    /// Parse a fleet result back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Cross-device summary as CSV, mirroring `Heatmap::to_csv`'s
    /// conventions: one row per device, non-finite statistics (a device
    /// with no completed pairs) left as empty cells.
    pub fn summary_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "device_name,device_index,pairs_total,pairs_completed,best_ms,mean_ms,worst_ms\n",
        );
        let cell = |v: f64| {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                String::new()
            }
        };
        for row in self.summary_rows() {
            // Device names contain spaces and parentheses; quote them so
            // the CSV stays one-field-per-column under any reader.
            let _ = writeln!(
                out,
                "\"{}\",{},{},{},{},{},{}",
                row.device_name.replace('"', "\"\""),
                row.device_index,
                row.pairs_total,
                row.pairs_completed,
                cell(row.best_ms),
                cell(row.mean_ms),
                cell(row.worst_ms),
            );
        }
        out
    }
}

/// One device's row in the cross-device summary.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FleetDeviceSummary {
    /// Device name.
    pub device_name: String,
    /// Device index within its campaign config.
    pub device_index: usize,
    /// Ordered pairs scheduled.
    pub pairs_total: usize,
    /// Pairs that completed with measurements.
    pub pairs_completed: usize,
    /// Best (minimum) filtered per-pair latency (ms); `inf` if none.
    pub best_ms: f64,
    /// Mean of the filtered per-pair means (ms); `NaN` if none.
    pub mean_ms: f64,
    /// Worst (maximum) filtered per-pair latency (ms); `-inf` if none.
    pub worst_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn quick(
        spec: latest_gpu_sim::devices::DeviceSpec,
        freqs: &[u32],
        seed: u64,
    ) -> CampaignConfig {
        let mut spec = spec;
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(6),
        });
        CampaignConfig::builder(spec)
            .frequencies_mhz(freqs)
            .measurements(5, 12)
            .simulated_sms(Some(2))
            .seed(seed)
            .build()
    }

    #[test]
    fn fleet_aggregates_per_device_results() {
        let fleet = Fleet::new()
            .add_campaign(quick(devices::a100_sxm4(), &[705, 1410], 1))
            .add_campaign(quick(devices::gh200(), &[705, 1980], 2));
        assert_eq!(fleet.len(), 2);
        let result = fleet.run().unwrap();
        assert_eq!(result.devices().len(), 2);
        assert!(result.by_name("NVIDIA A100-SXM4-40GB").is_some());
        assert!(result.devices().iter().all(|d| d.completed().count() > 0));
        let rows = result.summary_rows();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.best_ms <= row.mean_ms && row.mean_ms <= row.worst_ms);
            assert_eq!(row.pairs_total, 2);
        }
    }

    #[test]
    fn summary_csv_has_one_quoted_row_per_device() {
        let fleet = Fleet::new()
            .add_campaign(quick(devices::a100_sxm4(), &[705, 1410], 1))
            .add_campaign(quick(devices::gh200(), &[705, 1980], 2));
        let csv = fleet.run().unwrap().summary_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("device_name,device_index,pairs_total"));
        assert!(lines[1].starts_with("\"NVIDIA A100-SXM4-40GB\",0,2,"));
        assert!(lines[2].starts_with("\"NVIDIA GH200 (Grace Hopper)\",0,2,"));
        // Every row has exactly 7 columns (the quoted name contains no comma).
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 7, "{line}");
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let build = || {
            Fleet::new()
                .add_campaign(quick(devices::a100_sxm4(), &[705, 1410], 7))
                .add_campaign(quick(devices::a100_sxm4_unit(1), &[705, 1410], 8))
        };
        let a = build().run().unwrap();
        let b = build().sequential(true).run().unwrap();
        for (da, db) in a.devices().iter().zip(b.devices()) {
            for (pa, pb) in da.pairs().iter().zip(db.pairs()) {
                assert_eq!(pa.latencies_ms(), pb.latencies_ms());
            }
        }
    }

    #[test]
    fn shared_cancel_token_reaches_every_member() {
        let fleet = Fleet::new()
            .add_campaign(quick(devices::a100_sxm4(), &[705, 1410], 3))
            .add_campaign(quick(devices::gh200(), &[705, 1980], 4))
            .sequential(true);
        let token = fleet.cancel_token();
        let fleet = fleet.observe(move |_slot: usize, e: &CampaignEvent| {
            if matches!(e, CampaignEvent::PairFinished { .. }) {
                token.cancel();
            }
        });
        let result = fleet.run().unwrap();
        // The first pair of the first device completes; the rest of that
        // device is marked cancelled and the second device never starts.
        let completed: usize = result.devices().iter().map(|d| d.completed().count()).sum();
        assert_eq!(completed, 1);
        assert_eq!(result.devices().len(), 1);
        assert!(result.devices()[0].is_partial());
        assert_eq!(result.unstarted(), &[1]);
    }
}
