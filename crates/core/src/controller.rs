//! The per-pair measurement controller (Sec. VI).
//!
//! Repeats phases 2–3 for one frequency pair until the relative standard
//! error of the collected switching latencies drops below the configured
//! threshold, with the paper's operational guards:
//!
//! * RSE is only evaluated every 25 passes and only after the minimum
//!   measurement count;
//! * throttle reasons are polled every 5 passes — a thermal event discards
//!   the newest 5 measurements and pauses 10 s for cool-down; a power event
//!   abandons the pair (the requested frequency cannot be held);
//! * a pass that produces no confirmed per-core latency is retried
//!   (Algorithm 2's GOTO line 1); if the evaluation looks *truncated* (no
//!   core ever saw the target regime) the capture window is grown tenfold,
//!   per Sec. V's "repeated with a ten-times longer workload".

use latest_stats::{RunningStats, Summary};

use crate::config::CampaignConfig;
use crate::error::CoreResult;
use crate::phase1::Phase1Result;
use crate::phase2::run_phase2;
use crate::phase3::evaluate_pass;
use crate::platform::{GroundTruth, Platform};
use crate::state::{FreqState, PairKind};

/// The collected measurements for one pair.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PairRun {
    /// Initial clock state.
    pub init: FreqState,
    /// Target clock state.
    pub target: FreqState,
    /// Accepted switching latencies (ms), in measurement order.
    pub latencies_ms: Vec<f64>,
    /// Ground-truth switching latencies (ms) for the same passes, when the
    /// platform offers the [`GroundTruth`]
    /// capability (simulator only; used for closed-loop validation). `NaN`
    /// entries mean the backend could not know the truth.
    pub ground_truth_ms: Vec<f64>,
    /// Total phase-2/3 retries over the whole run.
    pub retries: usize,
    /// Thermal backoff events encountered.
    pub thermal_events: usize,
    /// The RSE at stop time.
    pub final_rse: f64,
    /// The capture-window bound in effect at the end (ms).
    pub final_bound_ms: f64,
}

impl PairRun {
    /// Raw (unfiltered) descriptive summary of the latencies.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.latencies_ms)
    }

    /// Which clock domains this pair transitions (core / memory /
    /// simultaneous).
    pub fn kind(&self) -> PairKind {
        self.init.kind_to(&self.target).unwrap_or(PairKind::Core)
    }
}

/// How a pair's measurement loop ended.
#[derive(Clone, Debug)]
pub enum PairOutcome {
    /// The loop completed (RSE target or measurement cap).
    Completed(PairRun),
    /// Power throttling made the pair unmeasurable; the partial data is
    /// discarded as the paper prescribes.
    PowerLimited {
        /// Measurements taken before the event.
        measurements_before: usize,
    },
    /// Phase 1 marked the pair statistically indistinguishable.
    SkippedIndistinguishable,
    /// Every phase-2/3 attempt of one measurement failed evaluation
    /// (Algorithm 2's GOTO loop never confirmed the target regime). The
    /// pair is reported unmeasured; the campaign continues.
    RetriesExhausted {
        /// Measurements accepted before the failing one.
        measurements_before: usize,
        /// Attempts spent on the failing measurement.
        attempts: usize,
    },
    /// The session was cancelled before this pair was scheduled. Resuming
    /// from a checkpoint re-runs exactly these pairs.
    Cancelled,
}

impl PairOutcome {
    /// The run, if completed.
    pub fn run(&self) -> Option<&PairRun> {
        match self {
            PairOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the session was cancelled before measuring this pair.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, PairOutcome::Cancelled)
    }
}

// The vendored serde derive handles unit-variant enums only, so the
// data-carrying outcome is (de)serialised by hand as a tagged map — the
// same externally-visible shape upstream serde's adjacently-tagged enums
// would produce.
impl serde::Serialize for PairOutcome {
    fn to_value(&self) -> serde::Value {
        let tag = |s: &str| ("status".to_string(), serde::Value::Str(s.to_string()));
        match self {
            PairOutcome::Completed(run) => {
                serde::Value::Map(vec![tag("completed"), ("run".to_string(), run.to_value())])
            }
            PairOutcome::PowerLimited {
                measurements_before,
            } => serde::Value::Map(vec![
                tag("power_limited"),
                (
                    "measurements_before".to_string(),
                    measurements_before.to_value(),
                ),
            ]),
            PairOutcome::SkippedIndistinguishable => {
                serde::Value::Map(vec![tag("skipped_indistinguishable")])
            }
            PairOutcome::RetriesExhausted {
                measurements_before,
                attempts,
            } => serde::Value::Map(vec![
                tag("retries_exhausted"),
                (
                    "measurements_before".to_string(),
                    measurements_before.to_value(),
                ),
                ("attempts".to_string(), attempts.to_value()),
            ]),
            PairOutcome::Cancelled => serde::Value::Map(vec![tag("cancelled")]),
        }
    }
}

impl serde::Deserialize for PairOutcome {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for PairOutcome, got {value:?}"))
        })?;
        let status = serde::field(entries, "status", "PairOutcome")?
            .as_str()
            .ok_or_else(|| serde::Error::custom("PairOutcome status must be a string"))?;
        match status {
            "completed" => Ok(PairOutcome::Completed(serde::Deserialize::from_value(
                serde::field(entries, "run", "PairOutcome")?,
            )?)),
            "power_limited" => Ok(PairOutcome::PowerLimited {
                measurements_before: serde::Deserialize::from_value(serde::field(
                    entries,
                    "measurements_before",
                    "PairOutcome",
                )?)?,
            }),
            "skipped_indistinguishable" => Ok(PairOutcome::SkippedIndistinguishable),
            "retries_exhausted" => Ok(PairOutcome::RetriesExhausted {
                measurements_before: serde::Deserialize::from_value(serde::field(
                    entries,
                    "measurements_before",
                    "PairOutcome",
                )?)?,
                attempts: serde::Deserialize::from_value(serde::field(
                    entries,
                    "attempts",
                    "PairOutcome",
                )?)?,
            }),
            "cancelled" => Ok(PairOutcome::Cancelled),
            other => Err(serde::Error::custom(format!(
                "unknown PairOutcome status `{other}`"
            ))),
        }
    }
}

/// Ground-truth switching latency (ms) for the pair kind just driven:
/// the core ledger for core-only pairs, the memory ledger for memory-only
/// pairs, and for simultaneous pairs the span from the *first* driver call
/// (core — phase 2 issues core before memory) to the *last* domain to
/// settle.
fn ground_truth_ms_for(gt: &dyn GroundTruth, init: FreqState, target: FreqState) -> Option<f64> {
    match init.kind_to(&target) {
        Some(PairKind::Core) | None => gt
            .last_transition()
            .map(|g| g.switching_latency().as_millis_f64()),
        Some(PairKind::Memory) => gt
            .last_mem_transition()
            .map(|g| g.switching_latency().as_millis_f64()),
        Some(PairKind::Simultaneous) => {
            let core = gt.last_transition()?;
            let mem = gt.last_mem_transition()?;
            let settled = core.settled.max(mem.settled);
            Some(settled.saturating_since(core.host_call).as_millis_f64())
        }
    }
}

/// Measure one pair to completion.
///
/// `initial_bound_ms` is the probe phase's upper-bound estimate for the
/// switching latency (used to size capture windows).
pub fn run_pair<P: Platform>(
    platform: &mut P,
    config: &CampaignConfig,
    phase1: &Phase1Result,
    init: impl Into<FreqState>,
    target: impl Into<FreqState>,
    initial_bound_ms: f64,
) -> CoreResult<PairOutcome> {
    let init: FreqState = init.into();
    let target: FreqState = target.into();
    if !phase1.is_valid(init, target) {
        return Ok(PairOutcome::SkippedIndistinguishable);
    }
    let target_stats = phase1
        .of(target)
        .expect("phase 1 characterised every configured frequency")
        .iter_ns;
    let init_stats = phase1
        .of(init)
        .expect("phase 1 characterised every configured frequency")
        .iter_ns;

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut ground_truth_ms: Vec<f64> = Vec::new();
    let mut retries = 0usize;
    let mut thermal_events = 0usize;
    let mut bound_ms = initial_bound_ms.max(1.0);

    let mut consecutive_thermal_discards = 0usize;

    while latencies_ms.len() < config.max_measurements {
        // One measurement, with the GOTO-line-1 retry loop.
        let mut measured: Option<(f64, f64)> = None;
        for _attempt in 0..config.max_retries {
            let capture = run_phase2(platform, config, init, target, &init_stats, bound_ms)?;
            let eval = evaluate_pass(&capture, &target_stats, config);
            match eval.latency_ns {
                Some(ns) => {
                    // Closed-loop bookkeeping is gated on the capability:
                    // only a backend that knows the truth can report it.
                    let gt = platform
                        .as_ground_truth()
                        .and_then(|g| ground_truth_ms_for(g, init, target))
                        .unwrap_or(f64::NAN);
                    measured = Some((ns as f64 / 1e6, gt));
                    break;
                }
                None => {
                    retries += 1;
                    if eval.looks_truncated() {
                        // The window likely ended before the transition did.
                        bound_ms *= 10.0;
                    }
                }
            }
        }
        let Some((ms, gt)) = measured else {
            return Ok(PairOutcome::RetriesExhausted {
                measurements_before: latencies_ms.len(),
                attempts: config.max_retries,
            });
        };
        latencies_ms.push(ms);
        ground_truth_ms.push(gt);
        let n = latencies_ms.len();

        // Throttle poll every 5 passes.
        if n.is_multiple_of(config.throttle_check_every) {
            let reasons = platform.throttle_reasons();
            if reasons.sw_power_cap {
                return Ok(PairOutcome::PowerLimited {
                    measurements_before: n,
                });
            }
            if reasons.hw_thermal_slowdown {
                thermal_events += 1;
                // Discard the (possibly contaminated) newest measurements —
                // but only while doing so can still make progress. A device
                // whose busy steady-state temperature exceeds the throttle
                // threshold re-trips this event on *every* poll window; an
                // unconditional discard would then remove exactly the
                // window's measurements each time and livelock the pair.
                // Past the limit the data is kept: phase-3 evaluation has
                // already vetted each pass against the target-frequency
                // regime, which is the actual quality gate.
                if consecutive_thermal_discards < config.thermal_discard_limit {
                    consecutive_thermal_discards += 1;
                    let drop = config.thermal_discard.min(latencies_ms.len());
                    latencies_ms.truncate(latencies_ms.len() - drop);
                    ground_truth_ms.truncate(ground_truth_ms.len() - drop);
                    platform.sleep(config.thermal_backoff);
                    continue;
                }
                platform.sleep(config.thermal_backoff);
            } else {
                consecutive_thermal_discards = 0;
            }
        }

        // RSE check every 25 passes, once past the minimum.
        if n >= config.min_measurements && n.is_multiple_of(config.rse_check_every) {
            let s = RunningStats::from_slice(&latencies_ms).summary();
            if s.rse() < config.rse_threshold {
                break;
            }
        }
    }

    let final_rse = RunningStats::from_slice(&latencies_ms).summary().rse();
    Ok(PairOutcome::Completed(PairRun {
        init,
        target,
        latencies_ms,
        ground_truth_ms,
        retries,
        thermal_events,
        final_rse,
        final_bound_ms: bound_ms,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::run_phase1;
    use crate::platform::SimPlatform;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::freq::FreqMhz;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn fixed_config(ms: u64, min: usize, max: usize) -> CampaignConfig {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(ms),
        });
        // A genuinely stable device: the stock driver profile injects rare
        // multi-ms stalls (the paper's outlier sources), which are real
        // latency and would legitimately keep the RSE above threshold.
        spec.driver.stall_prob = 0.0;
        CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .measurements(min, max)
            .seed(31)
            .build()
    }

    fn run(config: &CampaignConfig, init: u32, target: u32) -> PairOutcome {
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let p1 = run_phase1(&mut platform, config).unwrap();
        run_pair(
            &mut platform,
            config,
            &p1,
            FreqMhz(init),
            FreqMhz(target),
            config.initial_latency_guess_ms,
        )
        .unwrap()
    }

    #[test]
    fn rse_stopping_rule_converges_early_on_stable_device() {
        // Fixed latency -> tiny RSE -> should stop at the first RSE check
        // (25 measurements), not at the 150 cap.
        let config = fixed_config(10, 25, 150);
        let out = run(&config, 1410, 705);
        let r = out.run().expect("completed");
        assert_eq!(r.latencies_ms.len(), 25);
        assert!(r.final_rse < 0.05, "rse {}", r.final_rse);
        // All measurements recover the 10 ms ground truth closely.
        for (&m, &g) in r.latencies_ms.iter().zip(&r.ground_truth_ms) {
            assert!((m - g).abs() < 0.5, "measured {m} vs gt {g}");
        }
    }

    #[test]
    fn max_measurements_caps_noisy_pairs() {
        // High RSE threshold impossible to reach quickly -> cap applies.
        let mut config = fixed_config(10, 5, 30);
        config.rse_threshold = 1e-9;
        let out = run(&config, 705, 1410);
        let r = out.run().expect("completed");
        assert_eq!(r.latencies_ms.len(), 30);
    }

    #[test]
    fn window_grows_tenfold_when_latency_exceeds_probe_bound() {
        // True latency 120 ms, probe bound claims 2 ms: the first pass is
        // truncated, the controller must grow the window and still succeed.
        let mut config = fixed_config(120, 3, 5);
        config.initial_latency_guess_ms = 2.0;
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let p1 = run_phase1(&mut platform, &config).unwrap();
        let out = run_pair(
            &mut platform,
            &config,
            &p1,
            FreqMhz(1410),
            FreqMhz(705),
            2.0,
        )
        .unwrap();
        let r = out.run().expect("completed");
        assert!(r.retries >= 1, "no retry recorded");
        assert!(r.final_bound_ms >= 20.0, "bound {}", r.final_bound_ms);
        for &m in &r.latencies_ms {
            assert!((m - 120.0).abs() < 2.0, "measured {m}");
        }
    }

    #[test]
    fn power_limited_pair_is_skipped() {
        let mut config = fixed_config(5, 5, 50);
        // TDP that only sustains ~900 MHz: locking 1410 trips the power cap.
        config.spec.thermal.tdp_w = config.spec.power.busy_power(900.0);
        let out = run(&config, 705, 1410);
        assert!(matches!(out, PairOutcome::PowerLimited { .. }));
    }

    #[test]
    fn invalid_pair_is_skipped_without_measuring() {
        let config = fixed_config(5, 5, 50);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let p1 = run_phase1(&mut platform, &config).unwrap();
        // Forge an empty valid list.
        let p1_forged = Phase1Result {
            freqs: p1.freqs.clone(),
            valid_pairs: vec![],
            skipped_pairs: p1.valid_pairs.clone(),
        };
        let out = run_pair(
            &mut platform,
            &config,
            &p1_forged,
            FreqMhz(705),
            FreqMhz(1410),
            10.0,
        )
        .unwrap();
        assert!(matches!(out, PairOutcome::SkippedIndistinguishable));
    }

    #[test]
    fn thermal_event_discards_and_backs_off() {
        // Aggressive thermals: the device heats past the throttle threshold
        // during measurement, so the 5-pass poll must fire at least once.
        let mut config = fixed_config(8, 10, 20);
        config.spec.thermal.tau_s = 0.5;
        config.spec.thermal.r_th = 0.16;
        config.spec.thermal.throttle_temp_c = 66.0; // busy SS at 1410 is ~80C
        config.spec.thermal.release_temp_c = 60.0;
        config.spec.thermal.throttle_cap_mhz = 1410.0; // cap high: reasons
                                                       // fire, records stay clean
        let out = run(&config, 705, 1410);
        let r = out.run().expect("completed");
        assert!(r.thermal_events >= 1, "no thermal event observed");
    }
}
