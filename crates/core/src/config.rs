//! Campaign configuration: every knob of the LATEST tool (Sec. VI) plus the
//! simulation-fidelity controls.
//!
//! Mirrors the CLI of the paper's tool: the mandatory benchmarked-frequency
//! list, the device index, the RSE threshold (default 5 %), and the
//! minimum/maximum measurement counts — plus the methodology constants of
//! Sec. V (delay period, confirmation window, detection band width) that the
//! paper fixes in prose.

use latest_gpu_sim::devices::DeviceSpec;
use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::sm::WorkloadParams;
use latest_sim_clock::SimDuration;

use crate::state::FreqState;

/// Full configuration of one measurement campaign on one device.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The device to benchmark.
    pub spec: DeviceSpec,
    /// Device index (for output naming; multi-GPU campaigns create one
    /// config per unit).
    pub device_index: usize,
    /// Hostname used in output file names.
    pub hostname: String,
    /// Frequencies to benchmark (the tool's mandatory argument). Must be
    /// ladder values; all ordered pairs of distinct entries are candidates.
    pub frequencies: Vec<FreqMhz>,
    /// Memory (DRAM) frequencies to benchmark. Empty = core-only campaign
    /// (the original single-domain model, memory clock at the device
    /// default). Non-empty = the campaign sweeps the full core × memory
    /// state plane; entries must be memory-ladder values.
    pub mem_frequencies: Vec<FreqMhz>,
    /// Master seed for the simulation substrate.
    pub seed: u64,

    // --- stopping rule (Sec. VI) ---
    /// RSE threshold below which a pair's measurement loop stops (0.05).
    pub rse_threshold: f64,
    /// Measurements to collect before RSE checks begin.
    pub min_measurements: usize,
    /// Hard cap on measurements per pair.
    pub max_measurements: usize,
    /// RSE is evaluated every this many passes (25 in the paper).
    pub rse_check_every: usize,
    /// Throttle reasons are polled every this many passes (5).
    pub throttle_check_every: usize,
    /// Measurements discarded after a thermal event (5).
    pub thermal_discard: usize,
    /// Cool-down pause after a thermal event (10 s).
    pub thermal_backoff: SimDuration,
    /// Consecutive thermal discards tolerated with no net progress before
    /// the controller stops discarding and keeps measurements. On a device
    /// whose busy steady-state sits above the throttle threshold, every
    /// poll window re-trips the thermal event; discarding each window's
    /// measurements would livelock the pair. Past this limit the data is
    /// kept — per-pass phase-3 evaluation remains the quality gate for
    /// measurements taken under a clamped clock.
    pub thermal_discard_limit: usize,

    // --- methodology constants (Sec. V) ---
    /// Iterations executed at the initial frequency before the change call
    /// (the *delay period*; "several hundred").
    pub delay_iterations: u32,
    /// Iterations after the detected transition used to confirm the target
    /// mean ("several hundred up to a thousand").
    pub confirm_iterations: u32,
    /// Width multiplier of the detection band (2.0 = the paper's 2σ).
    pub sigma_k: f64,
    /// Confidence level for every interval/test (0.95).
    pub confidence: f64,
    /// Relative tolerance for the `meanDiff < tol` acceptance in Algorithm 2
    /// (fraction of the target mean).
    pub mean_tolerance_rel: f64,
    /// Upper bound on phase-2/3 retries per measurement before the pair
    /// errors out.
    pub max_retries: usize,
    /// Safety factor on the probed switching-latency upper bound when sizing
    /// the benchmark kernel ("tenfold the longest switching latency").
    pub probe_safety_factor: f64,
    /// Fallback upper bound (ms) used before any probe data exists.
    pub initial_latency_guess_ms: f64,

    // --- phase 1 ---
    /// Kernels per frequency in phase 1 (first ones absorb wake-up).
    pub phase1_kernels: usize,
    /// Iterations per phase-1 kernel.
    pub phase1_iters: u32,
    /// Minimum busy time under a frequency before its characterisation
    /// kernel runs. Must exceed the slowest plausible transition *into*
    /// that frequency, or the "last kernel" statistics are contaminated
    /// with old-frequency iterations (Sec. V wake-up bullet: "keep the
    /// accelerator busy for a few seconds").
    pub phase1_settle: SimDuration,

    // --- workload & fidelity ---
    /// The microbenchmark workload.
    pub workload: WorkloadParams,
    /// SM record streams to simulate per kernel (`None` = all SMs,
    /// hardware-faithful but slower; the default 8 is statistically
    /// equivalent because all SMs share one clock domain).
    pub simulated_sms: Option<u32>,
}

impl CampaignConfig {
    /// Start building a config for `spec`.
    pub fn builder(spec: DeviceSpec) -> CampaignConfigBuilder {
        CampaignConfigBuilder::new(spec)
    }

    /// All ordered pairs (init != target) of the configured frequencies.
    pub fn ordered_pairs(&self) -> Vec<(FreqMhz, FreqMhz)> {
        let mut pairs = Vec::new();
        for &a in &self.frequencies {
            for &b in &self.frequencies {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// The campaign's clock states: the configured core frequencies when
    /// `mem_frequencies` is empty (core-only, memory at the device
    /// default), otherwise the full core × memory cross product in
    /// core-major order.
    pub fn states(&self) -> Vec<FreqState> {
        if self.mem_frequencies.is_empty() {
            self.frequencies
                .iter()
                .map(|&f| FreqState::core_only(f))
                .collect()
        } else {
            let mut states =
                Vec::with_capacity(self.frequencies.len() * self.mem_frequencies.len());
            for &core in &self.frequencies {
                for &mem in &self.mem_frequencies {
                    states.push(FreqState::with_mem(core, mem));
                }
            }
            states
        }
    }

    /// All ordered pairs (init != target) of the campaign's clock states.
    /// For a core-only campaign this is [`Self::ordered_pairs`] lifted into
    /// states; for a 2-D campaign it includes core-only, memory-only and
    /// simultaneous transitions as distinct pairs.
    pub fn ordered_state_pairs(&self) -> Vec<(FreqState, FreqState)> {
        let states = self.states();
        let mut pairs = Vec::new();
        for &a in &states {
            for &b in &states {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Expected duration of one iteration at `freq` (ns, noise-free).
    pub fn expected_iter_ns(&self, freq: FreqMhz) -> f64 {
        self.workload.expected_iter_ns(freq.as_f64())
    }

    /// Expected duration of one iteration in `state` (ns, noise-free):
    /// the memory-stall portion of the workload is rescaled by the state's
    /// memory clock when one is set.
    pub fn expected_iter_ns_state(&self, state: FreqState) -> f64 {
        match state.mem {
            None => self.workload.expected_iter_ns(state.core.as_f64()),
            Some(mem) => self.workload.expected_iter_ns_mem(
                state.core.as_f64(),
                mem.as_f64(),
                self.spec.mem_freq_mhz as f64,
            ),
        }
    }

    /// Derived per-pair seed, stable across runs and independent of pair
    /// execution order (this is what makes the rayon-parallel campaign
    /// bitwise equal to a sequential one).
    pub fn pair_seed(&self, init: FreqMhz, target: FreqMhz) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((init.0 as u64) << 32) | target.0 as u64)
    }

    /// Per-pair seed over clock states. Core-only pairs reduce to the exact
    /// legacy [`Self::pair_seed`] formula (bitwise-identical campaigns);
    /// states with a memory clock fold an independently mixed hash of the
    /// memory pair into the same stream, keeping distinct state pairs
    /// collision-free.
    pub fn state_pair_seed(&self, init: FreqState, target: FreqState) -> u64 {
        let base = self.pair_seed(init.core, target.core);
        if init.mem.is_none() && target.mem.is_none() {
            return base;
        }
        // `+ 1` keeps `Some(FreqMhz(0))` distinct from `None`.
        let mi = init.mem.map(|m| m.0 as u64 + 1).unwrap_or(0);
        let mt = target.mem.map(|m| m.0 as u64 + 1).unwrap_or(0);
        base ^ mix64((mi << 32) | mt)
    }
}

/// A 64-bit finaliser (splitmix64's): full avalanche, zero-free for
/// non-zero inputs in practice — used to fold the memory pair into the
/// per-pair seed without disturbing the legacy core-only stream.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Builder for [`CampaignConfig`] with the paper's defaults.
#[derive(Clone, Debug)]
pub struct CampaignConfigBuilder {
    config: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Defaults per Secs. V–VI.
    pub fn new(spec: DeviceSpec) -> Self {
        CampaignConfigBuilder {
            config: CampaignConfig {
                spec,
                device_index: 0,
                hostname: "simnode".to_string(),
                frequencies: Vec::new(),
                mem_frequencies: Vec::new(),
                seed: 0,
                rse_threshold: 0.05,
                min_measurements: 25,
                max_measurements: 150,
                rse_check_every: 25,
                throttle_check_every: 5,
                thermal_discard: 5,
                thermal_backoff: SimDuration::from_secs(10),
                thermal_discard_limit: 3,
                delay_iterations: 300,
                confirm_iterations: 300,
                sigma_k: 2.0,
                confidence: 0.95,
                // Algorithm 2's `tol`, as a fraction of the target mean.
                // Tight enough to reject detections that fire a few ms
                // early on near-adjacent pairs (a 2 ms-early hit leaves
                // ~0.3 % of init-speed iterations in the confirm window),
                // loose enough for honest passes (shift ~stderr ≈ 0.06 %).
                mean_tolerance_rel: 0.003,
                max_retries: 8,
                probe_safety_factor: 10.0,
                initial_latency_guess_ms: 50.0,
                phase1_kernels: 3,
                phase1_iters: 800,
                phase1_settle: SimDuration::from_millis(1_500),
                workload: WorkloadParams::default_micro(),
                simulated_sms: Some(8),
            },
        }
    }

    /// Set the benchmarked frequencies (MHz).
    pub fn frequencies_mhz(mut self, mhz: &[u32]) -> Self {
        self.config.frequencies = mhz.iter().map(|&m| FreqMhz(m)).collect();
        self
    }

    /// Set the benchmarked frequencies from ladder values.
    pub fn frequencies(mut self, freqs: Vec<FreqMhz>) -> Self {
        self.config.frequencies = freqs;
        self
    }

    /// Pick an evenly spaced `n`-frequency subset of the device ladder
    /// (the paper's heatmaps use such subsets).
    pub fn frequency_subset(mut self, n: usize) -> Self {
        self.config.frequencies = self.config.spec.ladder.subset(n);
        self
    }

    /// Set the benchmarked memory frequencies (MHz). Empty (the default)
    /// keeps the campaign core-only.
    pub fn mem_frequencies_mhz(mut self, mhz: &[u32]) -> Self {
        self.config.mem_frequencies = mhz.iter().map(|&m| FreqMhz(m)).collect();
        self
    }

    /// Set the benchmarked memory frequencies from ladder values.
    pub fn mem_frequencies(mut self, freqs: Vec<FreqMhz>) -> Self {
        self.config.mem_frequencies = freqs;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Device index (output naming).
    pub fn device_index(mut self, index: usize) -> Self {
        self.config.device_index = index;
        self
    }

    /// Hostname (output naming).
    pub fn hostname(mut self, hostname: impl Into<String>) -> Self {
        self.config.hostname = hostname.into();
        self
    }

    /// RSE stopping threshold.
    pub fn rse_threshold(mut self, rse: f64) -> Self {
        self.config.rse_threshold = rse;
        self
    }

    /// Minimum and maximum measurements per pair.
    pub fn measurements(mut self, min: usize, max: usize) -> Self {
        self.config.min_measurements = min;
        self.config.max_measurements = max;
        self
    }

    /// Number of simulated SM record streams (`None` = all).
    pub fn simulated_sms(mut self, n: Option<u32>) -> Self {
        self.config.simulated_sms = n;
        self
    }

    /// Delay-period length in iterations.
    pub fn delay_iterations(mut self, n: u32) -> Self {
        self.config.delay_iterations = n;
        self
    }

    /// Confirmation-window length in iterations.
    pub fn confirm_iterations(mut self, n: u32) -> Self {
        self.config.confirm_iterations = n;
        self
    }

    /// Detection band width multiplier (2.0 = paper).
    pub fn sigma_k(mut self, k: f64) -> Self {
        self.config.sigma_k = k;
        self
    }

    /// Confidence level for every interval/test (0.95 = paper).
    pub fn confidence(mut self, c: f64) -> Self {
        self.config.confidence = c;
        self
    }

    /// Replace the workload.
    pub fn workload(mut self, w: WorkloadParams) -> Self {
        self.config.workload = w;
        self
    }

    /// Validate and finish, enumerating every violated constraint (the
    /// same [`SpecError`](crate::spec::SpecError) vocabulary the
    /// declarative [`CampaignSpec`](crate::spec::CampaignSpec) layer uses).
    pub fn try_build(self) -> Result<CampaignConfig, crate::spec::SpecErrors> {
        use crate::spec::SpecError;
        let c = &self.config;
        let mut errors = Vec::new();
        if !(c.rse_threshold > 0.0 && c.rse_threshold < 1.0) {
            errors.push(SpecError::RseThresholdOutOfRange {
                value: c.rse_threshold,
            });
        }
        if c.min_measurements == 0 {
            errors.push(SpecError::ZeroMinMeasurements);
        } else if c.min_measurements > c.max_measurements {
            errors.push(SpecError::MeasurementBoundsInverted {
                min: c.min_measurements,
                max: c.max_measurements,
            });
        }
        if c.simulated_sms == Some(0) {
            errors.push(SpecError::ZeroSimulatedSms);
        }
        if c.sigma_k <= 0.0 || c.sigma_k.is_nan() {
            errors.push(SpecError::SigmaNonPositive { value: c.sigma_k });
        }
        if !(c.confidence > 0.0 && c.confidence < 1.0) {
            errors.push(SpecError::ConfidenceOutOfRange {
                value: c.confidence,
            });
        }
        crate::spec::SpecErrors::collect(errors)?;
        Ok(self.config)
    }

    /// Finish. Panics on an obviously broken configuration (the paper tool
    /// likewise validates its CLI arguments up front); [`Self::try_build`]
    /// is the non-panicking variant.
    pub fn build(self) -> CampaignConfig {
        match self.try_build() {
            Ok(config) => config,
            Err(errors) => panic!("invalid campaign configuration: {errors}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;

    #[test]
    fn defaults_match_paper() {
        let c = CampaignConfig::builder(devices::a100_sxm4()).build();
        assert_eq!(c.rse_threshold, 0.05);
        assert_eq!(c.rse_check_every, 25);
        assert_eq!(c.throttle_check_every, 5);
        assert_eq!(c.thermal_discard, 5);
        assert_eq!(c.thermal_backoff, SimDuration::from_secs(10));
        assert_eq!(c.sigma_k, 2.0);
        assert_eq!(c.probe_safety_factor, 10.0);
    }

    #[test]
    fn ordered_pairs_excludes_diagonal() {
        let c = CampaignConfig::builder(devices::a100_sxm4())
            .frequencies_mhz(&[705, 1095, 1410])
            .build();
        let pairs = c.ordered_pairs();
        assert_eq!(pairs.len(), 6);
        assert!(!pairs.iter().any(|(a, b)| a == b));
    }

    #[test]
    fn frequency_subset_spans_ladder() {
        let c = CampaignConfig::builder(devices::gh200())
            .frequency_subset(18)
            .build();
        assert_eq!(c.frequencies.len(), 18);
        assert_eq!(c.frequencies[0], FreqMhz(345));
        assert_eq!(*c.frequencies.last().unwrap(), FreqMhz(1980));
    }

    #[test]
    fn pair_seed_is_order_sensitive_and_stable() {
        let c = CampaignConfig::builder(devices::a100_sxm4())
            .seed(5)
            .build();
        let a = c.pair_seed(FreqMhz(705), FreqMhz(1410));
        let b = c.pair_seed(FreqMhz(1410), FreqMhz(705));
        assert_ne!(a, b);
        assert_eq!(a, c.pair_seed(FreqMhz(705), FreqMhz(1410)));
    }

    #[test]
    fn states_default_to_core_only_and_cross_with_memory() {
        let core_only = CampaignConfig::builder(devices::a100_sxm4())
            .frequencies_mhz(&[705, 1410])
            .build();
        assert_eq!(
            core_only.states(),
            vec![
                FreqState::core_only(FreqMhz(705)),
                FreqState::core_only(FreqMhz(1410)),
            ]
        );
        assert_eq!(core_only.ordered_state_pairs().len(), 2);

        let plane = CampaignConfig::builder(devices::a100_sxm4())
            .frequencies_mhz(&[705, 1410])
            .mem_frequencies_mhz(&[810, 1215])
            .build();
        assert_eq!(plane.states().len(), 4);
        // 4 states → 12 ordered pairs: 4 core-only, 4 memory-only,
        // 4 simultaneous.
        let pairs = plane.ordered_state_pairs();
        assert_eq!(pairs.len(), 12);
        use crate::state::PairKind;
        let count = |k: PairKind| {
            pairs
                .iter()
                .filter(|(a, b)| a.kind_to(b) == Some(k))
                .count()
        };
        assert_eq!(count(PairKind::Core), 4);
        assert_eq!(count(PairKind::Memory), 4);
        assert_eq!(count(PairKind::Simultaneous), 4);
    }

    #[test]
    fn state_pair_seed_reduces_to_legacy_formula_for_core_only() {
        let c = CampaignConfig::builder(devices::a100_sxm4())
            .seed(9)
            .build();
        let legacy = c.pair_seed(FreqMhz(705), FreqMhz(1410));
        assert_eq!(
            c.state_pair_seed(
                FreqState::core_only(FreqMhz(705)),
                FreqState::core_only(FreqMhz(1410)),
            ),
            legacy
        );
        // Adding a memory dimension perturbs the seed, and distinct memory
        // pairs over the same core pair stay distinct.
        let a = c.state_pair_seed(
            FreqState::with_mem(FreqMhz(705), FreqMhz(810)),
            FreqState::with_mem(FreqMhz(1410), FreqMhz(810)),
        );
        let b = c.state_pair_seed(
            FreqState::with_mem(FreqMhz(705), FreqMhz(1215)),
            FreqState::with_mem(FreqMhz(1410), FreqMhz(1215)),
        );
        assert_ne!(a, legacy);
        assert_ne!(a, b);
    }

    #[test]
    fn expected_iter_ns_state_scales_memory_stall() {
        use latest_gpu_sim::sm::WorkloadParams;
        let c = CampaignConfig::builder(devices::a100_sxm4())
            .workload(WorkloadParams::memory_bound())
            .build();
        let core = FreqMhz(1410);
        let full = c.expected_iter_ns_state(FreqState::with_mem(core, FreqMhz(1215)));
        let half = c.expected_iter_ns_state(FreqState::with_mem(core, FreqMhz(607)));
        assert!(half > full * 1.4, "half-mem-clock {half} vs full {full}");
        // Core-only states fall back to the legacy single-domain estimate.
        assert_eq!(
            c.expected_iter_ns_state(FreqState::core_only(core)),
            c.expected_iter_ns(core)
        );
    }

    #[test]
    #[should_panic]
    fn build_rejects_inverted_measurement_bounds() {
        CampaignConfig::builder(devices::a100_sxm4())
            .measurements(100, 10)
            .build();
    }
}
