//! Phase 1 — warm-up and per-frequency characterisation (Algorithm 1).
//!
//! For every benchmarked frequency: lock the clock, run several kernels (the
//! early ones absorb wake-up and the clock transition; only the *last*
//! kernel's iterations are kept), and pool mean/σ across all SM record
//! streams. Then test every ordered pair with the confidence interval of the
//! difference of means: pairs whose interval contains zero are *excluded* —
//! their runtimes cannot be told apart, so the end of a transition between
//! them is undetectable.
//!
//! Erratum note: Algorithm 1 line 10 as printed (`lbDiff > 0 and
//! hbDiff < 0`) is unsatisfiable; the text's intent ("pairs where the null
//! hypothesis could not be rejected are excluded") is implemented: a pair is
//! valid iff the interval excludes zero.

use std::collections::BTreeMap;

use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::KernelConfig;
use latest_stats::{diff_confidence_interval, Summary};

use crate::config::CampaignConfig;
use crate::error::{CoreError, CoreResult};
use crate::platform::Platform;
use crate::state::FreqState;

/// Per-state characterisation from the last warm kernel.
///
/// `freq` is a [`FreqState`]: a bare core frequency for single-domain
/// campaigns (serialised as the legacy bare number) or a full
/// core + memory point for 2-D campaigns.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct FreqCharacterization {
    /// The clock state characterised.
    pub freq: FreqState,
    /// Pooled iteration-duration summary (ns).
    pub iter_ns: Summary,
}

/// Output of phase 1.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
#[serde(from = "Phase1ResultRepr", into = "Phase1ResultRepr")]
pub struct Phase1Result {
    /// Characterisation per clock state.
    pub freqs: BTreeMap<FreqState, FreqCharacterization>,
    /// Ordered state pairs whose difference interval excludes zero.
    pub valid_pairs: Vec<(FreqState, FreqState)>,
    /// Ordered state pairs excluded as statistically indistinguishable.
    pub skipped_pairs: Vec<(FreqState, FreqState)>,
}

/// Serialised shape of [`Phase1Result`]: the frequency map flattens into a
/// sequence (each characterisation carries its own frequency), which keeps
/// the JSON free of non-string map keys.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
struct Phase1ResultRepr {
    freqs: Vec<FreqCharacterization>,
    valid_pairs: Vec<(FreqState, FreqState)>,
    skipped_pairs: Vec<(FreqState, FreqState)>,
}

impl From<Phase1Result> for Phase1ResultRepr {
    fn from(r: Phase1Result) -> Self {
        Phase1ResultRepr {
            freqs: r.freqs.into_values().collect(),
            valid_pairs: r.valid_pairs,
            skipped_pairs: r.skipped_pairs,
        }
    }
}

impl From<Phase1ResultRepr> for Phase1Result {
    fn from(r: Phase1ResultRepr) -> Self {
        Phase1Result {
            freqs: r.freqs.into_iter().map(|c| (c.freq, c)).collect(),
            valid_pairs: r.valid_pairs,
            skipped_pairs: r.skipped_pairs,
        }
    }
}

impl Phase1Result {
    /// The characterisation of one clock state (a bare [`FreqMhz`]
    /// converts to the core-only state).
    pub fn of(&self, state: impl Into<FreqState>) -> Option<&FreqCharacterization> {
        self.freqs.get(&state.into())
    }

    /// Whether a state pair survived validation.
    pub fn is_valid(&self, init: impl Into<FreqState>, target: impl Into<FreqState>) -> bool {
        self.valid_pairs.contains(&(init.into(), target.into()))
    }
}

/// Run phase 1 on `platform` for every configured frequency.
pub fn run_phase1<P: Platform>(
    platform: &mut P,
    config: &CampaignConfig,
) -> CoreResult<Phase1Result> {
    if config.frequencies.len() < 2 {
        return Err(CoreError::NotEnoughFrequencies {
            got: config.frequencies.len(),
        });
    }
    for &f in &config.frequencies {
        if !config.spec.ladder.contains(f) {
            return Err(CoreError::UnknownFrequency { freq: f });
        }
    }
    for &m in &config.mem_frequencies {
        if !config.spec.mem_ladder.contains(m) {
            return Err(CoreError::UnknownMemFrequency { freq: m });
        }
    }

    let mut freqs = BTreeMap::new();
    for state in config.states() {
        let ch = characterize_state(platform, config, state)?;
        freqs.insert(state, ch);
    }

    // Pairwise validation (Algorithm 1, lines 7-11, with the erratum fixed).
    let mut valid_pairs = Vec::new();
    let mut skipped_pairs = Vec::new();
    for (init, target) in config.ordered_state_pairs() {
        let a = freqs[&init].iter_ns;
        let b = freqs[&target].iter_ns;
        let distinguishable = diff_confidence_interval(&a, &b, config.confidence)
            .map(|ci| !ci.contains_zero())
            .unwrap_or(false);
        if distinguishable {
            valid_pairs.push((init, target));
        } else {
            skipped_pairs.push((init, target));
        }
    }

    Ok(Phase1Result {
        freqs,
        valid_pairs,
        skipped_pairs,
    })
}

/// Characterise one core-only frequency (legacy single-domain entry
/// point; see [`characterize_state`]).
pub fn characterize_frequency<P: Platform>(
    platform: &mut P,
    config: &CampaignConfig,
    freq: FreqMhz,
) -> CoreResult<FreqCharacterization> {
    characterize_state(platform, config, FreqState::core_only(freq))
}

/// Characterise one clock state: lock the memory clock (when the state has
/// one), lock the core clock, run `phase1_kernels` kernels, keep only the
/// last kernel's pooled statistics.
pub fn characterize_state<P: Platform>(
    platform: &mut P,
    config: &CampaignConfig,
    state: FreqState,
) -> CoreResult<FreqCharacterization> {
    if let Some(mem) = state.mem {
        crate::platform::require_memory_clocks(platform)?.set_locked_mem_clocks(mem)?;
    }
    platform.set_locked_clocks(state.core)?;
    let kernel_cfg = KernelConfig {
        iters_per_sm: config.phase1_iters,
        workload: config.workload,
        simulated_sms: config.simulated_sms,
    };

    // Warm-up: keep the device busy until the settle budget has elapsed
    // (covers wake-up *and* the transition into `freq`, which can itself
    // take hundreds of ms on some targets), then at least the configured
    // kernel count. Only the final kernel is measured.
    let settle_from = platform.now();
    let mut warm_kernels = 0usize;
    while warm_kernels + 1 < config.phase1_kernels.max(2)
        || platform.now().saturating_since(settle_from) < config.phase1_settle
    {
        let id = platform.launch_benchmark(kernel_cfg)?;
        platform.synchronize();
        let _ = platform.collect_records(id)?; // warm-up data discarded
        warm_kernels += 1;
        if warm_kernels > 10_000 {
            break; // defensive bound; unreachable with sane configs
        }
    }
    let id = platform.launch_benchmark(kernel_cfg)?;
    platform.synchronize();
    let records = platform.collect_records(id)?;

    // Pool all SM streams, dropping the first few iterations of each (they
    // may straddle a residual ramp after a cold start).
    let mut durations: Vec<f64> = Vec::new();
    for sm in &records {
        durations.extend(sm.iter().skip(8).map(|r| r.duration().as_nanos() as f64));
    }

    // Robust two-pass statistics: rare device-side disturbances (ECC scrubs,
    // context timeslices) produce isolated multi-x iterations that would
    // inflate the standard deviation — and with it the 2σ detection band —
    // by several times.
    let stats = latest_stats::robust_stats(&durations, 4.0, 2);
    Ok(FreqCharacterization {
        freq: state,
        iter_ns: stats.summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::platform::SimPlatform;
    use latest_gpu_sim::devices;

    fn quick_config(freqs: &[u32]) -> CampaignConfig {
        CampaignConfig::builder(devices::a100_sxm4())
            .frequencies_mhz(freqs)
            .seed(42)
            .build()
    }

    #[test]
    fn characterization_tracks_frequency() {
        let config = quick_config(&[705, 1410]);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let r = run_phase1(&mut platform, &config).unwrap();
        let slow = r.of(FreqMhz(705)).unwrap().iter_ns;
        let fast = r.of(FreqMhz(1410)).unwrap().iter_ns;
        // 100k cycles: ~141.8 us at 705 MHz, ~70.9 us at 1410 MHz.
        assert!(
            (slow.mean - 141_844.0).abs() < 1_500.0,
            "slow {}",
            slow.mean
        );
        assert!((fast.mean - 70_922.0).abs() < 1_000.0, "fast {}", fast.mean);
        assert!(slow.n > 1_000);
    }

    #[test]
    fn distant_pairs_are_valid() {
        let config = quick_config(&[705, 1095, 1410]);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let r = run_phase1(&mut platform, &config).unwrap();
        assert_eq!(r.valid_pairs.len(), 6);
        assert!(r.skipped_pairs.is_empty());
        assert!(r.is_valid(FreqMhz(705), FreqMhz(1410)));
    }

    #[test]
    fn indistinguishable_pairs_are_skipped() {
        // Make the workload noise huge so adjacent ladder steps overlap.
        let mut config = CampaignConfig::builder(devices::a100_sxm4())
            .frequencies_mhz(&[1395, 1410])
            .seed(7)
            .build();
        config.workload.noise_rel_sigma = 0.5;
        config.phase1_iters = 40; // few samples, wide intervals
                                  // At 95 % confidence the validation CI has a 5 % type-I rate by
                                  // construction, so with *any* fixed seed this assertion is a coin
                                  // the seed either wins or loses. 99.9 % keeps the skip mechanism
                                  // under test while making the false-reject odds negligible.
        config.confidence = 0.999;
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let r = run_phase1(&mut platform, &config).unwrap();
        assert!(
            !r.skipped_pairs.is_empty(),
            "adjacent noisy pair should be indistinguishable"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let config = quick_config(&[705]);
        let mut platform = SimPlatform::new(config.spec.clone(), 1).unwrap();
        assert!(matches!(
            run_phase1(&mut platform, &config),
            Err(CoreError::NotEnoughFrequencies { got: 1 })
        ));

        let config = quick_config(&[705, 1000]); // 1000 not on ladder
        let mut platform = SimPlatform::new(config.spec.clone(), 1).unwrap();
        assert!(matches!(
            run_phase1(&mut platform, &config),
            Err(CoreError::UnknownFrequency { .. })
        ));
    }
}
