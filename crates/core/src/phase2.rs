//! Phase 2 — the switching-latency benchmark (Algorithm 2, lines 1–8).
//!
//! One measurement pass:
//!
//! 1. synchronise host and device timers (IEEE 1588),
//! 2. lock the initial frequency and run a short warm-up workload so the
//!    device is hot, awake and settled at the initial clock,
//! 3. launch the benchmark kernel (long enough to cover delay period +
//!    probed latency bound + confirmation window),
//! 4. sleep through the delay period,
//! 5. stamp `t_s` (host time mapped onto the device timeline) and issue the
//!    frequency-change call,
//! 6. synchronise and copy the per-SM records back.

use latest_clock_sync::{SyncConfig, SyncResult};
use latest_cuda_sim::TimerData;
use latest_gpu_sim::KernelConfig;
use latest_sim_clock::{SimDuration, SimTime};
use latest_stats::{SigmaBand, Summary};

use crate::config::CampaignConfig;
use crate::error::CoreResult;
use crate::platform::{require_memory_clocks, Platform};
use crate::state::FreqState;

/// Everything phase 3 needs from one benchmark pass.
#[derive(Clone, Debug)]
pub struct SwitchCapture {
    /// Initial clock state of the pair measured.
    pub init: FreqState,
    /// Target clock state.
    pub target: FreqState,
    /// `t_s` on the device timeline: host clock at the change call, mapped
    /// through the sync offset (Algorithm 2 line 6).
    pub ts_device: SimTime,
    /// Per-SM iteration records.
    pub records: TimerData,
    /// The sync used for the mapping (error bound travels with the data).
    pub sync: SyncResult,
    /// Iterations the kernel was sized to.
    pub kernel_iters: u32,
}

/// Size the benchmark kernel: delay period + latency bound (with safety
/// factor) + confirmation window, in iterations at the *slower* of the two
/// states (conservative — for core-only pairs this is the lower core
/// frequency, exactly the legacy sizing).
pub fn kernel_iterations(
    config: &CampaignConfig,
    init: impl Into<FreqState>,
    target: impl Into<FreqState>,
    latency_bound_ms: f64,
) -> u32 {
    let iter_ns = config
        .expected_iter_ns_state(init.into())
        .max(config.expected_iter_ns_state(target.into()));
    let latency_iters =
        (latency_bound_ms * 1e6 * config.probe_safety_factor / iter_ns).ceil() as u32;
    config.delay_iterations + latency_iters + config.confirm_iterations
}

/// Run one benchmark pass for `init → target`.
///
/// `init_stats` is the phase-1 characterisation of the *initial* frequency:
/// the warm-up loop runs until the device demonstrably executes at it (the
/// transition into the initial frequency can itself take hundreds of ms on
/// slow targets, and measuring before it lands would corrupt `t_s`).
///
/// `latency_bound_ms` is the current upper-bound estimate for this pair's
/// switching latency (from the probe phase, or grown by the retry logic when
/// the capture window proved too short).
pub fn run_phase2<P: Platform>(
    platform: &mut P,
    config: &CampaignConfig,
    init: impl Into<FreqState>,
    target: impl Into<FreqState>,
    init_stats: &Summary,
    latency_bound_ms: f64,
) -> CoreResult<SwitchCapture> {
    let init: FreqState = init.into();
    let target: FreqState = target.into();
    // 1. Timer synchronisation.
    let sync = platform.synchronize_timers(&SyncConfig::default());

    // 2. Initial clock state + warm-up workload, verified against the init
    //    characterisation: keep running until the tail of a warm kernel
    //    sits inside the init band.
    if let Some(mem) = init.mem {
        require_memory_clocks(platform)?.set_locked_mem_clocks(mem)?;
    }
    platform.set_locked_clocks(init.core)?;
    let warm_cfg = KernelConfig {
        iters_per_sm: config.delay_iterations.max(200),
        workload: config.workload,
        simulated_sms: Some(1),
    };
    let init_band = SigmaBand::with_k(init_stats, config.sigma_k);
    const MAX_WARM_KERNELS: usize = 64;
    for _ in 0..MAX_WARM_KERNELS {
        let warm_id = platform.launch_benchmark(warm_cfg)?;
        platform.synchronize();
        let records = platform.collect_records(warm_id)?;
        let tail = &records[0][records[0].len().saturating_sub(32)..];
        let in_band = tail
            .iter()
            .filter(|r| init_band.contains(r.duration().as_nanos() as f64))
            .count();
        if in_band * 10 >= tail.len() * 9 {
            break; // >= 90 % of the tail executes at the initial frequency
        }
    }

    // 3. The benchmark kernel.
    let iters = kernel_iterations(config, init, target, latency_bound_ms);
    let bench_cfg = KernelConfig {
        iters_per_sm: iters,
        workload: config.workload,
        simulated_sms: config.simulated_sms,
    };
    let bench_id = platform.launch_benchmark(bench_cfg)?;

    // 4. Delay period: sleep while the kernel accumulates initial-state
    //    iterations.
    let delay_ns = config.delay_iterations as f64 * config.expected_iter_ns_state(init);
    platform.sleep(SimDuration::from_nanos(delay_ns as u64));

    // 5. t_s, then the frequency-change call(s): only the domains that
    //    actually change, core first — a simultaneous pair issues both
    //    driver calls back-to-back, and its latency is measured from the
    //    first call.
    let ts_host = platform.now();
    let ts_device = sync.host_to_device(ts_host);
    if target.core != init.core {
        platform.set_locked_clocks(target.core)?;
    }
    if target.mem != init.mem {
        if let Some(mem) = target.mem {
            require_memory_clocks(platform)?.set_locked_mem_clocks(mem)?;
        }
    }

    // 6. Wait for the kernel and fetch records.
    platform.synchronize();
    let records = platform.collect_records(bench_id)?;

    Ok(SwitchCapture {
        init,
        target,
        ts_device,
        records,
        sync,
        kernel_iters: iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::platform::SimPlatform;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::freq::FreqMhz;
    use latest_gpu_sim::transition::FixedTransition;
    use std::sync::Arc;

    fn fixed_latency_config(ms: u64) -> CampaignConfig {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(ms),
        });
        CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1410])
            .seed(13)
            .build()
    }

    #[test]
    fn kernel_sizing_covers_all_windows() {
        let config = fixed_latency_config(10);
        let n = kernel_iterations(&config, FreqMhz(1410), FreqMhz(705), 10.0);
        // delay 300 + bound (10 ms * 10 / 141.8 us = 706) + confirm 300.
        assert!(n >= 300 + 700 + 300, "n = {n}");
        assert!(n < 2_000, "n = {n} oversized");
    }

    /// Phase-1 characterisation for the fixture frequencies, as the real
    /// pipeline provides it.
    fn stats_for<P: Platform>(
        platform: &mut P,
        config: &CampaignConfig,
        freq: FreqMhz,
    ) -> latest_stats::Summary {
        crate::phase1::characterize_frequency(platform, config, freq)
            .unwrap()
            .iter_ns
    }

    #[test]
    fn capture_contains_both_regimes() {
        let config = fixed_latency_config(8);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let init_stats = stats_for(&mut platform, &config, FreqMhz(1410));
        let cap = run_phase2(
            &mut platform,
            &config,
            FreqMhz(1410),
            FreqMhz(705),
            &init_stats,
            10.0,
        )
        .unwrap();
        assert_eq!(cap.records.len(), 8);

        let fast_ns = config.expected_iter_ns(FreqMhz(1410));
        let slow_ns = config.expected_iter_ns(FreqMhz(705));
        let sm = &cap.records[0];
        let n_fast = sm
            .iter()
            .filter(|r| ((r.duration().as_nanos() as f64) - fast_ns).abs() < fast_ns * 0.05)
            .count();
        let n_slow = sm
            .iter()
            .filter(|r| ((r.duration().as_nanos() as f64) - slow_ns).abs() < slow_ns * 0.05)
            .count();
        assert!(n_fast > 100, "only {n_fast} initial-frequency iterations");
        assert!(n_slow > 100, "only {n_slow} target-frequency iterations");
    }

    #[test]
    fn ts_lands_after_delay_period_iterations() {
        let config = fixed_latency_config(8);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let init_stats = stats_for(&mut platform, &config, FreqMhz(1410));
        let cap = run_phase2(
            &mut platform,
            &config,
            FreqMhz(1410),
            FreqMhz(705),
            &init_stats,
            10.0,
        )
        .unwrap();
        let sm = &cap.records[0];
        let before_ts = sm.iter().filter(|r| r.start < cap.ts_device).count();
        // The delay period is 300 iterations; allow slack for launch overhead
        // and sync uncertainty.
        assert!(
            (250..=400).contains(&before_ts),
            "{before_ts} iterations before t_s"
        );
    }

    #[test]
    fn ground_truth_latency_within_capture_window() {
        let config = fixed_latency_config(12);
        let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
        let init_stats = stats_for(&mut platform, &config, FreqMhz(705));
        let _ = run_phase2(
            &mut platform,
            &config,
            FreqMhz(705),
            FreqMhz(1410),
            &init_stats,
            15.0,
        )
        .unwrap();
        let gt = platform.last_ground_truth().unwrap();
        assert_eq!(gt.to, FreqMhz(1410));
        // 12 ms fixed + sub-ms driver travel.
        let sl = gt.switching_latency().as_millis_f64();
        assert!((11.9..14.0).contains(&sl), "ground truth {sl} ms");
    }
}
