//! The end-to-end LATEST tool: phase 1 once, then every valid frequency
//! pair through phases 2–3 under the RSE controller, then per-pair analysis.
//!
//! Pairs run in parallel with rayon, each on a freshly instantiated
//! simulated platform seeded deterministically from `(campaign seed, pair)`.
//! On physical hardware the pairs share one GPU and must run sequentially;
//! parallelism here is a simulation-only speedup that preserves per-pair
//! semantics and bitwise reproducibility (results are independent of
//! scheduling order by construction).

use latest_cluster::AdaptiveConfig;
use latest_gpu_sim::freq::FreqMhz;
use rayon::prelude::*;

use crate::analysis::{analyze_pair, PairAnalysis};
use crate::config::CampaignConfig;
use crate::controller::{run_pair, PairOutcome};
use crate::error::CoreResult;
use crate::phase1::{run_phase1, Phase1Result};
use crate::platform::SimPlatform;
use crate::probe::{estimate_upper_bound, ProbeResult};

/// One pair's full result: measurements plus analysis.
#[derive(Clone, Debug)]
pub struct PairMeasurement {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// How the measurement loop ended.
    pub outcome: PairOutcome,
    /// Algorithm-3 analysis of the latencies (None unless completed).
    pub analysis: Option<PairAnalysis>,
}

impl PairMeasurement {
    /// The filtered (outlier-free) summary, when available.
    pub fn filtered_summary(&self) -> Option<latest_stats::Summary> {
        self.analysis.as_ref().map(|a| a.filtered)
    }

    /// Raw latencies (ms) when the pair completed.
    pub fn latencies_ms(&self) -> Option<&[f64]> {
        self.outcome.run().map(|r| r.latencies_ms.as_slice())
    }

    /// Whether the transition increases frequency.
    pub fn is_increase(&self) -> bool {
        self.target_mhz > self.init_mhz
    }
}

/// Result of a whole campaign on one device.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Device name measured.
    pub device_name: String,
    /// Device index.
    pub device_index: usize,
    /// Phase-1 characterisation.
    pub phase1: Phase1Result,
    /// Probe-phase result.
    pub probe: ProbeResult,
    /// All pair measurements, in `ordered_pairs` order.
    pub pairs: Vec<PairMeasurement>,
}

impl CampaignResult {
    /// All pair measurements.
    pub fn pairs(&self) -> &[PairMeasurement] {
        &self.pairs
    }

    /// Completed pairs only.
    pub fn completed(&self) -> impl Iterator<Item = &PairMeasurement> {
        self.pairs.iter().filter(|p| p.outcome.run().is_some())
    }

    /// Look up one pair.
    pub fn pair(&self, init: FreqMhz, target: FreqMhz) -> Option<&PairMeasurement> {
        self.pairs
            .iter()
            .find(|p| p.init_mhz == init.0 && p.target_mhz == target.0)
    }
}

/// The LATEST tool.
pub struct Latest {
    config: CampaignConfig,
    adaptive: AdaptiveConfig,
}

impl Latest {
    /// Build a tool instance from a campaign configuration.
    pub fn new(config: CampaignConfig) -> Self {
        Latest { config, adaptive: AdaptiveConfig::default() }
    }

    /// Override the Algorithm-3 parameters.
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Run the whole campaign.
    pub fn run(&self) -> CoreResult<CampaignResult> {
        let config = &self.config;

        // Phase 1 + probe on a dedicated platform.
        let mut p0 = SimPlatform::new(config.spec.clone(), config.seed)?;
        let phase1 = run_phase1(&mut p0, config)?;
        let probe = estimate_upper_bound(&mut p0, config, &phase1)?;

        // Every ordered pair, in parallel, each on its own platform.
        let pairs: CoreResult<Vec<PairMeasurement>> = config
            .ordered_pairs()
            .into_par_iter()
            .map(|(init, target)| {
                let seed = config.pair_seed(init, target);
                let mut platform = SimPlatform::new(config.spec.clone(), seed)?;
                let outcome =
                    run_pair(&mut platform, config, &phase1, init, target, probe.max_latency_ms)?;
                let analysis = outcome
                    .run()
                    .map(|r| analyze_pair(&r.latencies_ms, &self.adaptive));
                Ok(PairMeasurement {
                    init_mhz: init.0,
                    target_mhz: target.0,
                    outcome,
                    analysis,
                })
            })
            .collect();

        Ok(CampaignResult {
            device_name: config.spec.name.clone(),
            device_index: config.device_index,
            phase1,
            probe,
            pairs: pairs?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn small_campaign(seed: u64) -> CampaignConfig {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(9),
        });
        CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1095, 1410])
            .measurements(10, 25)
            .seed(seed)
            .build()
    }

    #[test]
    fn campaign_covers_all_ordered_pairs() {
        let result = Latest::new(small_campaign(3)).run().unwrap();
        assert_eq!(result.pairs().len(), 6);
        for p in result.completed() {
            let a = p.analysis.as_ref().unwrap();
            // Fixed 9 ms device: every filtered mean must sit near 9 ms
            // (plus driver travel and detection granularity).
            assert!(
                (8.8..11.0).contains(&a.filtered.mean),
                "{}->{}: mean {} ms",
                p.init_mhz,
                p.target_mhz,
                a.filtered.mean
            );
        }
        assert!(result.pair(FreqMhz(705), FreqMhz(1410)).is_some());
        assert!(result.pair(FreqMhz(705), FreqMhz(705)).is_none());
    }

    #[test]
    fn campaign_is_deterministic_across_runs() {
        let a = Latest::new(small_campaign(11)).run().unwrap();
        let b = Latest::new(small_campaign(11)).run().unwrap();
        for (pa, pb) in a.pairs().iter().zip(b.pairs()) {
            assert_eq!(pa.latencies_ms(), pb.latencies_ms());
        }
        // And a different seed gives different noise.
        let c = Latest::new(small_campaign(12)).run().unwrap();
        let same = a
            .pairs()
            .iter()
            .zip(c.pairs())
            .all(|(x, y)| x.latencies_ms() == y.latencies_ms());
        assert!(!same, "different seeds produced identical campaigns");
    }

    #[test]
    fn closed_loop_measured_matches_ground_truth() {
        let result = Latest::new(small_campaign(7)).run().unwrap();
        for p in result.completed() {
            let run = p.outcome.run().unwrap();
            for (&m, &g) in run.latencies_ms.iter().zip(&run.ground_truth_ms) {
                assert!(
                    (m - g).abs() < 0.6,
                    "{}->{}: measured {m} vs truth {g}",
                    p.init_mhz,
                    p.target_mhz
                );
            }
        }
    }
}
