//! Campaign results and the classic blocking entry point.
//!
//! [`CampaignResult`] is the serialisable record of one device's campaign:
//! phase-1 characterisation, the probe bound, and every pair's measurements
//! plus Algorithm-3 analysis. It doubles as the *checkpoint* format — a
//! partial result (some pairs [`PairOutcome::Cancelled`]) can be written to
//! JSON and handed back to
//! [`CampaignSession::resume_from`](crate::session::CampaignSession::resume_from),
//! which re-runs exactly the missing pairs and reproduces the uninterrupted
//! campaign bit for bit.
//!
//! [`Latest`] is the original one-call API, kept as a thin wrapper over
//! [`CampaignSession`] so downstream code
//! migrates incrementally.

use std::collections::HashMap;

use latest_cluster::AdaptiveConfig;

use crate::analysis::PairAnalysis;
use crate::config::CampaignConfig;
use crate::controller::PairOutcome;
use crate::error::CoreResult;
use crate::phase1::Phase1Result;
use crate::probe::ProbeResult;
use crate::session::{CampaignSession, ShardResult};
use crate::state::{FreqState, PairKind};

/// One pair's full result: measurements plus analysis.
#[derive(Clone, Debug)]
pub struct PairMeasurement {
    /// Initial frequency state.
    pub init: FreqState,
    /// Target frequency state.
    pub target: FreqState,
    /// How the measurement loop ended.
    pub outcome: PairOutcome,
    /// Algorithm-3 analysis of the latencies (None unless completed).
    pub analysis: Option<PairAnalysis>,
}

impl PairMeasurement {
    /// Initial core frequency (MHz).
    pub fn init_mhz(&self) -> u32 {
        self.init.core.0
    }

    /// Target core frequency (MHz).
    pub fn target_mhz(&self) -> u32 {
        self.target.core.0
    }

    /// Which domain(s) the transition moves (identity pairs, which are
    /// never scheduled, classify as [`PairKind::Core`]).
    pub fn kind(&self) -> PairKind {
        self.init.kind_to(&self.target).unwrap_or(PairKind::Core)
    }

    /// The filtered (outlier-free) summary, when available.
    pub fn filtered_summary(&self) -> Option<latest_stats::Summary> {
        self.analysis.as_ref().map(|a| a.filtered)
    }

    /// Raw latencies (ms) when the pair completed.
    pub fn latencies_ms(&self) -> Option<&[f64]> {
        self.outcome.run().map(|r| r.latencies_ms.as_slice())
    }

    /// Whether the transition increases frequency (core first, then
    /// memory for core-equal pairs).
    pub fn is_increase(&self) -> bool {
        self.target > self.init
    }
}

// Hand-written (de)serialisation: the legacy field names `init_mhz` /
// `target_mhz` are kept so core-only archives stay byte-identical; a
// two-domain state serialises in place as `{"core": .., "mem": ..}`.
impl serde::Serialize for PairMeasurement {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("init_mhz".to_string(), self.init.to_value()),
            ("target_mhz".to_string(), self.target.to_value()),
            ("outcome".to_string(), self.outcome.to_value()),
            ("analysis".to_string(), self.analysis.to_value()),
        ])
    }
}

impl serde::Deserialize for PairMeasurement {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for PairMeasurement, got {value:?}"))
        })?;
        let field = |name: &str| serde::field(entries, name, "PairMeasurement");
        Ok(PairMeasurement {
            init: serde::Deserialize::from_value(field("init_mhz")?)?,
            target: serde::Deserialize::from_value(field("target_mhz")?)?,
            outcome: serde::Deserialize::from_value(field("outcome")?)?,
            analysis: serde::Deserialize::from_value(field("analysis")?)?,
        })
    }
}

/// Result of a whole campaign on one device.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Device name measured.
    pub device_name: String,
    /// Device index.
    pub device_index: usize,
    /// The campaign seed the measurements were produced under. Resume
    /// validation refuses checkpoints taken under a different seed (their
    /// restored pairs would silently mix noise streams with re-run ones).
    pub seed: u64,
    /// Phase-1 characterisation.
    pub phase1: Phase1Result,
    /// Probe-phase result.
    pub probe: ProbeResult,
    /// All pair measurements, in `ordered_pairs` order.
    pairs: Vec<PairMeasurement>,
    /// `(init, target) → pairs index`, built once at construction so
    /// [`CampaignResult::pair`] is O(1) instead of a linear scan (heatmap
    /// renderers call it once per cell).
    index: HashMap<(FreqState, FreqState), usize>,
}

impl CampaignResult {
    /// Assemble a result; builds the pair lookup index.
    pub fn new(
        device_name: String,
        device_index: usize,
        seed: u64,
        phase1: Phase1Result,
        probe: ProbeResult,
        pairs: Vec<PairMeasurement>,
    ) -> Self {
        let index = pairs
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.init, p.target), i))
            .collect();
        CampaignResult {
            device_name,
            device_index,
            seed,
            phase1,
            probe,
            pairs,
            index,
        }
    }

    /// Deterministically assemble shard results into one campaign result.
    ///
    /// # Determinism contract
    ///
    /// `ordered` — the campaign's canonical `ordered_pairs()` order — fully
    /// determines the output layout, so the shards' *completion* order is
    /// invisible: results are first sorted by shard id (making even a
    /// duplicated pair index resolve identically on every merge), each
    /// measurement is placed at its canonical index, and pairs no shard
    /// measured are recorded as [`PairOutcome::Cancelled`] placeholders.
    /// The merge of an incomplete shard set is therefore exactly the
    /// resumable-checkpoint shape
    /// [`CampaignSession::resume_from`](crate::session::CampaignSession::resume_from)
    /// accepts, and — because every pair runs on its own
    /// `pair_seed`-seeded platform — merging the shards of *any* partition
    /// of a campaign reproduces the unpartitioned result bit for bit.
    pub fn merge(
        device_name: String,
        device_index: usize,
        seed: u64,
        phase1: Phase1Result,
        probe: ProbeResult,
        ordered: &[(FreqState, FreqState)],
        mut shards: Vec<ShardResult>,
    ) -> Self {
        shards.sort_by_key(|s| s.shard);
        let mut slots: Vec<Option<PairMeasurement>> = vec![None; ordered.len()];
        for shard in shards {
            for (index, meas) in shard.pairs {
                if let Some(slot) = slots.get_mut(index) {
                    *slot = Some(meas);
                }
            }
        }
        let pairs = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| PairMeasurement {
                    init: ordered[i].0,
                    target: ordered[i].1,
                    outcome: PairOutcome::Cancelled,
                    analysis: None,
                })
            })
            .collect();
        CampaignResult::new(device_name, device_index, seed, phase1, probe, pairs)
    }

    /// All pair measurements.
    pub fn pairs(&self) -> &[PairMeasurement] {
        &self.pairs
    }

    /// Completed pairs only.
    pub fn completed(&self) -> impl Iterator<Item = &PairMeasurement> {
        self.pairs.iter().filter(|p| p.outcome.run().is_some())
    }

    /// Look up one pair in O(1). Accepts bare [`FreqMhz`] (core-only) or
    /// full [`FreqState`] coordinates.
    ///
    /// [`FreqMhz`]: latest_gpu_sim::freq::FreqMhz
    pub fn pair(
        &self,
        init: impl Into<FreqState>,
        target: impl Into<FreqState>,
    ) -> Option<&PairMeasurement> {
        self.index
            .get(&(init.into(), target.into()))
            .map(|&i| &self.pairs[i])
    }

    /// Whether any pair was left unmeasured by a cancellation — i.e. this
    /// result is a resumable checkpoint rather than a finished campaign.
    pub fn is_partial(&self) -> bool {
        self.pairs.iter().any(|p| p.outcome.is_cancelled())
    }

    /// Serialise to pretty JSON (the checkpoint / `--json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign result serialises")
    }

    /// Parse a result back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

// Hand-written (de)serialisation: the lookup index is derived state and
// must not appear in (or be trusted from) the JSON.
impl serde::Serialize for CampaignResult {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("device_name".to_string(), self.device_name.to_value()),
            ("device_index".to_string(), self.device_index.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("phase1".to_string(), self.phase1.to_value()),
            ("probe".to_string(), self.probe.to_value()),
            ("pairs".to_string(), self.pairs.to_value()),
        ])
    }
}

impl serde::Deserialize for CampaignResult {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for CampaignResult, got {value:?}"))
        })?;
        let field = |name: &str| serde::field(entries, name, "CampaignResult");
        Ok(CampaignResult::new(
            serde::Deserialize::from_value(field("device_name")?)?,
            serde::Deserialize::from_value(field("device_index")?)?,
            serde::Deserialize::from_value(field("seed")?)?,
            serde::Deserialize::from_value(field("phase1")?)?,
            serde::Deserialize::from_value(field("probe")?)?,
            serde::Deserialize::from_value(field("pairs")?)?,
        ))
    }
}

/// The LATEST tool's classic blocking API.
///
/// `Latest::new(config).run()` is now a thin compatibility wrapper over
/// [`CampaignSession`]: same results, same
/// determinism, none of the streaming machinery. New code that wants
/// progress events, cancellation or checkpointing should use the session
/// directly.
pub struct Latest {
    config: CampaignConfig,
    adaptive: AdaptiveConfig,
}

impl Latest {
    /// Build a tool instance from a campaign configuration.
    pub fn new(config: CampaignConfig) -> Self {
        Latest {
            config,
            adaptive: AdaptiveConfig::default(),
        }
    }

    /// Override the Algorithm-3 parameters.
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Run the whole campaign to completion (blocking).
    pub fn run(&self) -> CoreResult<CampaignResult> {
        CampaignSession::new(self.config.clone())
            .with_adaptive(self.adaptive)
            .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::freq::FreqMhz;
    use latest_gpu_sim::transition::FixedTransition;
    use latest_sim_clock::SimDuration;
    use std::sync::Arc;

    fn small_campaign(seed: u64) -> CampaignConfig {
        let mut spec = devices::a100_sxm4();
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(9),
        });
        CampaignConfig::builder(spec)
            .frequencies_mhz(&[705, 1095, 1410])
            .measurements(10, 25)
            .seed(seed)
            .build()
    }

    #[test]
    fn campaign_covers_all_ordered_pairs() {
        let result = Latest::new(small_campaign(3)).run().unwrap();
        assert_eq!(result.pairs().len(), 6);
        for p in result.completed() {
            let a = p.analysis.as_ref().unwrap();
            // Fixed 9 ms device: every filtered mean must sit near 9 ms
            // (plus driver travel and detection granularity).
            assert!(
                (8.8..11.0).contains(&a.filtered.mean),
                "{}->{}: mean {} ms",
                p.init,
                p.target,
                a.filtered.mean
            );
        }
        assert!(result.pair(FreqMhz(705), FreqMhz(1410)).is_some());
        assert!(result.pair(FreqMhz(705), FreqMhz(705)).is_none());
    }

    #[test]
    fn pair_lookup_agrees_with_linear_scan() {
        let result = Latest::new(small_campaign(5)).run().unwrap();
        for p in result.pairs() {
            let (init, target) = (p.init, p.target);
            let via_index = result.pair(init, target).unwrap();
            let via_scan = result
                .pairs()
                .iter()
                .find(|q| q.init == init && q.target == target)
                .unwrap();
            assert!(std::ptr::eq(via_index, via_scan));
        }
        assert!(result.pair(FreqMhz(1), FreqMhz(2)).is_none());
    }

    #[test]
    fn campaign_is_deterministic_across_runs() {
        let a = Latest::new(small_campaign(11)).run().unwrap();
        let b = Latest::new(small_campaign(11)).run().unwrap();
        for (pa, pb) in a.pairs().iter().zip(b.pairs()) {
            assert_eq!(pa.latencies_ms(), pb.latencies_ms());
        }
        // And a different seed gives different noise.
        let c = Latest::new(small_campaign(12)).run().unwrap();
        let same = a
            .pairs()
            .iter()
            .zip(c.pairs())
            .all(|(x, y)| x.latencies_ms() == y.latencies_ms());
        assert!(!same, "different seeds produced identical campaigns");
    }

    #[test]
    fn closed_loop_measured_matches_ground_truth() {
        let result = Latest::new(small_campaign(7)).run().unwrap();
        for p in result.completed() {
            let run = p.outcome.run().unwrap();
            for (&m, &g) in run.latencies_ms.iter().zip(&run.ground_truth_ms) {
                assert!(
                    (m - g).abs() < 0.6,
                    "{}->{}: measured {m} vs truth {g}",
                    p.init,
                    p.target
                );
            }
        }
    }

    #[test]
    fn json_roundtrip_is_bitwise_faithful() {
        let result = Latest::new(small_campaign(13)).run().unwrap();
        let back = CampaignResult::from_json(&result.to_json()).unwrap();
        assert_eq!(back.device_name, result.device_name);
        assert_eq!(back.seed, result.seed);
        assert_eq!(back.pairs().len(), result.pairs().len());
        assert!(!back.is_partial());
        for (a, b) in result.pairs().iter().zip(back.pairs()) {
            let bits =
                |xs: Option<&[f64]>| xs.map(|v| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>());
            assert_eq!(bits(a.latencies_ms()), bits(b.latencies_ms()));
            assert_eq!(
                a.filtered_summary().map(|s| s.mean.to_bits()),
                b.filtered_summary().map(|s| s.mean.to_bits())
            );
        }
        // The rebuilt index must serve lookups too.
        assert!(back.pair(FreqMhz(1095), FreqMhz(705)).is_some());
        // Phase-1 state survives: validity drives resume decisions.
        assert_eq!(back.phase1.valid_pairs, result.phase1.valid_pairs);
        assert_eq!(
            back.probe.max_latency_ms.to_bits(),
            result.probe.max_latency_ms.to_bits()
        );
    }
}
