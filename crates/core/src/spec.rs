//! Declarative campaign specs: experiments as data.
//!
//! A [`CampaignSpec`] is the serialisable description of one measurement
//! campaign — device *name* (resolved through a
//! [`DeviceRegistry`]), workload *preset name* (resolved through a
//! [`WorkloadRegistry`]), a [`FreqSelection`], and the Sec. VI stopping-rule
//! knobs. A [`FleetSpec`] is a list of member campaign specs. Both round-trip
//! through JSON, validate with **every** violated constraint enumerated
//! ([`SpecErrors`]), and are the blessed path to a running campaign:
//!
//! ```
//! use latest_core::spec::CampaignSpec;
//!
//! let spec = CampaignSpec::builder("a100")
//!     .frequencies_mhz(&[705, 1095, 1410])
//!     .seed(7)
//!     .build()
//!     .expect("valid spec");
//! let json = spec.to_json(); // reproducible: re-runs from its own output
//! let session = CampaignSpec::from_json(&json)
//!     .expect("parses")
//!     .into_session()
//!     .expect("resolves");
//! assert_eq!(session.config().seed, 7);
//! ```
//!
//! Resolution is deterministic: a spec resolves to exactly the
//! [`CampaignConfig`] a hand-written builder chain with the same values
//! would produce, so results are bitwise identical between the two paths.
//!
//! Scenario files (`scenarios/*.json`) hold one JSON object per experiment;
//! fields not present take the paper defaults, unknown fields are rejected
//! (a typoed knob must not silently fall back to a default).

use latest_gpu_sim::devices::DeviceRegistry;
use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::sm::WorkloadRegistry;

use crate::config::CampaignConfig;
use crate::fleet::Fleet;
use crate::session::CampaignSession;

/// One violated constraint of a [`CampaignSpec`] / [`FleetSpec`] (or of a
/// [`CampaignConfig`](crate::config::CampaignConfigBuilder) under
/// `try_build`). Validation never stops at the first violation — see
/// [`SpecErrors`].
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The device name is not in the registry.
    UnknownDevice {
        /// The requested name.
        name: String,
        /// Every registered device name.
        known: Vec<String>,
    },
    /// The workload preset name is not in the registry.
    UnknownWorkload {
        /// The requested name.
        name: String,
        /// Every registered preset name.
        known: Vec<String>,
    },
    /// Fewer than two distinct frequencies selected.
    TooFewFrequencies {
        /// How many were given.
        got: usize,
    },
    /// A frequency appears more than once in the list.
    DuplicateFrequency {
        /// The repeated frequency (MHz).
        mhz: u32,
    },
    /// A listed frequency is not a ladder value of the selected device.
    OffLadderFrequency {
        /// The offending frequency (MHz).
        mhz: u32,
        /// The device whose ladder was checked.
        device: String,
    },
    /// A memory frequency appears more than once in the list.
    DuplicateMemFrequency {
        /// The repeated frequency (MHz).
        mhz: u32,
    },
    /// A listed memory frequency is not on the device's memory ladder.
    OffMemLadderFrequency {
        /// The offending frequency (MHz).
        mhz: u32,
        /// The device whose memory ladder was checked.
        device: String,
    },
    /// A `subset` selection of fewer than two frequencies.
    SubsetTooSmall {
        /// The requested subset size.
        n: usize,
    },
    /// A `subset` selection of more frequencies than the device ladder has.
    SubsetExceedsLadder {
        /// The requested subset size.
        n: usize,
        /// The device's ladder step count.
        steps: usize,
    },
    /// RSE stopping threshold outside (0, 1).
    RseThresholdOutOfRange {
        /// The configured value.
        value: f64,
    },
    /// `min_measurements` of zero.
    ZeroMinMeasurements,
    /// `min_measurements` exceeds `max_measurements`.
    MeasurementBoundsInverted {
        /// Configured minimum.
        min: usize,
        /// Configured maximum.
        max: usize,
    },
    /// `simulated_sms` of zero (no record streams to evaluate).
    ZeroSimulatedSms,
    /// Detection band width multiplier not positive.
    SigmaNonPositive {
        /// The configured value.
        value: f64,
    },
    /// Confidence level outside (0, 1).
    ConfidenceOutOfRange {
        /// The configured value.
        value: f64,
    },
    /// A fleet spec with no member campaigns.
    EmptyFleet,
    /// A violation inside one member of a fleet spec.
    InMember {
        /// Member position in the fleet's `members` list.
        index: usize,
        /// The member's violation.
        inner: Box<SpecError>,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownDevice { name, known } => {
                write!(f, "unknown device {name:?} (known: {})", known.join(", "))
            }
            SpecError::UnknownWorkload { name, known } => {
                write!(f, "unknown workload {name:?} (known: {})", known.join(", "))
            }
            SpecError::TooFewFrequencies { got } => {
                write!(f, "need at least two benchmarked frequencies, got {got}")
            }
            SpecError::DuplicateFrequency { mhz } => {
                write!(f, "frequency {mhz} MHz listed more than once")
            }
            SpecError::OffLadderFrequency { mhz, device } => {
                write!(f, "frequency {mhz} MHz is not on the {device} ladder")
            }
            SpecError::DuplicateMemFrequency { mhz } => {
                write!(f, "memory frequency {mhz} MHz listed more than once")
            }
            SpecError::OffMemLadderFrequency { mhz, device } => {
                write!(
                    f,
                    "memory frequency {mhz} MHz is not on the {device} memory ladder"
                )
            }
            SpecError::SubsetTooSmall { n } => {
                write!(f, "frequency subset must select at least 2 values, got {n}")
            }
            SpecError::SubsetExceedsLadder { n, steps } => {
                write!(
                    f,
                    "frequency subset of {n} exceeds the device ladder ({steps} steps)"
                )
            }
            SpecError::RseThresholdOutOfRange { value } => {
                write!(f, "rse_threshold must be in (0, 1), got {value}")
            }
            SpecError::ZeroMinMeasurements => {
                write!(f, "min_measurements must be at least 1")
            }
            SpecError::MeasurementBoundsInverted { min, max } => {
                write!(f, "min_measurements {min} exceeds max_measurements {max}")
            }
            SpecError::ZeroSimulatedSms => {
                write!(f, "simulated_sms must be at least 1 (or null for all SMs)")
            }
            SpecError::SigmaNonPositive { value } => {
                write!(f, "sigma_k must be positive, got {value}")
            }
            SpecError::ConfidenceOutOfRange { value } => {
                write!(f, "confidence must be in (0, 1), got {value}")
            }
            SpecError::EmptyFleet => write!(f, "fleet spec has no members"),
            SpecError::InMember { index, inner } => {
                write!(f, "member {index}: {inner}")
            }
        }
    }
}

/// Every constraint a spec violates, collected in one pass — so a scenario
/// author fixes all problems in one edit instead of replaying
/// fix-one-rerun-find-the-next.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecErrors {
    errors: Vec<SpecError>,
}

impl SpecErrors {
    /// `Ok` when no violations were found, otherwise all of them at once.
    pub fn collect(errors: Vec<SpecError>) -> Result<(), SpecErrors> {
        if errors.is_empty() {
            Ok(())
        } else {
            Err(SpecErrors { errors })
        }
    }

    /// The individual violations, in the order they were found.
    pub fn errors(&self) -> &[SpecError] {
        &self.errors
    }

    /// Whether a violation of the given shape is present.
    pub fn contains(&self, f: impl Fn(&SpecError) -> bool) -> bool {
        self.errors.iter().any(f)
    }
}

impl std::fmt::Display for SpecErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} spec violation(s): ", self.errors.len())?;
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecErrors {}

/// Which frequencies a campaign benchmarks.
///
/// Serialised forms: an explicit list (`[705, 1095, 1410]`), an evenly
/// spaced ladder subset (`{"subset": 18}`, the paper's heatmap shape), or
/// the whole ladder (`"ladder"`).
#[derive(Clone, Debug, PartialEq)]
pub enum FreqSelection {
    /// Explicit frequencies in MHz (the tool's mandatory argument).
    List(Vec<u32>),
    /// Evenly spaced `n`-value subset of the device ladder.
    Subset(usize),
    /// Every selectable ladder step.
    Ladder,
}

impl serde::Serialize for FreqSelection {
    fn to_value(&self) -> serde::Value {
        match self {
            FreqSelection::List(mhz) => mhz.to_value(),
            FreqSelection::Subset(n) => {
                serde::Value::Map(vec![("subset".to_string(), n.to_value())])
            }
            FreqSelection::Ladder => serde::Value::Str("ladder".to_string()),
        }
    }
}

impl serde::Deserialize for FreqSelection {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Seq(_) => Ok(FreqSelection::List(serde::Deserialize::from_value(value)?)),
            serde::Value::Str(s) if s == "ladder" => Ok(FreqSelection::Ladder),
            serde::Value::Map(entries) => {
                check_known_fields(entries, &["subset"], "FreqSelection")?;
                let n = serde::field(entries, "subset", "FreqSelection")?;
                Ok(FreqSelection::Subset(serde::Deserialize::from_value(n)?))
            }
            other => Err(serde::Error::custom(format!(
                "frequencies must be a list of MHz values, {{\"subset\": n}}, or \"ladder\"; got {other:?}"
            ))),
        }
    }
}

/// Serialisable description of one measurement campaign on one device.
///
/// See the [module docs](self) for the tour; construct through
/// [`CampaignSpec::builder`] (validated) or deserialise from JSON
/// ([`CampaignSpec::from_json`], validated on resolution).
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Free-text description (carried through serialisation; shown by
    /// `latest validate`).
    pub description: String,
    /// Device registry name (e.g. `a100`; see
    /// [`DeviceRegistry::builtin`]).
    pub device: String,
    /// Device unit index: selects per-unit variants on families that model
    /// them and names output files.
    pub device_index: usize,
    /// Hostname used in output file names.
    pub hostname: String,
    /// Benchmarked frequencies.
    pub frequencies: FreqSelection,
    /// Benchmarked memory (DRAM) frequencies in MHz. Empty = core-only
    /// campaign; the field is omitted from JSON when empty so pre-memory
    /// specs serialise byte-identically (content-addressed run ids are
    /// unchanged).
    pub mem_frequencies: Vec<u32>,
    /// Master simulation seed.
    pub seed: u64,
    /// RSE stopping threshold (Sec. VI; 0.05 in the paper).
    pub rse_threshold: f64,
    /// Measurements before RSE checks begin.
    pub min_measurements: usize,
    /// Hard cap on measurements per pair.
    pub max_measurements: usize,
    /// Simulated SM record streams (`None` = all SMs).
    pub simulated_sms: Option<u32>,
    /// Workload preset name (see [`WorkloadRegistry::builtin`]).
    pub workload: String,
}

impl Default for CampaignSpec {
    /// The paper defaults with an empty frequency list (which fails
    /// validation until frequencies are selected).
    fn default() -> Self {
        CampaignSpec {
            description: String::new(),
            device: "a100".to_string(),
            device_index: 0,
            hostname: "simnode".to_string(),
            frequencies: FreqSelection::List(Vec::new()),
            mem_frequencies: Vec::new(),
            seed: 0,
            rse_threshold: 0.05,
            min_measurements: 25,
            max_measurements: 150,
            simulated_sms: Some(8),
            workload: "paper-default".to_string(),
        }
    }
}

impl CampaignSpec {
    /// Start building a spec for the named device.
    pub fn builder(device: impl Into<String>) -> CampaignSpecBuilder {
        CampaignSpecBuilder {
            spec: CampaignSpec {
                device: device.into(),
                ..CampaignSpec::default()
            },
        }
    }

    /// Validate against the built-in registries, collecting every violation.
    pub fn validate(&self) -> Result<(), SpecErrors> {
        self.validate_with(&DeviceRegistry::builtin(), &WorkloadRegistry::builtin())
    }

    /// Validate against explicit registries, collecting every violation.
    pub fn validate_with(
        &self,
        devices: &DeviceRegistry,
        workloads: &WorkloadRegistry,
    ) -> Result<(), SpecErrors> {
        SpecErrors::collect(self.violations(devices, workloads))
    }

    fn violations(&self, devices: &DeviceRegistry, workloads: &WorkloadRegistry) -> Vec<SpecError> {
        let mut errors = Vec::new();
        let device = devices.find(&self.device);
        if device.is_none() {
            errors.push(SpecError::UnknownDevice {
                name: self.device.clone(),
                known: devices.names(),
            });
        }
        if workloads.get(&self.workload).is_none() {
            errors.push(SpecError::UnknownWorkload {
                name: self.workload.clone(),
                known: workloads.names(),
            });
        }
        // Resolve the device once: ladder checks below reuse it instead of
        // reconstructing a DeviceSpec (transition model and all) per entry.
        let resolved_device = device.map(|entry| entry.make(self.device_index));
        match &self.frequencies {
            FreqSelection::List(mhz) => {
                if mhz.len() < 2 {
                    errors.push(SpecError::TooFewFrequencies { got: mhz.len() });
                }
                let mut seen = std::collections::BTreeSet::new();
                for &m in mhz {
                    if !seen.insert(m) {
                        if !errors.iter().any(
                            |e| matches!(e, SpecError::DuplicateFrequency { mhz } if *mhz == m),
                        ) {
                            errors.push(SpecError::DuplicateFrequency { mhz: m });
                        }
                        continue;
                    }
                    if let Some(spec) = &resolved_device {
                        if !spec.ladder.contains(FreqMhz(m)) {
                            errors.push(SpecError::OffLadderFrequency {
                                mhz: m,
                                device: spec.name.clone(),
                            });
                        }
                    }
                }
            }
            FreqSelection::Subset(n) => {
                if *n < 2 {
                    errors.push(SpecError::SubsetTooSmall { n: *n });
                } else if let Some(spec) = &resolved_device {
                    // A subset larger than the ladder would silently
                    // truncate to the whole ladder — reject it instead, as
                    // a typoed size (180 for 18) must not run quietly.
                    if *n > spec.ladder.len() {
                        errors.push(SpecError::SubsetExceedsLadder {
                            n: *n,
                            steps: spec.ladder.len(),
                        });
                    }
                }
            }
            FreqSelection::Ladder => {}
        }
        let mut seen_mem = std::collections::BTreeSet::new();
        for &m in &self.mem_frequencies {
            if !seen_mem.insert(m) {
                if !errors
                    .iter()
                    .any(|e| matches!(e, SpecError::DuplicateMemFrequency { mhz } if *mhz == m))
                {
                    errors.push(SpecError::DuplicateMemFrequency { mhz: m });
                }
                continue;
            }
            if let Some(spec) = &resolved_device {
                if !spec.mem_ladder.contains(FreqMhz(m)) {
                    errors.push(SpecError::OffMemLadderFrequency {
                        mhz: m,
                        device: spec.name.clone(),
                    });
                }
            }
        }
        if !(self.rse_threshold > 0.0 && self.rse_threshold < 1.0) {
            errors.push(SpecError::RseThresholdOutOfRange {
                value: self.rse_threshold,
            });
        }
        if self.min_measurements == 0 {
            errors.push(SpecError::ZeroMinMeasurements);
        } else if self.min_measurements > self.max_measurements {
            errors.push(SpecError::MeasurementBoundsInverted {
                min: self.min_measurements,
                max: self.max_measurements,
            });
        }
        if self.simulated_sms == Some(0) {
            errors.push(SpecError::ZeroSimulatedSms);
        }
        errors
    }

    /// Resolve to a [`CampaignConfig`] through the built-in registries.
    ///
    /// Deterministic: the produced config is field-for-field what a
    /// hand-written [`CampaignConfig::builder`] chain with the same values
    /// yields, so a spec-driven run is bitwise identical to the equivalent
    /// struct-literal run.
    pub fn resolve(&self) -> Result<CampaignConfig, SpecErrors> {
        self.resolve_with(&DeviceRegistry::builtin(), &WorkloadRegistry::builtin())
    }

    /// Resolve to a [`CampaignConfig`] through explicit registries.
    pub fn resolve_with(
        &self,
        devices: &DeviceRegistry,
        workloads: &WorkloadRegistry,
    ) -> Result<CampaignConfig, SpecErrors> {
        self.validate_with(devices, workloads)?;
        let device = devices
            .get_unit(&self.device, self.device_index)
            .expect("validated device resolves");
        let frequencies = match &self.frequencies {
            FreqSelection::List(mhz) => mhz.iter().map(|&m| FreqMhz(m)).collect(),
            FreqSelection::Subset(n) => device.ladder.subset(*n),
            FreqSelection::Ladder => device.ladder.steps().to_vec(),
        };
        let workload = workloads
            .get(&self.workload)
            .expect("validated workload resolves");
        Ok(CampaignConfig::builder(device)
            .frequencies(frequencies)
            .mem_frequencies_mhz(&self.mem_frequencies)
            .seed(self.seed)
            .rse_threshold(self.rse_threshold)
            .measurements(self.min_measurements, self.max_measurements)
            .device_index(self.device_index)
            .hostname(self.hostname.clone())
            .simulated_sms(self.simulated_sms)
            .workload(workload)
            .build())
    }

    /// Resolve and wrap in a ready-to-run [`CampaignSession`] (built-in
    /// registries).
    pub fn into_session(self) -> Result<CampaignSession, SpecErrors> {
        self.into_session_with(&DeviceRegistry::builtin(), &WorkloadRegistry::builtin())
    }

    /// Resolve and wrap in a ready-to-run [`CampaignSession`] (explicit
    /// registries).
    pub fn into_session_with(
        self,
        devices: &DeviceRegistry,
        workloads: &WorkloadRegistry,
    ) -> Result<CampaignSession, SpecErrors> {
        Ok(CampaignSession::new(self.resolve_with(devices, workloads)?))
    }

    /// Serialise to pretty JSON (the scenario-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign spec serialises")
    }

    /// Parse a spec from JSON. Missing fields take the paper defaults;
    /// unknown fields are rejected.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

const CAMPAIGN_SPEC_FIELDS: &[&str] = &[
    "description",
    "device",
    "device_index",
    "hostname",
    "frequencies",
    "mem_frequencies",
    "seed",
    "rse_threshold",
    "min_measurements",
    "max_measurements",
    "simulated_sms",
    "workload",
];

impl serde::Serialize for CampaignSpec {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("description".to_string(), self.description.to_value()),
            ("device".to_string(), self.device.to_value()),
            ("device_index".to_string(), self.device_index.to_value()),
            ("hostname".to_string(), self.hostname.to_value()),
            ("frequencies".to_string(), self.frequencies.to_value()),
        ];
        // Emitted only when non-empty: a core-only spec must serialise to
        // the exact pre-memory bytes, or its content-addressed RunId — and
        // with it every existing archive — would silently change.
        if !self.mem_frequencies.is_empty() {
            entries.push((
                "mem_frequencies".to_string(),
                self.mem_frequencies.to_value(),
            ));
        }
        entries.extend([
            ("seed".to_string(), self.seed.to_value()),
            ("rse_threshold".to_string(), self.rse_threshold.to_value()),
            (
                "min_measurements".to_string(),
                self.min_measurements.to_value(),
            ),
            (
                "max_measurements".to_string(),
                self.max_measurements.to_value(),
            ),
            ("simulated_sms".to_string(), self.simulated_sms.to_value()),
            ("workload".to_string(), self.workload.to_value()),
        ]);
        serde::Value::Map(entries)
    }
}

/// Reject typoed keys: a scenario knob that silently falls back to its
/// default is worse than a parse error.
fn check_known_fields(
    entries: &[(String, serde::Value)],
    known: &[&str],
    type_name: &str,
) -> Result<(), serde::Error> {
    for (key, _) in entries {
        if !known.contains(&key.as_str()) {
            return Err(serde::Error::custom(format!(
                "unknown field `{key}` in {type_name} (known fields: {})",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

impl serde::Deserialize for CampaignSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for CampaignSpec, got {value:?}"))
        })?;
        check_known_fields(entries, CAMPAIGN_SPEC_FIELDS, "CampaignSpec")?;
        let mut spec = CampaignSpec::default();
        for (key, v) in entries {
            match key.as_str() {
                "description" => spec.description = serde::Deserialize::from_value(v)?,
                "device" => spec.device = serde::Deserialize::from_value(v)?,
                "device_index" => spec.device_index = serde::Deserialize::from_value(v)?,
                "hostname" => spec.hostname = serde::Deserialize::from_value(v)?,
                "frequencies" => spec.frequencies = serde::Deserialize::from_value(v)?,
                "mem_frequencies" => spec.mem_frequencies = serde::Deserialize::from_value(v)?,
                "seed" => spec.seed = serde::Deserialize::from_value(v)?,
                "rse_threshold" => spec.rse_threshold = serde::Deserialize::from_value(v)?,
                "min_measurements" => spec.min_measurements = serde::Deserialize::from_value(v)?,
                "max_measurements" => spec.max_measurements = serde::Deserialize::from_value(v)?,
                "simulated_sms" => spec.simulated_sms = serde::Deserialize::from_value(v)?,
                "workload" => spec.workload = serde::Deserialize::from_value(v)?,
                _ => unreachable!("checked above"),
            }
        }
        Ok(spec)
    }
}

/// Typed builder for [`CampaignSpec`] whose [`CampaignSpecBuilder::build`]
/// validates the spec (against the built-in registries) before handing it
/// out — a builder-accepted spec always serialises, round-trips and
/// resolves.
#[derive(Clone, Debug)]
pub struct CampaignSpecBuilder {
    spec: CampaignSpec,
}

impl CampaignSpecBuilder {
    /// Free-text description.
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.spec.description = text.into();
        self
    }

    /// Explicit benchmarked frequencies (MHz).
    pub fn frequencies_mhz(mut self, mhz: &[u32]) -> Self {
        self.spec.frequencies = FreqSelection::List(mhz.to_vec());
        self
    }

    /// Evenly spaced `n`-frequency ladder subset (the paper's heatmaps).
    pub fn frequency_subset(mut self, n: usize) -> Self {
        self.spec.frequencies = FreqSelection::Subset(n);
        self
    }

    /// Benchmark the whole ladder.
    pub fn full_ladder(mut self) -> Self {
        self.spec.frequencies = FreqSelection::Ladder;
        self
    }

    /// Benchmarked memory (DRAM) frequencies (MHz); empty keeps the
    /// campaign core-only.
    pub fn mem_frequencies_mhz(mut self, mhz: &[u32]) -> Self {
        self.spec.mem_frequencies = mhz.to_vec();
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Device unit index.
    pub fn device_index(mut self, index: usize) -> Self {
        self.spec.device_index = index;
        self
    }

    /// Hostname used in output file names.
    pub fn hostname(mut self, hostname: impl Into<String>) -> Self {
        self.spec.hostname = hostname.into();
        self
    }

    /// RSE stopping threshold.
    pub fn rse_threshold(mut self, rse: f64) -> Self {
        self.spec.rse_threshold = rse;
        self
    }

    /// Minimum and maximum measurements per pair.
    pub fn measurements(mut self, min: usize, max: usize) -> Self {
        self.spec.min_measurements = min;
        self.spec.max_measurements = max;
        self
    }

    /// Simulated SM record streams (`None` = all).
    pub fn simulated_sms(mut self, n: Option<u32>) -> Self {
        self.spec.simulated_sms = n;
        self
    }

    /// Workload preset name.
    pub fn workload(mut self, name: impl Into<String>) -> Self {
        self.spec.workload = name.into();
        self
    }

    /// Validate and finish: every violated constraint is reported at once.
    pub fn build(self) -> Result<CampaignSpec, SpecErrors> {
        self.spec.validate()?;
        Ok(self.spec)
    }

    /// Finish without validating (for specs validated later against custom
    /// registries).
    pub fn build_unchecked(self) -> CampaignSpec {
        self.spec
    }
}

/// Serialisable description of a multi-device fleet campaign: one
/// [`CampaignSpec`] per member, run as a [`Fleet`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetSpec {
    /// Free-text description.
    pub description: String,
    /// Member campaigns, one per device slot.
    pub members: Vec<CampaignSpec>,
}

impl FleetSpec {
    /// An empty fleet spec (invalid until members are added).
    pub fn new() -> Self {
        FleetSpec::default()
    }

    /// Set the description.
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }

    /// Add one member campaign.
    pub fn member(mut self, spec: CampaignSpec) -> Self {
        self.members.push(spec);
        self
    }

    /// Validate against the built-in registries, collecting every violation
    /// of every member (tagged with the member index).
    pub fn validate(&self) -> Result<(), SpecErrors> {
        self.validate_with(&DeviceRegistry::builtin(), &WorkloadRegistry::builtin())
    }

    /// Validate against explicit registries.
    pub fn validate_with(
        &self,
        devices: &DeviceRegistry,
        workloads: &WorkloadRegistry,
    ) -> Result<(), SpecErrors> {
        let mut errors = Vec::new();
        if self.members.is_empty() {
            errors.push(SpecError::EmptyFleet);
        }
        for (index, member) in self.members.iter().enumerate() {
            for inner in member.violations(devices, workloads) {
                errors.push(SpecError::InMember {
                    index,
                    inner: Box::new(inner),
                });
            }
        }
        SpecErrors::collect(errors)
    }

    /// Resolve every member and assemble a ready-to-run [`Fleet`] (built-in
    /// registries).
    pub fn into_fleet(self) -> Result<Fleet, SpecErrors> {
        self.into_fleet_with(&DeviceRegistry::builtin(), &WorkloadRegistry::builtin())
    }

    /// Resolve every member and assemble a ready-to-run [`Fleet`] (explicit
    /// registries).
    pub fn into_fleet_with(
        self,
        devices: &DeviceRegistry,
        workloads: &WorkloadRegistry,
    ) -> Result<Fleet, SpecErrors> {
        self.validate_with(devices, workloads)?;
        let mut fleet = Fleet::new();
        for member in &self.members {
            fleet = fleet.add_campaign(
                member
                    .resolve_with(devices, workloads)
                    .expect("validated member resolves"),
            );
        }
        Ok(fleet)
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet spec serialises")
    }

    /// Parse from JSON (the `members` field is mandatory).
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

impl serde::Serialize for FleetSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("description".to_string(), self.description.to_value()),
            ("members".to_string(), self.members.to_value()),
        ])
    }
}

impl serde::Deserialize for FleetSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for FleetSpec, got {value:?}"))
        })?;
        check_known_fields(entries, &["description", "members"], "FleetSpec")?;
        let members = serde::field(entries, "members", "FleetSpec")?;
        let description = match entries.iter().find(|(k, _)| k == "description") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => String::new(),
        };
        Ok(FleetSpec {
            description,
            members: serde::Deserialize::from_value(members)?,
        })
    }
}

/// A scenario file's content: either one campaign or a fleet of them.
///
/// Disambiguated by shape — a JSON object with a `members` key is a fleet,
/// anything else a single campaign — so `latest run` takes any scenario
/// file without a mode flag.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioSpec {
    /// One device, one campaign.
    Campaign(CampaignSpec),
    /// Multiple member campaigns run as a fleet.
    Fleet(FleetSpec),
}

impl ScenarioSpec {
    /// Validate whichever shape this is (built-in registries).
    pub fn validate(&self) -> Result<(), SpecErrors> {
        match self {
            ScenarioSpec::Campaign(c) => c.validate(),
            ScenarioSpec::Fleet(f) => f.validate(),
        }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario spec serialises")
    }

    /// Parse from JSON, picking the shape by the presence of `members`.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

impl serde::Serialize for ScenarioSpec {
    fn to_value(&self) -> serde::Value {
        match self {
            ScenarioSpec::Campaign(c) => c.to_value(),
            ScenarioSpec::Fleet(f) => f.to_value(),
        }
    }
}

impl serde::Deserialize for ScenarioSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for ScenarioSpec, got {value:?}"))
        })?;
        if entries.iter().any(|(k, _)| k == "members") {
            Ok(ScenarioSpec::Fleet(serde::Deserialize::from_value(value)?))
        } else {
            Ok(ScenarioSpec::Campaign(serde::Deserialize::from_value(
                value,
            )?))
        }
    }
}

/// The `latest run --checkpoint` file format: the *effective spec* stored
/// alongside the partial [`CampaignResult`](crate::campaign::CampaignResult).
///
/// The session's own resume validation compares device, seed and pair set
/// — it cannot see knobs the result does not record (measurement bounds,
/// RSE threshold, workload). Persisting the spec next to the result lets a
/// resume refuse a checkpoint taken under a different configuration
/// instead of silently merging pairs measured under mixed knobs.
#[derive(Clone, Debug)]
pub struct SpecCheckpoint {
    /// The effective campaign spec the checkpointed run was started from.
    pub spec: CampaignSpec,
    /// The (typically partial) result to resume from.
    pub result: crate::campaign::CampaignResult,
}

impl SpecCheckpoint {
    /// Serialise to pretty JSON (the checkpoint-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec checkpoint serialises")
    }

    /// Parse a checkpoint file back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Write the checkpoint to `path` atomically (write-to-temp +
    /// rename), so a crash mid-write can never corrupt an existing
    /// checkpoint. The single checkpoint-persistence path shared by
    /// `latest run --checkpoint` and the queue service's worker pool.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Read a checkpoint file back; a parse failure surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

impl serde::Serialize for SpecCheckpoint {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("spec".to_string(), self.spec.to_value()),
            ("result".to_string(), self.result.to_value()),
        ])
    }
}

impl serde::Deserialize for SpecCheckpoint {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for SpecCheckpoint, got {value:?}"))
        })?;
        Ok(SpecCheckpoint {
            spec: serde::Deserialize::from_value(serde::field(entries, "spec", "SpecCheckpoint")?)?,
            result: serde::Deserialize::from_value(serde::field(
                entries,
                "result",
                "SpecCheckpoint",
            )?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_config_defaults() {
        let spec = CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .build()
            .unwrap();
        let config = spec.resolve().unwrap();
        let reference = CampaignConfig::builder(latest_gpu_sim::devices::a100_sxm4())
            .frequencies_mhz(&[705, 1410])
            .build();
        assert_eq!(config.rse_threshold, reference.rse_threshold);
        assert_eq!(config.min_measurements, reference.min_measurements);
        assert_eq!(config.max_measurements, reference.max_measurements);
        assert_eq!(config.hostname, reference.hostname);
        assert_eq!(config.simulated_sms, reference.simulated_sms);
        assert_eq!(config.workload, reference.workload);
        assert_eq!(config.frequencies, reference.frequencies);
        assert_eq!(config.spec.name, reference.spec.name);
    }

    #[test]
    fn validation_enumerates_every_violation_at_once() {
        let spec = CampaignSpec {
            device: "h100".to_string(),
            workload: "compute-heavy".to_string(),
            frequencies: FreqSelection::List(vec![705]),
            rse_threshold: 1.5,
            min_measurements: 0,
            simulated_sms: Some(0),
            ..CampaignSpec::default()
        };
        let errs = spec.validate().unwrap_err();
        assert!(errs.errors().len() >= 5, "collected: {errs}");
        assert!(errs.contains(|e| matches!(e, SpecError::UnknownDevice { .. })));
        assert!(errs.contains(|e| matches!(e, SpecError::UnknownWorkload { .. })));
        assert!(errs.contains(|e| matches!(e, SpecError::TooFewFrequencies { got: 1 })));
        assert!(errs.contains(|e| matches!(e, SpecError::RseThresholdOutOfRange { .. })));
        assert!(errs.contains(|e| matches!(e, SpecError::ZeroMinMeasurements)));
        assert!(errs.contains(|e| matches!(e, SpecError::ZeroSimulatedSms)));
    }

    #[test]
    fn subset_and_ladder_selections_resolve() {
        let subset = CampaignSpec::builder("gh200")
            .frequency_subset(5)
            .build()
            .unwrap()
            .resolve()
            .unwrap();
        assert_eq!(subset.frequencies.len(), 5);
        let ladder = CampaignSpec::builder("quadro")
            .full_ladder()
            .build()
            .unwrap()
            .resolve()
            .unwrap();
        assert_eq!(ladder.frequencies.len(), 120);
    }

    #[test]
    fn core_only_spec_serialisation_omits_mem_frequencies() {
        let spec = CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .build()
            .unwrap();
        assert!(!spec.to_json().contains("mem_frequencies"));
        // And a 2-D spec round-trips with the field present.
        let plane = CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .mem_frequencies_mhz(&[810, 1215])
            .build()
            .unwrap();
        assert!(plane.to_json().contains("mem_frequencies"));
        assert_eq!(CampaignSpec::from_json(&plane.to_json()).unwrap(), plane);
        let config = plane.resolve().unwrap();
        assert_eq!(config.mem_frequencies, vec![FreqMhz(810), FreqMhz(1215)]);
        assert_eq!(config.states().len(), 4);
    }

    #[test]
    fn mem_frequencies_validate_against_the_memory_ladder() {
        let spec = CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .mem_frequencies_mhz(&[810, 810, 999])
            .build_unchecked();
        let errs = spec.validate().unwrap_err();
        assert!(errs.contains(|e| matches!(e, SpecError::DuplicateMemFrequency { mhz: 810 })));
        assert!(errs.contains(|e| matches!(e, SpecError::OffMemLadderFrequency { mhz: 999, .. })));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = CampaignSpec::from_json(r#"{"device": "a100", "frequncies": [705, 1410]}"#)
            .unwrap_err();
        assert!(err.to_string().contains("frequncies"), "{err}");
        assert!(err.to_string().contains("known fields"), "{err}");
    }

    #[test]
    fn missing_fields_take_paper_defaults() {
        let spec =
            CampaignSpec::from_json(r#"{"device": "gh200", "frequencies": [705, 1980]}"#).unwrap();
        assert_eq!(spec.rse_threshold, 0.05);
        assert_eq!(spec.min_measurements, 25);
        assert_eq!(spec.max_measurements, 150);
        assert_eq!(spec.hostname, "simnode");
        assert_eq!(spec.simulated_sms, Some(8));
        assert_eq!(spec.workload, "paper-default");
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn scenario_shape_is_picked_by_members_key() {
        let campaign =
            ScenarioSpec::from_json(r#"{"device": "a100", "frequencies": [705, 1410]}"#).unwrap();
        assert!(matches!(campaign, ScenarioSpec::Campaign(_)));
        let fleet = ScenarioSpec::from_json(
            r#"{"members": [{"device": "a100", "frequencies": [705, 1410]}]}"#,
        )
        .unwrap();
        assert!(matches!(fleet, ScenarioSpec::Fleet(_)));
        // And both round-trip through their own JSON.
        for s in [campaign, fleet] {
            assert_eq!(ScenarioSpec::from_json(&s.to_json()).unwrap(), s);
        }
    }

    #[test]
    fn fleet_violations_carry_member_indices() {
        let fleet = FleetSpec::new()
            .member(
                CampaignSpec::builder("a100")
                    .frequencies_mhz(&[705, 1410])
                    .build_unchecked(),
            )
            .member(
                CampaignSpec::builder("h100")
                    .frequencies_mhz(&[705])
                    .build_unchecked(),
            );
        let errs = fleet.validate().unwrap_err();
        assert!(errs
            .errors()
            .iter()
            .all(|e| matches!(e, SpecError::InMember { index: 1, .. })));
        assert_eq!(errs.errors().len(), 2);
    }

    #[test]
    fn custom_registries_extend_the_vocabulary() {
        use latest_gpu_sim::devices::{gh200, DeviceEntry, DeviceRegistry};
        use latest_gpu_sim::sm::{WorkloadParams, WorkloadRegistry};
        let mut devices = DeviceRegistry::builtin();
        devices.register(DeviceEntry::new("h200", "hypothetical refresh", |_| {
            let mut d = gh200();
            d.name = "NVIDIA H200".to_string();
            d
        }));
        let mut workloads = WorkloadRegistry::builtin();
        workloads.register("tiny", "fast tests", WorkloadParams::default_micro());

        let spec = CampaignSpec::builder("h200")
            .frequencies_mhz(&[705, 1980])
            .workload("tiny")
            .build_unchecked();
        assert!(spec.validate().is_err(), "builtin registries reject h200");
        let config = spec.resolve_with(&devices, &workloads).unwrap();
        assert_eq!(config.spec.name, "NVIDIA H200");
    }
}
