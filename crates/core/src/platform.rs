//! The platform abstraction: what the methodology needs from an accelerator.
//!
//! Phases 1–3, the probe, the wake-up estimator and the RSE controller are
//! defined over *any* accelerator exposing NVML-style control and CUDA-style
//! execution (Secs. V–VI make no simulator assumptions). The [`Platform`]
//! trait captures exactly that contract — clock access, frequency control,
//! kernel launch/collect, timer synchronisation and thermal/power polling —
//! so every phase function is generic over the backend.
//!
//! [`SimPlatform`] is the first implementor: one simulated GPU wired up
//! behind the NVML and CUDA façades, sharing one virtual clock. It
//! additionally implements the optional [`GroundTruth`] capability (the
//! device records the exact moment each transition settled), which is what
//! makes closed-loop validation possible — a real-hardware backend cannot
//! offer it, and everything downstream treats it as optional.
//!
//! [`PlatformFactory`] abstracts platform *construction*: the campaign
//! driver creates a fresh platform per frequency pair (seeded from the
//! pair) so pairs can run in parallel with bitwise-reproducible results.

use std::sync::Arc;

use latest_clock_sync::{synchronize, SyncConfig, SyncResult, TimestampProbe};
use latest_cuda_sim::{CudaContext, TimerData};
use latest_gpu_sim::devices::DeviceSpec;
use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::transition::TransitionGroundTruth;
use latest_gpu_sim::{GpuDevice, KernelConfig, KernelId, ThrottleReasons};
use latest_nvml_sim::{Nvml, NvmlDevice};
use latest_sim_clock::{SharedClock, SimDuration, SimTime};
use parking_lot::Mutex;

use crate::error::CoreResult;

/// The accelerator contract the LATEST methodology runs against.
///
/// A platform is "the machine": one driver control handle and one execution
/// context sharing a physical device and a host clock. The methodology only
/// ever talks to this trait; backends decide what sits behind it (a
/// simulated GPU here, NVML + CUDA on real hardware).
pub trait Platform: Send {
    // --- clock access ---

    /// Current host time.
    fn now(&self) -> SimTime;

    /// Host-side sleep (`usleep`): the tool sleeps through the delay period
    /// and thermal backoffs.
    fn sleep(&mut self, d: SimDuration);

    // --- frequency control (NVML-style) ---

    /// Lock the SM clock to `target` (`nvmlDeviceSetGpuLockedClocks` with
    /// `min == max`). Returns the ladder-snapped frequency. The call blocks
    /// briefly on the host; the device applies the change asynchronously.
    fn set_locked_clocks(&mut self, target: FreqMhz) -> CoreResult<FreqMhz>;

    /// Release the lock and return to the nominal clock.
    fn reset_locked_clocks(&mut self) -> CoreResult<FreqMhz>;

    /// The instantaneous SM clock (`nvmlDeviceGetClockInfo`).
    fn current_clock(&mut self) -> FreqMhz;

    /// The device's supported frequency ladder.
    fn supported_clocks(&self) -> Vec<FreqMhz>;

    // --- kernel launch / collect (CUDA-style) ---

    /// Asynchronously launch the timing microbenchmark kernel.
    fn launch_benchmark(&mut self, config: KernelConfig) -> CoreResult<KernelId>;

    /// Block until every queued kernel finishes; returns the completion time.
    fn synchronize(&mut self) -> SimTime;

    /// Copy a finished kernel's per-SM iteration records to the host.
    fn collect_records(&mut self, id: KernelId) -> CoreResult<TimerData>;

    // --- timer synchronisation ---

    /// Run an IEEE 1588 host↔device timer synchronisation.
    fn synchronize_timers(&mut self, config: &SyncConfig) -> SyncResult;

    // --- thermal / power polling ---

    /// The current throttle-reason bitmask
    /// (`nvmlDeviceGetCurrentClocksThrottleReasons`).
    fn throttle_reasons(&mut self) -> ThrottleReasons;

    /// The GPU temperature in °C (`nvmlDeviceGetTemperature`).
    fn temperature_c(&mut self) -> f64;

    // --- metadata ---

    /// Human-readable device name.
    fn device_name(&self) -> String;

    // --- capability discovery ---

    /// The closed-loop validation capability, when the backend offers it.
    ///
    /// Only backends that *know* the true transition times (the simulator)
    /// return `Some`; the methodology itself never requires it, and every
    /// ground-truth assertion downstream is gated on this returning `Some`.
    fn as_ground_truth(&self) -> Option<&dyn GroundTruth> {
        None
    }

    /// The memory-clock control capability, when the backend offers it.
    ///
    /// Not every accelerator (or driver) exposes locked memory clocks;
    /// campaigns that sweep the memory dimension require `Some`, core-only
    /// campaigns never call this.
    fn as_memory_clocks(&mut self) -> Option<&mut dyn MemoryClocks> {
        None
    }
}

/// Optional capability: NVML-style memory (DRAM) clock control.
///
/// The second frequency domain. Mirrors the core-clock surface of
/// [`Platform`] one-for-one (`nvmlDeviceSetMemoryLockedClocks` /
/// `nvmlDeviceGetClockInfo(NVML_CLOCK_MEM)`); capability-gated because real
/// parts differ in whether the driver exposes it at all.
pub trait MemoryClocks {
    /// Lock the memory clock to `target`. Returns the ladder-snapped
    /// frequency; blocks briefly on the host while the device applies the
    /// change asynchronously.
    fn set_locked_mem_clocks(&mut self, target: FreqMhz) -> CoreResult<FreqMhz>;

    /// Release the memory lock and return to the default memory clock.
    fn reset_locked_mem_clocks(&mut self) -> CoreResult<FreqMhz>;

    /// The instantaneous memory clock.
    fn current_mem_clock(&mut self) -> FreqMhz;

    /// The device's supported memory-clock ladder.
    fn supported_mem_clocks(&self) -> Vec<FreqMhz>;

    /// The default (unlocked) memory clock.
    fn default_mem_clock(&self) -> FreqMhz;
}

/// Fetch the [`MemoryClocks`] capability or fail with
/// [`CoreError::MemoryClocksUnsupported`](crate::error::CoreError) — the
/// single gate every memory-sweeping phase goes through.
pub fn require_memory_clocks<P: Platform + ?Sized>(
    platform: &mut P,
) -> CoreResult<&mut dyn MemoryClocks> {
    platform
        .as_memory_clocks()
        .ok_or(crate::error::CoreError::MemoryClocksUnsupported)
}

/// Optional capability: the platform records ground-truth transitions.
///
/// Implemented by the simulator only — real hardware cannot know the true
/// switching latency (that is why the paper needs a methodology at all).
pub trait GroundTruth {
    /// All ground-truth transitions recorded so far.
    fn transitions(&self) -> Vec<TransitionGroundTruth>;

    /// The most recent ground-truth transition.
    fn last_transition(&self) -> Option<TransitionGroundTruth>;

    /// All ground-truth *memory-clock* transitions. Empty unless the
    /// backend also models a memory domain.
    fn mem_transitions(&self) -> Vec<TransitionGroundTruth> {
        Vec::new()
    }

    /// The most recent ground-truth memory-clock transition.
    fn last_mem_transition(&self) -> Option<TransitionGroundTruth> {
        None
    }
}

/// Builds fresh [`Platform`] instances for campaign workers.
///
/// The campaign schedules work at pair granularity and gives every pair its
/// own platform seeded from `(campaign seed, pair)`; this trait is how it
/// asks the backend for one.
pub trait PlatformFactory: Send + Sync {
    /// The platform type this factory builds.
    type Platform: Platform;

    /// Create a platform seeded with `seed`.
    fn create(&self, seed: u64) -> CoreResult<Self::Platform>;

    /// Name of the device the platforms will run on.
    fn device_name(&self) -> String;
}

/// One simulated machine: clock + device + NVML handle + CUDA context.
pub struct SimPlatform {
    /// The shared virtual clock.
    pub clock: SharedClock,
    /// NVML device handle.
    pub nvml: NvmlDevice,
    /// CUDA context on the same device.
    pub cuda: CudaContext,
    device: Arc<Mutex<GpuDevice>>,
}

impl SimPlatform {
    /// Build a platform over a single device.
    pub fn new(spec: DeviceSpec, seed: u64) -> CoreResult<SimPlatform> {
        let (nvml_lib, clock) = Nvml::with_devices(vec![spec], seed);
        let nvml = nvml_lib.device(0)?;
        let device = nvml_lib.raw_device(0)?;
        let cuda = CudaContext::new(clock.clone(), device.clone(), seed ^ 0xCAFE);
        Ok(SimPlatform {
            clock,
            nvml,
            cuda,
            device,
        })
    }

    /// Ground-truth transitions recorded by the device (closed-loop tests).
    pub fn ground_truth(&self) -> Vec<TransitionGroundTruth> {
        self.device.lock().transitions().to_vec()
    }

    /// The most recent ground-truth transition.
    pub fn last_ground_truth(&self) -> Option<TransitionGroundTruth> {
        self.device.lock().last_transition().copied()
    }

    /// The device's spec.
    pub fn spec(&self) -> DeviceSpec {
        self.device.lock().spec().clone()
    }
}

impl Platform for SimPlatform {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn sleep(&mut self, d: SimDuration) {
        self.cuda.usleep(d);
    }

    fn set_locked_clocks(&mut self, target: FreqMhz) -> CoreResult<FreqMhz> {
        Ok(self.nvml.set_gpu_locked_clocks(target)?)
    }

    fn reset_locked_clocks(&mut self) -> CoreResult<FreqMhz> {
        Ok(self.nvml.reset_gpu_locked_clocks()?)
    }

    fn current_clock(&mut self) -> FreqMhz {
        self.nvml.clock_info()
    }

    fn supported_clocks(&self) -> Vec<FreqMhz> {
        self.nvml.supported_graphics_clocks()
    }

    fn launch_benchmark(&mut self, config: KernelConfig) -> CoreResult<KernelId> {
        Ok(self.cuda.launch_benchmark(config)?)
    }

    fn synchronize(&mut self) -> SimTime {
        self.cuda.synchronize()
    }

    fn collect_records(&mut self, id: KernelId) -> CoreResult<TimerData> {
        Ok(self.cuda.copy_records(id)?)
    }

    fn synchronize_timers(&mut self, config: &SyncConfig) -> SyncResult {
        let mut probe = CudaProbe {
            cuda: &mut self.cuda,
        };
        synchronize(&mut probe, config)
    }

    fn throttle_reasons(&mut self) -> ThrottleReasons {
        self.nvml.throttle_reasons()
    }

    fn temperature_c(&mut self) -> f64 {
        self.nvml.temperature_c()
    }

    fn device_name(&self) -> String {
        self.nvml.name()
    }

    fn as_ground_truth(&self) -> Option<&dyn GroundTruth> {
        Some(self)
    }

    fn as_memory_clocks(&mut self) -> Option<&mut dyn MemoryClocks> {
        Some(self)
    }
}

impl GroundTruth for SimPlatform {
    fn transitions(&self) -> Vec<TransitionGroundTruth> {
        self.ground_truth()
    }

    fn last_transition(&self) -> Option<TransitionGroundTruth> {
        self.last_ground_truth()
    }

    fn mem_transitions(&self) -> Vec<TransitionGroundTruth> {
        self.device.lock().mem_transitions().to_vec()
    }

    fn last_mem_transition(&self) -> Option<TransitionGroundTruth> {
        self.device.lock().last_mem_transition().copied()
    }
}

impl MemoryClocks for SimPlatform {
    fn set_locked_mem_clocks(&mut self, target: FreqMhz) -> CoreResult<FreqMhz> {
        Ok(self.nvml.set_memory_locked_clocks(target)?)
    }

    fn reset_locked_mem_clocks(&mut self) -> CoreResult<FreqMhz> {
        Ok(self.nvml.reset_memory_locked_clocks()?)
    }

    fn current_mem_clock(&mut self) -> FreqMhz {
        self.nvml.mem_clock_info()
    }

    fn supported_mem_clocks(&self) -> Vec<FreqMhz> {
        self.nvml.supported_memory_clocks()
    }

    fn default_mem_clock(&self) -> FreqMhz {
        self.device.lock().spec().mem_default()
    }
}

/// Factory for [`SimPlatform`]s over one device spec.
#[derive(Clone, Debug)]
pub struct SimPlatformFactory {
    spec: DeviceSpec,
}

impl SimPlatformFactory {
    /// Build platforms for `spec`.
    pub fn new(spec: DeviceSpec) -> Self {
        SimPlatformFactory { spec }
    }

    /// The device spec platforms are built from.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }
}

impl PlatformFactory for SimPlatformFactory {
    type Platform = SimPlatform;

    fn create(&self, seed: u64) -> CoreResult<SimPlatform> {
        SimPlatform::new(self.spec.clone(), seed)
    }

    fn device_name(&self) -> String {
        self.spec.name.clone()
    }
}

/// Adapter: the CUDA globaltimer round trip as a PTP probe.
struct CudaProbe<'a> {
    cuda: &'a mut CudaContext,
}

impl TimestampProbe for CudaProbe<'_> {
    fn exchange(
        &mut self,
    ) -> (
        latest_sim_clock::SimTime,
        latest_sim_clock::SimTime,
        latest_sim_clock::SimTime,
    ) {
        self.cuda.read_globaltimer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;

    #[test]
    fn platform_wires_one_device() {
        let p = SimPlatform::new(devices::a100_sxm4(), 7).unwrap();
        assert!(p.nvml.name().contains("A100"));
        assert_eq!(p.cuda.clock().now(), p.clock.now());
        assert!(p.ground_truth().is_empty());
    }

    #[test]
    fn timer_sync_recovers_device_offset() {
        let spec = devices::a100_sxm4();
        let true_offset = spec.timer_offset_ns;
        let mut p = SimPlatform::new(spec, 11).unwrap();
        let sync = p.synchronize_timers(&SyncConfig::default());
        // Drift over the first few ms is negligible; the estimate must land
        // within the reported uncertainty of the configured skew.
        let err = (sync.offset_ns - true_offset).unsigned_abs();
        assert!(
            err <= sync.uncertainty_ns + 2_000,
            "sync err {err} ns vs bound {}",
            sync.uncertainty_ns
        );
    }

    #[test]
    fn ground_truth_appears_after_clock_request() {
        let mut p = SimPlatform::new(devices::a100_sxm4(), 3).unwrap();
        p.nvml
            .set_gpu_locked_clocks(latest_gpu_sim::freq::FreqMhz(705))
            .unwrap();
        assert_eq!(p.ground_truth().len(), 1);
        assert_eq!(p.last_ground_truth().unwrap().to.0, 705);
    }

    /// The methodology's contract: every phase sees the simulator only
    /// through the trait, and the ground-truth capability is discoverable.
    #[test]
    fn trait_surface_matches_facades() {
        let mut p = SimPlatform::new(devices::a100_sxm4(), 5).unwrap();
        assert!(Platform::device_name(&p).contains("A100"));
        assert_eq!(p.supported_clocks().len(), 81);
        let snapped = p.set_locked_clocks(FreqMhz(1001)).unwrap();
        assert_eq!(snapped, FreqMhz(1005));
        let gt = p.as_ground_truth().expect("simulator offers ground truth");
        assert_eq!(gt.last_transition().unwrap().to, FreqMhz(1005));
        let t0 = Platform::now(&p);
        p.sleep(SimDuration::from_micros(250));
        assert_eq!(
            Platform::now(&p).saturating_since(t0),
            SimDuration::from_micros(250)
        );
    }

    /// The memory domain is a discoverable capability, mirrored onto its
    /// own ground-truth ledger — core transitions never leak into it.
    #[test]
    fn memory_clock_capability_is_discoverable_and_separate() {
        let mut p = SimPlatform::new(devices::a100_sxm4(), 13).unwrap();
        let default_mem = {
            let mc = p.as_memory_clocks().expect("simulator offers mem clocks");
            assert_eq!(mc.supported_mem_clocks().len(), 3);
            mc.default_mem_clock()
        };
        assert_eq!(default_mem, FreqMhz(1215));
        {
            let mc = p.as_memory_clocks().unwrap();
            let snapped = mc.set_locked_mem_clocks(FreqMhz(820)).unwrap();
            assert_eq!(snapped, FreqMhz(810));
        }
        p.set_locked_clocks(FreqMhz(705)).unwrap();
        let gt = p.as_ground_truth().unwrap();
        assert_eq!(gt.transitions().len(), 1);
        assert_eq!(gt.mem_transitions().len(), 1);
        assert_eq!(gt.last_transition().unwrap().to, FreqMhz(705));
        assert_eq!(gt.last_mem_transition().unwrap().to, FreqMhz(810));
    }

    #[test]
    fn factory_builds_seeded_platforms() {
        let factory = SimPlatformFactory::new(devices::gh200());
        assert!(factory.device_name().contains("GH200"));
        let mut a = factory.create(9).unwrap();
        let mut b = factory.create(9).unwrap();
        // Same seed, same behaviour: the first control call lands at the
        // same virtual instant on both instances.
        a.set_locked_clocks(FreqMhz(1980)).unwrap();
        b.set_locked_clocks(FreqMhz(1980)).unwrap();
        let (ga, gb) = (
            a.last_ground_truth().unwrap(),
            b.last_ground_truth().unwrap(),
        );
        assert_eq!(ga.device_arrival, gb.device_arrival);
    }
}
