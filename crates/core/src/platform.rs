//! The platform layer: one simulated GPU wired up behind the NVML and CUDA
//! façades, plus the PTP probe adapter.
//!
//! On real hardware the analogous layer is "the machine": one NVML handle
//! and one CUDA context sharing a physical device. Here both façades share
//! one [`GpuDevice`](latest_gpu_sim::GpuDevice) and one virtual clock. The
//! campaign creates a *fresh* platform per frequency pair (seeded from the
//! pair) so pairs can run in parallel with bitwise-reproducible results.

use std::sync::Arc;

use latest_clock_sync::{synchronize, SyncConfig, SyncResult, TimestampProbe};
use latest_cuda_sim::CudaContext;
use latest_gpu_sim::devices::DeviceSpec;
use latest_gpu_sim::transition::TransitionGroundTruth;
use latest_gpu_sim::GpuDevice;
use latest_nvml_sim::{Nvml, NvmlDevice};
use latest_sim_clock::SharedClock;
use parking_lot::Mutex;

use crate::error::CoreResult;

/// One simulated machine: clock + device + NVML handle + CUDA context.
pub struct SimPlatform {
    /// The shared virtual clock.
    pub clock: SharedClock,
    /// NVML device handle.
    pub nvml: NvmlDevice,
    /// CUDA context on the same device.
    pub cuda: CudaContext,
    device: Arc<Mutex<GpuDevice>>,
}

impl SimPlatform {
    /// Build a platform over a single device.
    pub fn new(spec: DeviceSpec, seed: u64) -> CoreResult<SimPlatform> {
        let (nvml_lib, clock) = Nvml::with_devices(vec![spec], seed);
        let nvml = nvml_lib.device(0)?;
        let device = nvml_lib.raw_device(0)?;
        let cuda = CudaContext::new(clock.clone(), device.clone(), seed ^ 0xCAFE);
        Ok(SimPlatform { clock, nvml, cuda, device })
    }

    /// Run an IEEE 1588 synchronisation over the CUDA globaltimer probe.
    pub fn synchronize_timers(&mut self, config: &SyncConfig) -> SyncResult {
        let mut probe = CudaProbe { cuda: &mut self.cuda };
        synchronize(&mut probe, config)
    }

    /// Ground-truth transitions recorded by the device (closed-loop tests).
    pub fn ground_truth(&self) -> Vec<TransitionGroundTruth> {
        self.device.lock().transitions().to_vec()
    }

    /// The most recent ground-truth transition.
    pub fn last_ground_truth(&self) -> Option<TransitionGroundTruth> {
        self.device.lock().last_transition().copied()
    }

    /// The device's spec.
    pub fn spec(&self) -> DeviceSpec {
        self.device.lock().spec().clone()
    }
}

/// Adapter: the CUDA globaltimer round trip as a PTP probe.
struct CudaProbe<'a> {
    cuda: &'a mut CudaContext,
}

impl TimestampProbe for CudaProbe<'_> {
    fn exchange(&mut self) -> (latest_sim_clock::SimTime, latest_sim_clock::SimTime, latest_sim_clock::SimTime) {
        self.cuda.read_globaltimer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;

    #[test]
    fn platform_wires_one_device() {
        let p = SimPlatform::new(devices::a100_sxm4(), 7).unwrap();
        assert!(p.nvml.name().contains("A100"));
        assert_eq!(p.cuda.clock().now(), p.clock.now());
        assert!(p.ground_truth().is_empty());
    }

    #[test]
    fn timer_sync_recovers_device_offset() {
        let spec = devices::a100_sxm4();
        let true_offset = spec.timer_offset_ns;
        let mut p = SimPlatform::new(spec, 11).unwrap();
        let sync = p.synchronize_timers(&SyncConfig::default());
        // Drift over the first few ms is negligible; the estimate must land
        // within the reported uncertainty of the configured skew.
        let err = (sync.offset_ns - true_offset).unsigned_abs();
        assert!(
            err <= sync.uncertainty_ns + 2_000,
            "sync err {err} ns vs bound {}",
            sync.uncertainty_ns
        );
    }

    #[test]
    fn ground_truth_appears_after_clock_request() {
        let mut p = SimPlatform::new(devices::a100_sxm4(), 3).unwrap();
        p.nvml
            .set_gpu_locked_clocks(latest_gpu_sim::freq::FreqMhz(705))
            .unwrap();
        assert_eq!(p.ground_truth().len(), 1);
        assert_eq!(p.last_ground_truth().unwrap().to.0, 705);
    }
}
