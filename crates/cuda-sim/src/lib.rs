//! A CUDA-runtime-shaped host façade over the simulated GPU.
//!
//! LATEST's device-side needs are small but precise: launch the
//! microbenchmark kernel asynchronously, sleep while it runs, synchronise,
//! and copy per-SM timer records back to the host. It additionally needs a
//! way to read the device `%globaltimer` for IEEE 1588 synchronisation.
//! This crate models exactly those operations with realistic host-side
//! costs:
//!
//! * [`CudaContext::launch_benchmark`] — ~10 µs asynchronous launch
//!   overhead, single in-order stream semantics;
//! * [`CudaContext::synchronize`] — blocks (advances virtual time) until all
//!   queued kernels complete;
//! * [`CudaContext::copy_records`] — D2H copy paid at PCIe/NVLink-class
//!   bandwidth, proportional to the record volume;
//! * [`CudaContext::read_globaltimer`] — a tiny timestamp kernel round trip
//!   returning `(host_before, device_stamp, host_after)`, the exchange
//!   primitive the PTP synchroniser filters over.

use std::sync::Arc;

use latest_gpu_sim::sm::IterRecord;
use latest_gpu_sim::{GpuDevice, KernelConfig, KernelId, LaunchError};
use latest_sim_clock::{SharedClock, SimDuration, SimTime};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Errors from the CUDA façade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CudaError {
    /// Launch rejected by the device.
    Launch(LaunchError),
    /// The kernel id is unknown, unfinished, or its records were already
    /// consumed.
    NoRecords(KernelId),
}

impl std::fmt::Display for CudaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CudaError::Launch(e) => write!(f, "kernel launch failed: {e}"),
            CudaError::NoRecords(id) => write!(f, "no records available for kernel {id:?}"),
        }
    }
}

impl std::error::Error for CudaError {}

/// Per-SM timer records copied back to the host.
pub type TimerData = Vec<Vec<IterRecord>>;

/// Host-side CUDA context bound to one device.
pub struct CudaContext {
    clock: SharedClock,
    device: Arc<Mutex<GpuDevice>>,
    rng: ChaCha8Rng,
    /// Effective D2H bandwidth for record copies (bytes/s).
    d2h_bandwidth: f64,
    /// Fixed launch overhead distribution bounds (µs).
    launch_overhead_us: (f64, f64),
}

impl CudaContext {
    /// Bind a context to a device sharing `clock`.
    pub fn new(clock: SharedClock, device: Arc<Mutex<GpuDevice>>, seed: u64) -> Self {
        CudaContext {
            clock,
            device,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xC0DA),
            d2h_bandwidth: 20e9, // ~PCIe gen4 x16 effective
            launch_overhead_us: (8.0, 18.0),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Host sleep (`usleep`): advances virtual time. LATEST sleeps between
    /// kernel launch and the frequency-change call to accumulate
    /// initial-frequency iterations.
    pub fn usleep(&self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Asynchronously launch the benchmark kernel (returns after the launch
    /// overhead, *not* after completion).
    pub fn launch_benchmark(&mut self, config: KernelConfig) -> Result<KernelId, CudaError> {
        let overhead_us = self
            .rng
            .gen_range(self.launch_overhead_us.0..self.launch_overhead_us.1);
        let enqueue = self
            .clock
            .advance(SimDuration::from_nanos((overhead_us * 1e3) as u64));
        self.device
            .lock()
            .enqueue_kernel(enqueue, config)
            .map_err(CudaError::Launch)
    }

    /// `cudaDeviceSynchronize`: block until every queued kernel finishes.
    /// Returns the completion time.
    pub fn synchronize(&mut self) -> SimTime {
        let now = self.clock.now();
        let completion = self.device.lock().synchronize(now);
        // Synchronisation itself has a small host-side exit cost.
        let exit_us: f64 = self.rng.gen_range(3.0..10.0);
        self.clock.advance_to(completion);
        self.clock
            .advance(SimDuration::from_nanos((exit_us * 1e3) as u64))
    }

    /// Copy a finished kernel's records to the host (D2H memcpy), paying
    /// bandwidth-proportional time.
    pub fn copy_records(&mut self, id: KernelId) -> Result<TimerData, CudaError> {
        let records = self
            .device
            .lock()
            .take_records(id)
            .ok_or(CudaError::NoRecords(id))?;
        let bytes: usize = records
            .iter()
            .map(|sm| sm.len() * std::mem::size_of::<IterRecord>())
            .sum();
        let secs = bytes as f64 / self.d2h_bandwidth + 5e-6; // + fixed setup
        self.clock.advance(SimDuration::from_secs_f64(secs));
        Ok(records)
    }

    /// One `%globaltimer` read round trip: launches a single-timestamp
    /// kernel and returns `(host_before, device_stamp, host_after)`.
    ///
    /// The device stamp is taken somewhere inside the (asymmetric) round
    /// trip; the PTP layer bounds the offset error by the round-trip width.
    pub fn read_globaltimer(&mut self) -> (SimTime, SimTime, SimTime) {
        let host_before = self.clock.now();
        // Outbound: launch latency until the kernel's timestamp instruction
        // retires on the device.
        let out_us: f64 = self.rng.gen_range(6.0..20.0);
        let stamp_global = self
            .clock
            .advance(SimDuration::from_nanos((out_us * 1e3) as u64));
        let device_stamp = self.device.lock().timer().project(stamp_global);
        // Return path: completion signal + host wakeup.
        let back_us: f64 = self.rng.gen_range(4.0..15.0);
        let host_after = self
            .clock
            .advance(SimDuration::from_nanos((back_us * 1e3) as u64));
        (host_before, device_stamp, host_after)
    }

    /// Project a global instant onto this device's timer (what a kernel
    /// reading `%globaltimer` at that instant would see). Exposed for
    /// closed-loop validation.
    pub fn device_timer_at(&self, t: SimTime) -> SimTime {
        self.device.lock().timer().project(t)
    }

    /// The underlying device.
    pub fn raw(&self) -> Arc<Mutex<GpuDevice>> {
        self.device.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;
    use latest_gpu_sim::freq::FreqMhz;
    use latest_gpu_sim::sm::WorkloadParams;
    use latest_gpu_sim::transition::FixedTransition;

    fn make_ctx() -> (CudaContext, SharedClock) {
        let clock = SharedClock::new();
        let mut spec = devices::a100_sxm4();
        spec.wakeup_ramp = SimDuration::ZERO;
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(5),
        });
        let device = Arc::new(Mutex::new(GpuDevice::new(spec, 3, clock.clone())));
        (CudaContext::new(clock.clone(), device, 3), clock)
    }

    fn small_kernel() -> KernelConfig {
        KernelConfig {
            iters_per_sm: 200,
            workload: WorkloadParams::default_micro(),
            simulated_sms: Some(2),
        }
    }

    #[test]
    fn launch_is_asynchronous() {
        let (mut ctx, clock) = make_ctx();
        let t0 = clock.now();
        let _id = ctx.launch_benchmark(small_kernel()).unwrap();
        let launch_cost = clock.now().saturating_since(t0);
        // Launch returns in tens of microseconds, far less than the ~20 ms
        // the kernel itself needs.
        assert!(
            launch_cost < SimDuration::from_micros(100),
            "launch {launch_cost}"
        );
    }

    #[test]
    fn synchronize_advances_to_completion() {
        let (mut ctx, clock) = make_ctx();
        {
            let dev = ctx.raw();
            let mut d = dev.lock();
            d.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1005));
        }
        clock.advance(SimDuration::from_millis(100));
        let id = ctx.launch_benchmark(small_kernel()).unwrap();
        let done = ctx.synchronize();
        // 200 iterations of ~100 us at ~1 GHz is ~20 ms.
        let elapsed = done.saturating_since(SimTime::from_millis(100));
        assert!(
            elapsed >= SimDuration::from_millis(15) && elapsed <= SimDuration::from_millis(40),
            "elapsed {elapsed}"
        );
        let records = ctx.copy_records(id).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].len(), 200);
    }

    #[test]
    fn copy_records_pays_bandwidth_and_consumes() {
        let (mut ctx, clock) = make_ctx();
        let id = ctx.launch_benchmark(small_kernel()).unwrap();
        ctx.synchronize();
        let before = clock.now();
        let _ = ctx.copy_records(id).unwrap();
        assert!(clock.now() > before);
        assert_eq!(ctx.copy_records(id), Err(CudaError::NoRecords(id)));
    }

    #[test]
    fn usleep_advances_exactly() {
        let (ctx, clock) = make_ctx();
        let t0 = clock.now();
        ctx.usleep(SimDuration::from_micros(1500));
        assert_eq!(
            clock.now().saturating_since(t0),
            SimDuration::from_micros(1500)
        );
    }

    #[test]
    fn globaltimer_roundtrip_brackets_device_stamp() {
        let (mut ctx, _clock) = make_ctx();
        for _ in 0..20 {
            let (before, stamp, after) = ctx.read_globaltimer();
            assert!(after > before);
            // The device stamp, mapped back to the global timeline, must lie
            // within the round trip.
            let spec_offset = 7_340_000i64; // a100 spec timer offset
            let approx_global = stamp.offset_by(-spec_offset);
            assert!(
                approx_global >= before && approx_global <= after,
                "stamp outside round trip"
            );
            // Quantised to the 1 us globaltimer resolution.
            assert_eq!(stamp.as_nanos() % 1_000, 0);
        }
    }

    #[test]
    fn empty_kernel_launch_fails() {
        let (mut ctx, _) = make_ctx();
        let cfg = KernelConfig {
            iters_per_sm: 0,
            workload: WorkloadParams::default_micro(),
            simulated_sms: Some(1),
        };
        assert!(matches!(
            ctx.launch_benchmark(cfg),
            Err(CudaError::Launch(LaunchError::EmptyKernel))
        ));
    }
}
