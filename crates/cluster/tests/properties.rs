//! Property-based tests for the clustering substrate (DBSCAN, k-NN,
//! silhouette, the Algorithm-3 adaptive filter).

use latest_cluster::{
    adaptive_outlier_filter, average_knn_distance, kth_neighbor_distances, silhouette_score_1d,
    AdaptiveConfig, Dbscan, Label,
};
use proptest::prelude::*;

/// Latency-like positive data: a dense cluster with optional spread.
fn clustered(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(10.0..12.0f64, min_len..150)
}

fn arbitrary(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0e4f64, min_len..150)
}

proptest! {
    // --- DBSCAN -------------------------------------------------------------

    #[test]
    fn labels_partition_the_data(xs in arbitrary(1), eps in 0.1..100.0f64, min_pts in 1usize..10) {
        let labeling = Dbscan::new(eps, min_pts).fit_1d(&xs);
        prop_assert_eq!(labeling.labels.len(), xs.len());
        // Every point is either noise or belongs to a valid cluster id.
        for l in &labeling.labels {
            match l {
                Label::Noise => {}
                Label::Cluster(c) => prop_assert!(*c < labeling.n_clusters),
            }
        }
        // Every advertised cluster is non-empty.
        let sizes = labeling.cluster_sizes();
        prop_assert_eq!(sizes.len(), labeling.n_clusters);
        for s in sizes {
            prop_assert!(s > 0);
        }
    }

    #[test]
    fn huge_eps_yields_single_cluster(xs in arbitrary(3)) {
        // With eps spanning the whole data range and min_pts = 2, all points
        // are mutually reachable: one cluster, zero noise.
        let span = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        let labeling = Dbscan::new(span + 1.0, 2).fit_1d(&xs);
        prop_assert_eq!(labeling.n_clusters, 1);
        prop_assert_eq!(labeling.noise_count(), 0);
    }

    #[test]
    fn tiny_eps_high_minpts_yields_all_noise(xs in arbitrary(2)) {
        // min_pts above the dataset size: nothing can be a core point.
        let labeling = Dbscan::new(1e-12, xs.len() + 1).fit_1d(&xs);
        prop_assert_eq!(labeling.n_clusters, 0);
        prop_assert_eq!(labeling.noise_count(), xs.len());
        prop_assert!((labeling.noise_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dbscan_is_permutation_invariant_in_counts(xs in arbitrary(4), eps in 0.5..50.0f64) {
        let a = Dbscan::new(eps, 3).fit_1d(&xs);
        let mut rev = xs.clone();
        rev.reverse();
        let b = Dbscan::new(eps, 3).fit_1d(&rev);
        prop_assert_eq!(a.n_clusters, b.n_clusters);
        prop_assert_eq!(a.noise_count(), b.noise_count());
        let mut sa = a.cluster_sizes();
        let mut sb = b.cluster_sizes();
        sa.sort_unstable();
        sb.sort_unstable();
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn scaling_data_and_eps_preserves_labels(xs in arbitrary(3), eps in 0.5..50.0f64, k in 0.01..100.0f64) {
        let a = Dbscan::new(eps, 3).fit_1d(&xs);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let b = Dbscan::new(eps * k, 3).fit_1d(&scaled);
        prop_assert_eq!(a.n_clusters, b.n_clusters);
        prop_assert_eq!(a.noise_count(), b.noise_count());
    }

    // --- k-NN ----------------------------------------------------------------

    #[test]
    fn knn_distances_are_nonnegative_and_bounded_by_span(xs in arbitrary(3), k in 1usize..5) {
        let k = k.min(xs.len() - 1).max(1);
        let d = kth_neighbor_distances(&xs, k);
        prop_assert_eq!(d.len(), xs.len());
        let span = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        for v in &d {
            prop_assert!(*v >= 0.0 && *v <= span + 1e-9);
        }
    }

    #[test]
    fn knn_distance_grows_with_k(xs in arbitrary(5)) {
        let k1 = average_knn_distance(&xs, 1);
        let k3 = average_knn_distance(&xs, 3.min(xs.len() - 1));
        prop_assert!(k3 >= k1 - 1e-12);
    }

    // --- silhouette ------------------------------------------------------------

    #[test]
    fn silhouette_is_bounded(xs in arbitrary(6), eps in 0.5..200.0f64) {
        let labeling = Dbscan::new(eps, 2).fit_1d(&xs);
        if let Some(s) = silhouette_score_1d(&xs, &labeling) {
            prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s}");
        }
    }

    #[test]
    fn well_separated_clusters_score_high(
        a in prop::collection::vec(0.0..1.0f64, 5..40),
        b in prop::collection::vec(1000.0..1001.0f64, 5..40),
    ) {
        let mut xs = a.clone();
        xs.extend_from_slice(&b);
        let labeling = Dbscan::new(5.0, 3).fit_1d(&xs);
        prop_assert_eq!(labeling.n_clusters, 2);
        let s = silhouette_score_1d(&xs, &labeling).expect("two clusters scored");
        prop_assert!(s > 0.9, "silhouette {s} for 1000x-separated clusters");
    }

    // --- Algorithm 3 (adaptive filter) ------------------------------------------

    #[test]
    fn adaptive_filter_conserves_points(xs in clustered(30)) {
        if let Some(outcome) = adaptive_outlier_filter(&xs, &AdaptiveConfig::default()) {
            let inliers = outcome.inliers(&xs);
            let outliers = outcome.outliers(&xs);
            prop_assert_eq!(inliers.len() + outliers.len(), xs.len());
        }
    }

    #[test]
    fn adaptive_filter_keeps_outliers_below_the_halt_ratio(xs in clustered(30)) {
        if let Some(outcome) = adaptive_outlier_filter(&xs, &AdaptiveConfig::default()) {
            if outcome.converged {
                let ratio = outcome.outliers(&xs).len() as f64 / xs.len() as f64;
                prop_assert!(ratio <= 0.10 + 1e-9, "outlier ratio {ratio}");
            }
        }
    }

    #[test]
    fn tight_cluster_with_injected_extremes_flags_only_extremes(
        xs in prop::collection::vec(10.0..11.0f64, 50..120),
        spikes in prop::collection::vec(500.0..1000.0f64, 1..4),
    ) {
        let mut data = xs.clone();
        data.extend_from_slice(&spikes);
        if let Some(outcome) = adaptive_outlier_filter(&data, &AdaptiveConfig::default()) {
            let outliers = outcome.outliers(&data);
            // Every flagged point is one of the spikes — the dense cluster
            // must never lose points to the filter.
            for o in &outliers {
                prop_assert!(*o >= 500.0, "dense-cluster point {o} flagged as outlier");
            }
            prop_assert_eq!(outliers.len(), spikes.len());
        }
    }
}
