//! Density-based clustering for switching-latency outlier analysis.
//!
//! Section V-C of the paper filters outlier measurements (CUDA driver
//! management, CPU-side interruptions, monitoring daemons) from each
//! frequency-pair dataset with DBSCAN, using an *adaptive* parameter-selection
//! loop (Algorithm 3):
//!
//! * `eps` is a multiple of the 0.05–0.95 quantile range of the latencies,
//! * `minPts` walks down from 4 % to 2 % of the dataset size in steps of two,
//! * the loop stops as soon as fewer than 10 % of points are labelled noise.
//!
//! This crate provides, from scratch:
//!
//! * [`dbscan::Dbscan`] — DBSCAN with an exact O(n log n) 1-D neighbourhood
//!   path (the latency datasets are one-dimensional) and a generic
//!   multi-dimensional fallback,
//! * [`knn`] — k-nearest-neighbour distance profiles and the knee-point
//!   heuristic conventionally used to choose `eps`,
//! * [`silhouette`] — the silhouette score the paper uses to validate that
//!   multi-cluster pairs are genuinely separated (score > 0.4, avg 0.84),
//! * [`adaptive`] — Algorithm 3 itself.

pub mod adaptive;
pub mod dbscan;
pub mod knn;
pub mod silhouette;

pub use adaptive::{adaptive_outlier_filter, AdaptiveConfig, AdaptiveOutcome};
pub use dbscan::{Dbscan, Label, Labeling};
pub use knn::{average_knn_distance, knee_index, kth_neighbor_distances};
pub use silhouette::silhouette_score_1d;
