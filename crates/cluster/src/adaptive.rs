//! Algorithm 3: iterative DBSCAN outlier detection with adaptive parameters.
//!
//! The paper's adaptive loop:
//!
//! ```text
//! Input : data, m
//! start = ceil(0.04 * dataset.len());
//! end   = floor(0.02 * dataset.len());
//! for i = start; i > end; i = i - 2 do
//!     r = mult * quantile_range(data, 0.05, 0.95);
//!     dbscan = DBSCAN(eps = r, minPts = i);
//!     dbscan.fit(data);
//!     noiseRatio = |noise| / |data|;
//!     if noiseRatio > 0.1 then continue;
//!     break;
//! ```
//!
//! `minPts` walks from 4 % down to 2 % of the dataset in steps of two,
//! halting as soon as fewer than 10 % of the measurements are flagged as
//! outliers (larger flagged fractions are considered "false outliers").
//! The experimental setup in Sec. VII used minPts 8→15 decreasing by 2 and
//! `mult = 0.15`, which this module reproduces as defaults for the paper's
//! dataset sizes (a few hundred measurements per pair).

use crate::dbscan::{Dbscan, Labeling};
use latest_stats::quantile_range;

/// Configuration for the adaptive filter.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Multiplier `m` applied to the 0.05–0.95 quantile range to obtain eps
    /// (0.15 in the paper's experiments).
    pub eps_multiplier: f64,
    /// Upper minPts bound as a fraction of the dataset (0.04 in Alg. 3).
    pub min_pts_hi_frac: f64,
    /// Lower minPts bound as a fraction of the dataset (0.02 in Alg. 3).
    pub min_pts_lo_frac: f64,
    /// Acceptable outlier fraction (0.10 in Alg. 3).
    pub max_noise_ratio: f64,
    /// Step by which minPts decreases (2 in Alg. 3).
    pub min_pts_step: usize,
    /// Hard floor for minPts: the "dimensionality + 1" DBSCAN guideline, and
    /// a guard for tiny datasets where 2 % rounds to zero.
    pub min_pts_floor: usize,
    /// When the minPts descent alone cannot reach `max_noise_ratio` (on
    /// small datasets the 2–4 % bounds collapse onto the floor and leave a
    /// single attempt), eps is widened by this factor and the descent
    /// re-run. Algorithm 3's stated goal is the noise target; widening the
    /// neighbourhood is the standard DBSCAN lever left once minPts is
    /// exhausted.
    pub eps_growth: f64,
    /// Maximum eps-widening rounds after the initial one (0 disables).
    pub max_eps_rounds: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            eps_multiplier: 0.15,
            min_pts_hi_frac: 0.04,
            min_pts_lo_frac: 0.02,
            max_noise_ratio: 0.10,
            min_pts_step: 2,
            min_pts_floor: 4,
            eps_growth: 1.5,
            max_eps_rounds: 4,
        }
    }
}

/// Result of the adaptive outlier filter.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// The accepted labeling (last DBSCAN run).
    pub labeling: Labeling,
    /// The eps actually used.
    pub eps: f64,
    /// The minPts of the accepted run.
    pub min_pts: usize,
    /// Whether the loop found a run meeting the noise-ratio target (if false,
    /// the returned labeling is the final attempt and callers should treat
    /// the dataset as pathological).
    pub converged: bool,
    /// Number of DBSCAN runs performed.
    pub attempts: usize,
}

impl AdaptiveOutcome {
    /// The inlier (non-noise) values, in input order.
    pub fn inliers(&self, data: &[f64]) -> Vec<f64> {
        data.iter()
            .zip(&self.labeling.labels)
            .filter(|(_, l)| !l.is_noise())
            .map(|(&x, _)| x)
            .collect()
    }

    /// The outlier values, in input order.
    pub fn outliers(&self, data: &[f64]) -> Vec<f64> {
        data.iter()
            .zip(&self.labeling.labels)
            .filter(|(_, l)| l.is_noise())
            .map(|(&x, _)| x)
            .collect()
    }
}

/// Run Algorithm 3 on a switching-latency dataset.
///
/// Returns `None` for datasets too small to cluster meaningfully (fewer than
/// `2 * min_pts_floor` points) or with a degenerate (zero or non-finite)
/// quantile range, in which case callers keep all measurements.
pub fn adaptive_outlier_filter(data: &[f64], config: &AdaptiveConfig) -> Option<AdaptiveOutcome> {
    let n = data.len();
    if n < config.min_pts_floor * 2 {
        return None;
    }
    let range = quantile_range(data, 0.05, 0.95);
    if !range.is_finite() || range <= 0.0 {
        return None;
    }
    let base_eps = config.eps_multiplier * range;

    let start = ((config.min_pts_hi_frac * n as f64).ceil() as usize).max(config.min_pts_floor);
    let end = ((config.min_pts_lo_frac * n as f64).floor() as usize).max(config.min_pts_floor - 1);

    // Eps widening only applies where the minPts descent is degenerate —
    // small datasets whose 2-4 % bounds collapse onto the floor, leaving it
    // one or two attempts. On large datasets the descent has real room, and
    // widening eps there could merge legitimately distinct latency clusters
    // (the tight multi-modal structure of Fig. 5 survives precisely because
    // eps stays at 0.15 x the quantile range).
    let descent_degenerate = start <= config.min_pts_floor + config.min_pts_step;
    let eps_rounds = if descent_degenerate {
        config.max_eps_rounds
    } else {
        0
    };

    let mut attempts = 0usize;
    let mut last: Option<(Labeling, usize, f64)> = None;
    let mut eps = base_eps;
    for round in 0..=eps_rounds {
        if round > 0 {
            eps *= config.eps_growth.max(1.0 + f64::EPSILON);
        }
        let mut min_pts = start;
        // `for i = start; i > end; i -= step`, with a floor guard.
        while min_pts > end && min_pts >= config.min_pts_floor {
            let labeling = Dbscan::new(eps, min_pts).fit_1d(data);
            attempts += 1;
            if labeling.noise_ratio() <= config.max_noise_ratio {
                return Some(AdaptiveOutcome {
                    labeling,
                    eps,
                    min_pts,
                    converged: true,
                    attempts,
                });
            }
            last = Some((labeling, min_pts, eps));
            if min_pts < config.min_pts_step {
                break;
            }
            min_pts -= config.min_pts_step;
        }
    }

    last.map(|(labeling, min_pts, eps)| AdaptiveOutcome {
        labeling,
        eps,
        min_pts,
        converged: false,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A paper-like dataset: one dominant latency cluster, a secondary mode,
    /// and a few percent of extreme outliers.
    fn latency_like(n_main: usize, n_secondary: usize, n_outliers: usize) -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..n_main {
            v.push(15.0 + ((i * 37) % 100) as f64 * 0.01);
        }
        for i in 0..n_secondary {
            v.push(21.0 + ((i * 53) % 100) as f64 * 0.01);
        }
        for i in 0..n_outliers {
            v.push(200.0 + (i as f64) * 45.0);
        }
        v
    }

    #[test]
    fn paper_defaults_on_typical_pair_dataset() {
        // ~300 measurements as in "several hundreds of switching latency
        // measurements" per pair.
        let data = latency_like(270, 25, 5);
        let out = adaptive_outlier_filter(&data, &AdaptiveConfig::default()).unwrap();
        assert!(out.converged);
        assert!(out.labeling.noise_ratio() <= 0.10);
        // The extreme values must be flagged.
        let outliers = out.outliers(&data);
        assert!(outliers.len() >= 5, "outliers: {outliers:?}");
        assert!(outliers.iter().all(|&x| x >= 200.0));
        // minPts within the paper's reported adaptive window for n = 300:
        // ceil(0.04*300) = 12 down to floor(0.02*300) = 6.
        assert!((6..=12).contains(&out.min_pts), "min_pts = {}", out.min_pts);
    }

    #[test]
    fn clean_dataset_flags_nothing() {
        let data = latency_like(300, 0, 0);
        let out = adaptive_outlier_filter(&data, &AdaptiveConfig::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.labeling.noise_count(), 0);
        assert_eq!(out.inliers(&data).len(), data.len());
        // Should accept on the very first attempt.
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn multi_cluster_pairs_are_preserved() {
        // GH200-style: several separated latency clusters, all legitimate.
        let mut data = Vec::new();
        for c in 0..5 {
            let base = 10.0 + c as f64 * 60.0;
            for i in 0..60 {
                data.push(base + ((i * 31) % 50) as f64 * 0.02);
            }
        }
        let out = adaptive_outlier_filter(&data, &AdaptiveConfig::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.labeling.n_clusters, 5);
        assert!(out.labeling.noise_ratio() <= 0.10);
    }

    #[test]
    fn tiny_dataset_returns_none() {
        assert!(adaptive_outlier_filter(&[1.0, 2.0, 3.0], &AdaptiveConfig::default()).is_none());
    }

    #[test]
    fn degenerate_constant_dataset_returns_none() {
        let data = vec![5.0; 100];
        assert!(adaptive_outlier_filter(&data, &AdaptiveConfig::default()).is_none());
    }

    #[test]
    fn nonconvergent_dataset_reports_converged_false() {
        // Uniformly spread data at a scale where eps = 0.15 * range creates
        // fragmented neighbourhoods: force minPts high via config so nothing
        // clusters.
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 10.0).collect();
        let config = AdaptiveConfig {
            eps_multiplier: 0.001,
            ..AdaptiveConfig::default()
        };
        let out = adaptive_outlier_filter(&data, &config).unwrap();
        assert!(!out.converged);
        assert_eq!(out.labeling.noise_ratio(), 1.0);
        assert!(out.attempts >= 1);
    }

    #[test]
    fn outlier_plus_inlier_partition_is_total() {
        let data = latency_like(200, 40, 8);
        let out = adaptive_outlier_filter(&data, &AdaptiveConfig::default()).unwrap();
        assert_eq!(
            out.inliers(&data).len() + out.outliers(&data).len(),
            data.len()
        );
    }
}
