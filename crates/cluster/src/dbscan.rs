//! DBSCAN (Ester et al. 1996) with a fast exact path for 1-D data.
//!
//! Switching-latency datasets are one-dimensional, so ε-neighbourhoods are
//! contiguous ranges of the sorted data and can be found with two binary
//! searches — O(n log n) overall instead of the naive O(n²). A generic
//! multi-dimensional implementation is provided for completeness and as a
//! cross-check in tests.

/// Cluster assignment of one point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Low-density point: an outlier measurement.
    Noise,
    /// Member of the cluster with the given id (0-based, densest-first order
    /// is *not* guaranteed; ids follow discovery order).
    Cluster(usize),
}

impl Label {
    /// Whether this point was labelled noise.
    pub fn is_noise(self) -> bool {
        matches!(self, Label::Noise)
    }

    /// Cluster id, if any.
    pub fn cluster(self) -> Option<usize> {
        match self {
            Label::Noise => None,
            Label::Cluster(c) => Some(c),
        }
    }
}

/// The result of a DBSCAN run: one [`Label`] per input point, in input order.
#[derive(Clone, Debug)]
pub struct Labeling {
    /// Per-point labels, parallel to the input slice.
    pub labels: Vec<Label>,
    /// Number of clusters discovered.
    pub n_clusters: usize,
}

impl Labeling {
    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_noise()).count()
    }

    /// Noise fraction of the dataset (0 for empty input).
    pub fn noise_ratio(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.noise_count() as f64 / self.labels.len() as f64
        }
    }

    /// Sizes of each cluster, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters];
        for l in &self.labels {
            if let Label::Cluster(c) = l {
                sizes[*c] += 1;
            }
        }
        sizes
    }

    /// Indices of the points in the largest cluster (empty if no clusters).
    pub fn largest_cluster_indices(&self) -> Vec<usize> {
        let sizes = self.cluster_sizes();
        let Some((largest, _)) = sizes.iter().enumerate().max_by_key(|(_, &s)| s) else {
            return Vec::new();
        };
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (l.cluster() == Some(largest)).then_some(i))
            .collect()
    }
}

/// DBSCAN parameterised by ε and minPts.
///
/// `min_pts` counts the point itself, matching the scikit-learn convention
/// the paper's analysis scripts rely on.
#[derive(Clone, Copy, Debug)]
pub struct Dbscan {
    /// Neighbourhood radius.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Dbscan {
    /// Construct a DBSCAN configuration.
    ///
    /// Panics if `eps` is not strictly positive and finite or `min_pts == 0`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(
            eps > 0.0 && eps.is_finite(),
            "eps must be positive and finite, got {eps}"
        );
        assert!(min_pts >= 1, "min_pts must be at least 1");
        Dbscan { eps, min_pts }
    }

    /// Cluster one-dimensional data. Exact DBSCAN semantics; O(n log n).
    pub fn fit_1d(&self, data: &[f64]) -> Labeling {
        let n = data.len();
        if n == 0 {
            return Labeling {
                labels: Vec::new(),
                n_clusters: 0,
            };
        }

        // Sort once; neighbourhoods become contiguous index ranges.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("NaN in DBSCAN input"));
        let sorted: Vec<f64> = order.iter().map(|&i| data[i]).collect();

        // neighbour range [lo, hi) of sorted position p.
        let range_of = |p: usize| -> (usize, usize) {
            let x = sorted[p];
            let lo = sorted.partition_point(|&v| v < x - self.eps);
            let hi = sorted.partition_point(|&v| v <= x + self.eps);
            (lo, hi)
        };

        let mut labels_sorted: Vec<Option<Label>> = vec![None; n];
        let mut n_clusters = 0usize;

        for p in 0..n {
            if labels_sorted[p].is_some() {
                continue;
            }
            let (lo, hi) = range_of(p);
            if hi - lo < self.min_pts {
                labels_sorted[p] = Some(Label::Noise);
                continue;
            }
            // p is a core point: start a new cluster and expand (BFS over
            // the contiguous neighbourhood ranges).
            let cid = n_clusters;
            n_clusters += 1;
            labels_sorted[p] = Some(Label::Cluster(cid));
            let mut frontier: Vec<usize> = (lo..hi).filter(|&q| q != p).collect();
            while let Some(q) = frontier.pop() {
                match labels_sorted[q] {
                    Some(Label::Noise) => {
                        // Border point previously judged noise: claim it.
                        labels_sorted[q] = Some(Label::Cluster(cid));
                    }
                    Some(Label::Cluster(_)) => {}
                    None => {
                        labels_sorted[q] = Some(Label::Cluster(cid));
                        let (qlo, qhi) = range_of(q);
                        if qhi - qlo >= self.min_pts {
                            // q is itself core: its neighbourhood joins.
                            frontier.extend((qlo..qhi).filter(|&r| {
                                labels_sorted[r].is_none() || labels_sorted[r] == Some(Label::Noise)
                            }));
                        }
                    }
                }
            }
        }

        // Scatter back to input order.
        let mut labels = vec![Label::Noise; n];
        for (p, &orig) in order.iter().enumerate() {
            labels[orig] = labels_sorted[p].expect("all points labelled");
        }
        Labeling { labels, n_clusters }
    }

    /// Cluster d-dimensional points with Euclidean distance. O(n²); intended
    /// for modest n and as a semantic cross-check of the 1-D fast path.
    ///
    /// Panics if points have inconsistent dimensionality.
    pub fn fit_euclidean(&self, points: &[Vec<f64>]) -> Labeling {
        let n = points.len();
        if n == 0 {
            return Labeling {
                labels: Vec::new(),
                n_clusters: 0,
            };
        }
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "inconsistent point dimensionality"
        );
        let eps2 = self.eps * self.eps;
        let dist2 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let neighbors = |i: usize| -> Vec<usize> {
            (0..n)
                .filter(|&j| dist2(&points[i], &points[j]) <= eps2)
                .collect()
        };

        let mut labels: Vec<Option<Label>> = vec![None; n];
        let mut n_clusters = 0usize;
        for i in 0..n {
            if labels[i].is_some() {
                continue;
            }
            let nb = neighbors(i);
            if nb.len() < self.min_pts {
                labels[i] = Some(Label::Noise);
                continue;
            }
            let cid = n_clusters;
            n_clusters += 1;
            labels[i] = Some(Label::Cluster(cid));
            let mut frontier: Vec<usize> = nb.into_iter().filter(|&q| q != i).collect();
            while let Some(q) = frontier.pop() {
                match labels[q] {
                    Some(Label::Noise) => labels[q] = Some(Label::Cluster(cid)),
                    Some(Label::Cluster(_)) => {}
                    None => {
                        labels[q] = Some(Label::Cluster(cid));
                        let qnb = neighbors(q);
                        if qnb.len() >= self.min_pts {
                            frontier.extend(qnb.into_iter().filter(|&r| {
                                labels[r].is_none() || labels[r] == Some(Label::Noise)
                            }));
                        }
                    }
                }
            }
        }
        Labeling {
            labels: labels.into_iter().map(|l| l.expect("labelled")).collect(),
            n_clusters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_clusters_and_one_outlier() {
        // 5 points near 10, 5 near 100, one lone point at 500.
        let data = [
            9.8, 10.0, 10.1, 10.2, 9.9, 99.8, 100.0, 100.1, 100.2, 99.9, 500.0,
        ];
        let out = Dbscan::new(1.0, 3).fit_1d(&data);
        assert_eq!(out.n_clusters, 2);
        assert_eq!(out.noise_count(), 1);
        assert!(out.labels[10].is_noise());
        // All members of the first group share a label distinct from the second.
        let c0 = out.labels[0].cluster().unwrap();
        let c5 = out.labels[5].cluster().unwrap();
        assert_ne!(c0, c5);
        for i in 0..5 {
            assert_eq!(out.labels[i].cluster(), Some(c0));
        }
        for i in 5..10 {
            assert_eq!(out.labels[i].cluster(), Some(c5));
        }
    }

    #[test]
    fn all_noise_when_min_pts_too_high() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let out = Dbscan::new(0.1, 2).fit_1d(&data);
        assert_eq!(out.n_clusters, 0);
        assert_eq!(out.noise_count(), 4);
        assert_eq!(out.noise_ratio(), 1.0);
    }

    #[test]
    fn single_cluster_chain_connectivity() {
        // Points spaced 0.5 apart chain into one cluster with eps=0.6.
        let data: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let out = Dbscan::new(0.6, 3).fit_1d(&data);
        assert_eq!(out.n_clusters, 1);
        assert_eq!(out.noise_count(), 0);
        assert_eq!(out.cluster_sizes(), vec![20]);
    }

    #[test]
    fn border_point_is_claimed_not_noise() {
        // Dense blob plus one point within eps of the blob edge but with a
        // sparse own-neighbourhood: classic border point.
        let mut data = vec![0.0, 0.05, 0.1, 0.15, 0.2];
        data.push(0.95); // within eps=0.8 of 0.2 only
        let out = Dbscan::new(0.8, 5).fit_1d(&data);
        assert_eq!(out.n_clusters, 1);
        assert_eq!(out.labels[5].cluster(), out.labels[0].cluster());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let out = Dbscan::new(1.0, 2).fit_1d(&[]);
        assert_eq!(out.n_clusters, 0);
        assert!(out.labels.is_empty());

        let out = Dbscan::new(1.0, 1).fit_1d(&[42.0]);
        // min_pts = 1: a singleton is its own core point.
        assert_eq!(out.n_clusters, 1);
        assert_eq!(out.noise_count(), 0);

        let out = Dbscan::new(1.0, 2).fit_1d(&[42.0]);
        assert_eq!(out.noise_count(), 1);
    }

    #[test]
    fn duplicate_values_count_as_neighbors() {
        let data = [5.0; 10];
        let out = Dbscan::new(0.001, 10).fit_1d(&data);
        assert_eq!(out.n_clusters, 1);
        assert_eq!(out.noise_count(), 0);
    }

    #[test]
    fn fast_1d_path_matches_generic_euclidean() {
        // Pseudo-random-ish latency-like data, deterministic.
        let data: Vec<f64> = (0..200)
            .map(|i| {
                let base = if i % 17 == 0 { 250.0 } else { 20.0 };
                base + ((i * 2654435761u64 % 1000) as f64) / 100.0
            })
            .collect();
        let cfg = Dbscan::new(3.0, 5);
        let a = cfg.fit_1d(&data);
        let points: Vec<Vec<f64>> = data.iter().map(|&x| vec![x]).collect();
        let b = cfg.fit_euclidean(&points);
        assert_eq!(a.n_clusters, b.n_clusters);
        // Noise sets must be identical; cluster ids may be permuted.
        for i in 0..data.len() {
            assert_eq!(a.labels[i].is_noise(), b.labels[i].is_noise(), "point {i}");
        }
        // Partition must be identical up to relabeling.
        for i in 0..data.len() {
            for j in 0..data.len() {
                let same_a = a.labels[i].cluster() == a.labels[j].cluster()
                    && a.labels[i].cluster().is_some();
                let same_b = b.labels[i].cluster() == b.labels[j].cluster()
                    && b.labels[i].cluster().is_some();
                assert_eq!(same_a, same_b, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn largest_cluster_indices() {
        let data = [1.0, 1.1, 1.2, 1.3, 9.0, 9.1, 50.0];
        let out = Dbscan::new(0.5, 2).fit_1d(&data);
        let largest = out.largest_cluster_indices();
        assert_eq!(largest, vec![0, 1, 2, 3]);
    }

    #[test]
    fn euclidean_2d_clusters() {
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![5.0 + i as f64 * 0.01, 5.0]);
        }
        pts.push(vec![100.0, 100.0]);
        let out = Dbscan::new(0.5, 3).fit_euclidean(&pts);
        assert_eq!(out.n_clusters, 2);
        assert_eq!(out.noise_count(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_eps() {
        Dbscan::new(0.0, 3);
    }
}
