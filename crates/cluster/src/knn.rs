//! k-nearest-neighbour distance profiles and knee detection.
//!
//! The paper (Sec. V-C) notes that the DBSCAN `eps` "is often obtained through
//! the k-nearest neighbors algorithm as its graph representation knee point",
//! and calibrates the quantile-range multiplier by "comparing the ratio of the
//! average k-nearest neighbor distance to the 0.05–0.95 quantile range". Both
//! operations are implemented here for 1-D data.

/// Distance from each point to its `k`-th nearest neighbour (k >= 1,
/// excluding the point itself). Returned in input order.
///
/// Exact O(n·k) after an O(n log n) sort: in 1-D the k nearest neighbours of
/// a point are found by merging outward from its sorted position.
///
/// Panics if `k == 0`; returns an empty vector when `k >= n`.
pub fn kth_neighbor_distances(data: &[f64], k: usize) -> Vec<f64> {
    assert!(k >= 1, "k must be at least 1");
    let n = data.len();
    if k >= n {
        return Vec::new();
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("NaN in knn input"));
    let sorted: Vec<f64> = order.iter().map(|&i| data[i]).collect();

    let mut out = vec![0.0f64; n];
    for (pos, &orig) in order.iter().enumerate() {
        // Two-pointer outward merge to the k-th closest value.
        let x = sorted[pos];
        let mut left = pos; // next candidate on the left is left-1
        let mut right = pos + 1; // next candidate on the right
        let mut kth = 0.0;
        for _ in 0..k {
            let dl = if left > 0 {
                x - sorted[left - 1]
            } else {
                f64::INFINITY
            };
            let dr = if right < n {
                sorted[right] - x
            } else {
                f64::INFINITY
            };
            if dl <= dr {
                kth = dl;
                left -= 1;
            } else {
                kth = dr;
                right += 1;
            }
        }
        out[orig] = kth;
    }
    out
}

/// Mean of the k-th-NN distances — the quantity the paper compares against
/// the 0.05–0.95 quantile range when calibrating the eps multiplier.
/// Returns NaN when `k >= n`.
pub fn average_knn_distance(data: &[f64], k: usize) -> f64 {
    let d = kth_neighbor_distances(data, k);
    if d.is_empty() {
        return f64::NAN;
    }
    d.iter().sum::<f64>() / d.len() as f64
}

/// Knee (elbow) index of an ascending curve: the point with maximum
/// perpendicular distance to the chord joining the first and last points
/// (a Kneedle-style heuristic). Used on the sorted k-distance graph to pick
/// `eps` in the conventional, non-adaptive workflow.
///
/// Returns `None` for curves with fewer than 3 points.
pub fn knee_index(ascending: &[f64]) -> Option<usize> {
    let n = ascending.len();
    if n < 3 {
        return None;
    }
    let x0 = 0.0;
    let y0 = ascending[0];
    let x1 = (n - 1) as f64;
    let y1 = ascending[n - 1];
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    if norm == 0.0 {
        return None;
    }
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &y) in ascending.iter().enumerate() {
        let x = i as f64;
        // Perpendicular distance to the chord.
        let d = ((dy * x - dx * y + x1 * y0 - y1 * x0) / norm).abs();
        if d > best.1 {
            best = (i, d);
        }
    }
    Some(best.0)
}

/// Convenience: the conventional k-NN eps suggestion — sort the k-distances
/// and return the value at the knee. Returns `None` when the data is too
/// small or degenerate.
pub fn knee_eps(data: &[f64], k: usize) -> Option<f64> {
    let mut d = kth_neighbor_distances(data, k);
    if d.len() < 3 {
        return None;
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
    knee_index(&d).map(|i| d[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kth_distance_on_uniform_grid() {
        // Points 0,1,2,...,9: 1st NN distance is 1 everywhere; 2nd NN is 1
        // for interior points (both sides) -> wait: for interior, 2nd closest
        // is also at distance 1; for endpoints it is 2.
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d1 = kth_neighbor_distances(&data, 1);
        assert!(d1.iter().all(|&d| (d - 1.0).abs() < 1e-12));
        let d2 = kth_neighbor_distances(&data, 2);
        assert!((d2[0] - 2.0).abs() < 1e-12);
        assert!((d2[9] - 2.0).abs() < 1e-12);
        assert!((d2[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kth_distance_matches_naive() {
        let data: Vec<f64> = (0..60)
            .map(|i| ((i * 2654435761u64) % 997) as f64 / 10.0)
            .collect();
        for k in [1usize, 3, 7] {
            let fast = kth_neighbor_distances(&data, k);
            for (i, &x) in data.iter().enumerate() {
                let mut ds: Vec<f64> = data
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &y)| (x - y).abs())
                    .collect();
                ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert!(
                    (fast[i] - ds[k - 1]).abs() < 1e-12,
                    "k={k} i={i}: {} vs {}",
                    fast[i],
                    ds[k - 1]
                );
            }
        }
    }

    #[test]
    fn k_too_large_is_empty() {
        assert!(kth_neighbor_distances(&[1.0, 2.0], 2).is_empty());
        assert!(average_knn_distance(&[1.0, 2.0], 5).is_nan());
    }

    #[test]
    fn average_knn_distance_simple() {
        let data = [0.0, 1.0, 3.0];
        // 1-NN distances: 1 (0->1), 1 (1->0), 2 (3->1); mean = 4/3.
        assert!((average_knn_distance(&data, 1) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn knee_of_hockey_stick() {
        // Flat then steep: knee should sit near the bend (index 7).
        let mut curve = vec![1.0; 8];
        curve.extend((1..6).map(|i| 1.0 + i as f64 * 10.0));
        let knee = knee_index(&curve).unwrap();
        assert!((6..=8).contains(&knee), "knee at {knee}");
    }

    #[test]
    fn knee_degenerate_cases() {
        assert_eq!(knee_index(&[1.0, 2.0]), None);
        assert_eq!(knee_index(&[]), None);
        // Constant curve has zero chord length in y; any index acceptable,
        // must not panic.
        let _ = knee_index(&[5.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn knee_eps_on_latency_like_data() {
        // A tight main cluster and a handful of distant outliers: the knee
        // eps must be far smaller than the outlier spacing so DBSCAN with it
        // separates the groups.
        let mut data: Vec<f64> = (0..95).map(|i| 20.0 + (i % 10) as f64 * 0.05).collect();
        data.extend([200.0, 240.0, 260.0, 320.0, 400.0]);
        let eps = knee_eps(&data, 4).unwrap();
        assert!(eps < 50.0, "eps = {eps}");
    }
}
