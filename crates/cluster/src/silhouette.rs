//! Silhouette score for validating cluster separation.
//!
//! Section VII-B: "we evaluated the clusters using the silhouette score. This
//! score ranges from -1 (overlapping clusters) up to 1 (perfect clustering),
//! while for our dataset, where two or more clusters were identified, the
//! score is always above 0.4 ... The average silhouette score over all three
//! GPUs is 0.84."

use crate::dbscan::{Label, Labeling};

/// Mean silhouette coefficient over all clustered (non-noise) points of a
/// 1-D dataset.
///
/// For each point `i` in cluster `C`: `a(i)` is the mean distance to the
/// other members of `C` (0 for singleton clusters, by the standard
/// convention `s(i) = 0`), `b(i)` is the smallest mean distance to any other
/// cluster, and `s(i) = (b - a) / max(a, b)`.
///
/// Returns `None` when fewer than two clusters exist (the score is undefined)
/// or when no non-noise points remain.
pub fn silhouette_score_1d(data: &[f64], labeling: &Labeling) -> Option<f64> {
    assert_eq!(
        data.len(),
        labeling.labels.len(),
        "data and labels must be parallel"
    );
    if labeling.n_clusters < 2 {
        return None;
    }

    // Collect members per cluster.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); labeling.n_clusters];
    for (i, l) in labeling.labels.iter().enumerate() {
        if let Label::Cluster(c) = l {
            members[*c].push(i);
        }
    }
    if members.iter().filter(|m| !m.is_empty()).count() < 2 {
        return None;
    }

    let mean_dist_to = |x: f64, cluster: &[usize]| -> f64 {
        debug_assert!(!cluster.is_empty());
        cluster.iter().map(|&j| (x - data[j]).abs()).sum::<f64>() / cluster.len() as f64
    };

    let mut total = 0.0;
    let mut count = 0usize;
    for (i, l) in labeling.labels.iter().enumerate() {
        let Label::Cluster(c) = l else { continue };
        let own = &members[*c];
        let s = if own.len() <= 1 {
            0.0
        } else {
            let x = data[i];
            // a(i): mean distance to *other* members of own cluster.
            let a = own
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| (x - data[j]).abs())
                .sum::<f64>()
                / (own.len() - 1) as f64;
            // b(i): smallest mean distance to another cluster.
            let b = members
                .iter()
                .enumerate()
                .filter(|(k, m)| *k != *c && !m.is_empty())
                .map(|(_, m)| mean_dist_to(x, m))
                .fold(f64::INFINITY, f64::min);
            let denom = a.max(b);
            if denom == 0.0 {
                0.0
            } else {
                (b - a) / denom
            }
        };
        total += s;
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;

    #[test]
    fn well_separated_clusters_score_high() {
        let mut data: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.01).collect();
        data.extend((0..50).map(|i| 200.0 + (i % 5) as f64 * 0.01));
        let labeling = Dbscan::new(1.0, 4).fit_1d(&data);
        assert_eq!(labeling.n_clusters, 2);
        let s = silhouette_score_1d(&data, &labeling).unwrap();
        assert!(s > 0.95, "score = {s}");
    }

    #[test]
    fn adjacent_clusters_score_lower_than_distant_ones() {
        let make = |gap: f64| -> f64 {
            let mut data: Vec<f64> = (0..40).map(|i| (i % 8) as f64 * 0.2).collect();
            data.extend((0..40).map(|i| gap + (i % 8) as f64 * 0.2));
            let labeling = Dbscan::new(0.5, 4).fit_1d(&data);
            assert_eq!(labeling.n_clusters, 2, "gap {gap}");
            silhouette_score_1d(&data, &labeling).unwrap()
        };
        let close = make(5.0);
        let far = make(500.0);
        assert!(far > close, "far={far} close={close}");
    }

    #[test]
    fn single_cluster_is_undefined() {
        let data: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let labeling = Dbscan::new(1.0, 3).fit_1d(&data);
        assert_eq!(labeling.n_clusters, 1);
        assert!(silhouette_score_1d(&data, &labeling).is_none());
    }

    #[test]
    fn noise_points_are_excluded() {
        let mut data: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.01).collect();
        data.extend((0..30).map(|i| 100.0 + (i % 5) as f64 * 0.01));
        data.push(1e6); // extreme outlier -> noise
        let labeling = Dbscan::new(1.0, 4).fit_1d(&data);
        assert_eq!(labeling.n_clusters, 2);
        assert_eq!(labeling.noise_count(), 1);
        let s = silhouette_score_1d(&data, &labeling).unwrap();
        // The outlier must not drag the score; clusters are clean.
        assert!(s > 0.9, "score = {s}");
    }

    #[test]
    fn identical_points_in_two_duplicate_groups() {
        // Two clusters of identical coordinates: a = 0, b > 0 -> s = 1.
        let mut data = vec![1.0; 10];
        data.extend(vec![9.0; 10]);
        let labeling = Dbscan::new(0.5, 3).fit_1d(&data);
        assert_eq!(labeling.n_clusters, 2);
        let s = silhouette_score_1d(&data, &labeling).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }
}
