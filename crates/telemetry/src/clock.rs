//! The monotonic timer abstraction service-side timing goes through.
//!
//! Production code reads a [`StageClock::monotonic`] clock backed by
//! [`Instant`]; tests and the CI determinism gate substitute virtual
//! time — a [`StageClock::ticks`] clock that advances a fixed increment
//! per reading (so a single-threaded drain produces bitwise-identical
//! timings on every run), or a [`StageClock::manual`] clock advanced
//! explicitly — without changing any call site or sleeping in tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a component should construct its clocks: the serializable policy,
/// as opposed to a concrete [`StageClock`] instance.
///
/// Virtual (tick) clocks are deliberately instantiated *per thread* —
/// a shared counter read from several threads would make the observed
/// durations depend on the interleaving, which is exactly what virtual
/// time exists to avoid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockSpec {
    /// Real wall-clock time via [`Instant`].
    #[default]
    Monotonic,
    /// Virtual time: every reading advances the clock by `tick_ns`.
    Ticks {
        /// Nanoseconds each `now_ns` reading advances the clock by.
        tick_ns: u64,
    },
}

impl ClockSpec {
    /// Construct a fresh clock following this policy. Call once per
    /// thread: monotonic clocks share real time anyway, and tick clocks
    /// must not share a counter across threads (see the type docs).
    pub fn clock(&self) -> StageClock {
        match self {
            ClockSpec::Monotonic => StageClock::monotonic(),
            ClockSpec::Ticks { tick_ns } => StageClock::ticks(*tick_ns),
        }
    }

    /// Whether clocks built from this spec report virtual time.
    pub fn is_virtual(&self) -> bool {
        matches!(self, ClockSpec::Ticks { .. })
    }
}

#[derive(Clone, Debug)]
enum ClockImpl {
    Monotonic(Instant),
    Ticks {
        counter: Arc<AtomicU64>,
        tick_ns: u64,
    },
    Manual(Arc<AtomicU64>),
}

/// A monotonic nanosecond clock; see the [module docs](self). Cloning a
/// manual clock shares its state, so a test can hold one handle and
/// advance time under the code holding the other.
#[derive(Clone, Debug)]
pub struct StageClock(ClockImpl);

impl StageClock {
    /// Real time: `now_ns` is nanoseconds since the clock was created.
    pub fn monotonic() -> Self {
        StageClock(ClockImpl::Monotonic(Instant::now()))
    }

    /// Virtual time: every `now_ns` reading advances the clock by
    /// `tick_ns` first, so consecutive readings are strictly increasing
    /// and fully deterministic.
    pub fn ticks(tick_ns: u64) -> Self {
        StageClock(ClockImpl::Ticks {
            counter: Arc::new(AtomicU64::new(0)),
            tick_ns: tick_ns.max(1),
        })
    }

    /// Virtual time that only moves via [`StageClock::advance`].
    pub fn manual() -> Self {
        StageClock(ClockImpl::Manual(Arc::new(AtomicU64::new(0))))
    }

    /// The current reading, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            ClockImpl::Monotonic(origin) => {
                origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
            }
            ClockImpl::Ticks { counter, tick_ns } => {
                counter.fetch_add(*tick_ns, Ordering::Relaxed) + *tick_ns
            }
            ClockImpl::Manual(counter) => counter.load(Ordering::Relaxed),
        }
    }

    /// Move a virtual clock forward by `ns`; no-op on a monotonic clock.
    pub fn advance(&self, ns: u64) {
        match &self.0 {
            ClockImpl::Monotonic(_) => {}
            ClockImpl::Ticks { counter, .. } | ClockImpl::Manual(counter) => {
                counter.fetch_add(ns, Ordering::Relaxed);
            }
        }
    }

    /// Whether this clock reports virtual (test-driven) time.
    pub fn is_virtual(&self) -> bool {
        !matches!(self.0, ClockImpl::Monotonic(_))
    }
}

impl Default for StageClock {
    fn default() -> Self {
        StageClock::monotonic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let clock = StageClock::monotonic();
        assert!(!clock.is_virtual());
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn tick_clock_is_deterministic() {
        let clock = StageClock::ticks(100);
        assert!(clock.is_virtual());
        assert_eq!(clock.now_ns(), 100);
        assert_eq!(clock.now_ns(), 200);
        clock.advance(50);
        assert_eq!(clock.now_ns(), 350);
        // A fresh clock from the same spec replays the same stream.
        let again = ClockSpec::Ticks { tick_ns: 100 }.clock();
        assert_eq!(again.now_ns(), 100);
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let clock = StageClock::manual();
        let handle = clock.clone();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0);
        handle.advance(1_000_000_000);
        assert_eq!(clock.now_ns(), 1_000_000_000, "clones share state");
    }

    #[test]
    fn spec_round_trip() {
        assert_eq!(ClockSpec::default(), ClockSpec::Monotonic);
        assert!(!ClockSpec::Monotonic.is_virtual());
        assert!(ClockSpec::Ticks { tick_ns: 7 }.is_virtual());
        assert!(ClockSpec::Ticks { tick_ns: 7 }.clock().is_virtual());
    }
}
