//! The service's stage taxonomy: where a job's wall-clock time goes
//! between submission and settle.
//!
//! Every stage is a latency distribution recorded by the worker that
//! observed the transition:
//!
//! ```text
//!   submit ──▶ first seen ──▶ claimed ──▶ shards fanned out ──▶ settle
//!              ╰─ QueueWait ─╯╰ ClaimToStart ╯
//!                             ╰───────── SettleLatency ────────╯
//!   per shard:   ShardExec (run_unit_with)   CheckpointStall (write)
//!   observer:    EventFanIn (batch delivery to observers)
//! ```

use std::fmt;

/// A stage of the service pipeline; see the [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Submission (first seen by a claim scan) until a worker claims the job.
    QueueWait,
    /// Claim until the member's shards are fanned out onto the task board.
    ClaimToStart,
    /// Execution of one shard of simulated/measured pairs.
    ShardExec,
    /// A checkpoint write stalling the worker that hit the boundary.
    CheckpointStall,
    /// Claim until the job settles (done, failed or cancelled).
    SettleLatency,
    /// Delivery of one batch of queue events to the attached observers.
    EventFanIn,
}

impl Stage {
    /// Number of stages; the length of per-slot recorder arrays.
    pub const COUNT: usize = 6;

    /// Every stage, in recorder-slot order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::ClaimToStart,
        Stage::ShardExec,
        Stage::CheckpointStall,
        Stage::SettleLatency,
        Stage::EventFanIn,
    ];

    /// The stage's slot in per-recorder arrays (dense, `0..COUNT`).
    pub fn index(&self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::ClaimToStart => 1,
            Stage::ShardExec => 2,
            Stage::CheckpointStall => 3,
            Stage::SettleLatency => 4,
            Stage::EventFanIn => 5,
        }
    }

    /// Stable kebab-case name used in JSON snapshots and report tables.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::QueueWait => "queue-wait",
            Stage::ClaimToStart => "claim-to-start",
            Stage::ShardExec => "shard-exec",
            Stage::CheckpointStall => "checkpoint-stall",
            Stage::SettleLatency => "settle-latency",
            Stage::EventFanIn => "event-fan-in",
        }
    }

    /// Parse a [`Stage::name`] back into a stage.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }

    #[test]
    fn names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
            assert_eq!(format!("{stage}"), stage.name());
        }
        assert_eq!(Stage::from_name("no-such-stage"), None);
    }

    #[test]
    fn names_are_unique_kebab_case() {
        let mut seen = std::collections::HashSet::new();
        for stage in Stage::ALL {
            assert!(seen.insert(stage.name()), "duplicate name {}", stage.name());
            assert!(stage
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
