//! The log-scaled latency histogram: HDR-style power-of-two octaves with
//! 32 sub-buckets each, so any `u64` nanosecond value lands in one of
//! [`Histogram::NUM_BUCKETS`] fixed buckets with a relative quantization
//! error bounded by [`Histogram::RELATIVE_ERROR_BOUND`].
//!
//! Values below 32 are recorded exactly (one bucket per value). Above
//! that, the value's octave (position of its most significant bit) picks
//! a run of 32 buckets and the next 5 bits pick the sub-bucket — so
//! bucket width grows with magnitude and the *relative* resolution stays
//! constant, which is exactly what latency distributions spanning
//! nanoseconds to seconds need.
//!
//! `merge` adds bucket counts and exact counters element-wise: it is
//! associative, commutative, and produces bitwise-identical state for any
//! partition of the same records — the property the drain-end
//! snapshot-by-merge design and the CI determinism gate rely on.

use serde::{Deserialize, Serialize, Value};

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Bucket index for a value; always `< Histogram::NUM_BUCKETS`.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((value >> (msb - SUB_BITS)) as usize) - SUB_BUCKETS;
    octave * SUB_BUCKETS + sub
}

/// Half-open `[lo, hi)` value range of a bucket, in `u128` because the
/// top bucket's upper bound is `2^64`.
pub(crate) fn bucket_bounds(index: usize) -> (u128, u128) {
    if index < SUB_BUCKETS {
        return (index as u128, index as u128 + 1);
    }
    let octave = index / SUB_BUCKETS;
    let sub = index % SUB_BUCKETS;
    let width = 1u128 << (octave - 1);
    let lo = (SUB_BUCKETS as u128 + sub as u128) << (octave - 1);
    (lo, lo + width)
}

/// Midpoint of a bucket, saturated to `u64`.
fn bucket_mid(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    let mid = lo + (hi - lo) / 2;
    mid.min(u64::MAX as u128) as u64
}

/// A fixed-size log-scaled histogram of `u64` samples (nanoseconds, by
/// convention). See the [module docs](self) for the bucket layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Total number of buckets: 32 exact values plus 59 octaves × 32
    /// sub-buckets, covering the full `u64` range.
    pub const NUM_BUCKETS: usize = SUB_BUCKETS * (64 - SUB_BITS as usize + 1);

    /// Documented quantile error bound: a reported quantile `q` satisfies
    /// `|q - exact| <= exact / 32 + 1` (the bucket width never exceeds
    /// 1/32 of its lower bound, and quantiles report bucket midpoints).
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / 32.0;

    /// An empty histogram. Allocates the bucket array once; recording
    /// never allocates.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0u64; Self::NUM_BUCKETS].into_boxed_slice(),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0.0 ..= 1.0`, clamped) by nearest rank, `None`
    /// when empty. Exact for values below 32; otherwise the midpoint of
    /// the containing bucket clamped into `[min, max]`, so the relative
    /// error is bounded by [`Histogram::RELATIVE_ERROR_BOUND`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_mid(index).clamp(self.min, self.max));
            }
        }
        // Unreachable while count matches the bucket sum; be safe anyway.
        Some(self.max)
    }

    /// Fold another histogram into this one. Element-wise addition:
    /// associative, commutative, and bitwise deterministic — any
    /// partition of the same records merges to identical state.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(index, count)`, in index order (the sparse
    /// serialized form).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    pub(crate) fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        sparse: &[(usize, u64)],
    ) -> Result<Self, String> {
        let mut hist = Histogram::new();
        for &(index, n) in sparse {
            if index >= Self::NUM_BUCKETS {
                return Err(format!("bucket index {index} out of range"));
            }
            hist.buckets[index] = n;
        }
        hist.count = count;
        hist.sum = sum;
        if count > 0 {
            hist.min = min;
            hist.max = max;
        }
        Ok(hist)
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .nonzero_buckets()
            .map(|(i, n)| Value::Seq(vec![Value::U64(i as u64), Value::U64(n)]))
            .collect();
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::U64(self.sum)),
            (
                "min".to_string(),
                Value::U64(self.min().unwrap_or_default()),
            ),
            (
                "max".to_string(),
                Value::U64(self.max().unwrap_or_default()),
            ),
            ("buckets".to_string(), Value::Seq(buckets)),
        ])
    }
}

fn field_u64(entries: &[(String, Value)], key: &str) -> Result<u64, serde::Error> {
    match entries.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
        Some(Value::U64(u)) => Ok(*u),
        Some(Value::I64(i)) if *i >= 0 => Ok(*i as u64),
        _ => Err(serde::Error::custom(format!(
            "histogram: missing or invalid `{key}`"
        ))),
    }
}

impl Deserialize for Histogram {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let Value::Map(entries) = value else {
            return Err(serde::Error::custom("histogram: expected object"));
        };
        let count = field_u64(entries, "count")?;
        let sum = field_u64(entries, "sum")?;
        let min = field_u64(entries, "min")?;
        let max = field_u64(entries, "max")?;
        let Some(Value::Seq(raw)) = entries.iter().find(|(k, _)| k == "buckets").map(|(_, v)| v)
        else {
            return Err(serde::Error::custom("histogram: missing `buckets`"));
        };
        let mut sparse = Vec::with_capacity(raw.len());
        for item in raw {
            let Value::Seq(pair) = item else {
                return Err(serde::Error::custom("histogram: bucket must be [idx, n]"));
            };
            let [Value::U64(index), Value::U64(n)] = pair.as_slice() else {
                return Err(serde::Error::custom("histogram: bucket must be [idx, n]"));
            };
            sparse.push((*index as usize, *n));
        }
        Histogram::from_parts(count, sum, min, max, &sparse).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact_buckets() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            let (lo, hi) = bucket_bounds(v as usize);
            assert_eq!((lo, hi), (v as u128, v as u128 + 1));
        }
    }

    #[test]
    fn bucket_index_is_contiguous_and_monotone() {
        // Every value maps into a bucket whose bounds contain it, and the
        // bucket index never decreases as the value grows.
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|shift| [0u64, 1, 3].map(|delta| (1u64 << shift).saturating_add(delta)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let index = bucket_index(v);
            assert!(index < Histogram::NUM_BUCKETS, "{v} -> {index}");
            let (lo, hi) = bucket_bounds(index);
            assert!(
                (lo..hi).contains(&(v as u128)),
                "{v} not in bucket {index} [{lo},{hi})"
            );
            assert!(index >= last, "index went backwards at {v}");
            last = index;
        }
        assert_eq!(bucket_index(u64::MAX), Histogram::NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_counters_and_small_quantiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in [5u64, 1, 9, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 25);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.mean(), Some(5.0));
        // Values below 32 are exact: the quantiles are the true order
        // statistics.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(1.0), Some(9));
    }

    #[test]
    fn quantiles_stay_within_the_documented_bound() {
        let mut h = Histogram::new();
        let mut values: Vec<u64> = (0..1000u64).map(|i| i * i * 37 + 11).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let got = h.quantile(q).unwrap();
            let err = (got as i128 - exact as i128).unsigned_abs() as f64;
            assert!(
                err <= exact as f64 * Histogram::RELATIVE_ERROR_BOUND + 1.0,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_element_wise_and_identical_to_single_stream() {
        let values: Vec<u64> = (0..500u64).map(|i| i * 7919 + 13).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&right);
        merged.merge(&left);
        assert_eq!(merged, whole, "merge must be order-independent and exact");
    }

    #[test]
    fn json_round_trip_is_bitwise() {
        let mut h = Histogram::new();
        for v in [0u64, 31, 32, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let text = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&text).unwrap();
        assert_eq!(back, h);
        let empty: Histogram =
            serde_json::from_str(&serde_json::to_string(&Histogram::new()).unwrap()).unwrap();
        assert_eq!(empty, Histogram::new());
    }
}
