//! Lock-free, merge-at-end observability for the measurement service.
//!
//! The paper's whole premise is that a measurement you have not
//! characterized cannot be trusted — and that holds for the measurement
//! *service* itself: instrumentation that locks, allocates or funnels
//! every sample through a channel perturbs the very latencies it reports.
//! This crate is the cheap-enough-to-leave-on telemetry layer the
//! `latest-queue` event path records into:
//!
//! * [`Histogram`] — fixed log-scaled buckets (power-of-two octaves,
//!   32 sub-buckets each, HDR-style), exact `count`/`min`/`max`/`sum`,
//!   quantiles with a bounded relative error of
//!   [`Histogram::RELATIVE_ERROR_BOUND`], and a deterministic,
//!   associative [`Histogram::merge`] — any partition of the same records
//!   merges to bitwise-identical state.
//! * [`Stage`] — the service's stage taxonomy: where a job's wall-clock
//!   time goes between submission and settle.
//! * [`StageRecorder`] / [`Registry`] — one cache-line-aligned recorder
//!   slot per worker. [`StageRecorder::record`] is lock-free and
//!   allocation-free (single-writer relaxed atomics into preallocated
//!   buckets); a drain-end [`Registry::snapshot`] merges every slot into
//!   one [`TelemetrySnapshot`] instead of synchronising on every event.
//! * [`StageClock`] / [`ClockSpec`] — the monotonic timer abstraction all
//!   service-side timing goes through, so tests and CI determinism gates
//!   drive virtual time (fixed-increment ticks, manually advanced clocks)
//!   instead of sleeping.
//!
//! ```
//! use latest_telemetry::{Registry, Stage};
//!
//! let registry = Registry::new(2); // one slot per worker
//! registry.recorder(0).record(Stage::ShardExec, 1_250_000);
//! registry.recorder(1).record(Stage::ShardExec, 2_500_000);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.stage(Stage::ShardExec).count(), 2);
//! ```

pub mod clock;
pub mod hist;
pub mod recorder;
pub mod snapshot;
pub mod stage;

pub use clock::{ClockSpec, StageClock};
pub use hist::Histogram;
pub use recorder::{Registry, StageRecorder};
pub use snapshot::TelemetrySnapshot;
pub use stage::Stage;
