//! Per-worker recorder slots and the registry that merges them.
//!
//! Each worker thread owns exactly one [`StageRecorder`] slot for the
//! lifetime of a drain and is the only writer to it; everything on the
//! record path is a relaxed atomic load+store into preallocated bucket
//! arrays — no locks, no allocation, no contended `fetch_add`. Readers
//! ([`Registry::snapshot`]) run at drain end, after the worker scope has
//! joined, so single-writer relaxed stores are sufficient: the thread
//! join provides the happens-before edge.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::Histogram;
use crate::snapshot::TelemetrySnapshot;
use crate::stage::Stage;

/// A histogram whose counters are atomics so concurrent snapshotting is
/// defined behaviour. Written by exactly one thread (see module docs),
/// which is why `record` can use load+store instead of RMW atomics.
struct AtomicHist {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl AtomicHist {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(Histogram::NUM_BUCKETS);
        buckets.resize_with(Histogram::NUM_BUCKETS, || AtomicU64::new(0));
        AtomicHist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: buckets.into_boxed_slice(),
        }
    }

    #[inline]
    fn record(&self, value: u64) {
        // Single-writer: plain load+store beats fetch_add (no lock prefix
        // needed on the owning thread's cache line).
        let idx = crate::hist::bucket_index(value);
        let b = &self.buckets[idx];
        b.store(b.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.count
            .store(self.count.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.sum.store(
            self.sum.load(Ordering::Relaxed).saturating_add(value),
            Ordering::Relaxed,
        );
        if value < self.min.load(Ordering::Relaxed) {
            self.min.store(value, Ordering::Relaxed);
        }
        if value > self.max.load(Ordering::Relaxed) {
            self.max.store(value, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Histogram {
        let sparse: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        Histogram::from_parts(
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
            &sparse,
        )
        .expect("indices from a fixed-size bucket array are always in range")
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// One worker's private recorder slot: a histogram per [`Stage`] plus a
/// dropped-event counter. Cache-line aligned so neighbouring slots never
/// false-share.
#[repr(align(64))]
pub struct StageRecorder {
    stages: [AtomicHist; Stage::COUNT],
    dropped: AtomicU64,
}

impl StageRecorder {
    fn new() -> Self {
        StageRecorder {
            stages: [
                AtomicHist::new(),
                AtomicHist::new(),
                AtomicHist::new(),
                AtomicHist::new(),
                AtomicHist::new(),
                AtomicHist::new(),
            ],
            dropped: AtomicU64::new(0),
        }
    }

    /// Record a latency sample for `stage`. Lock-free and allocation-free;
    /// must only be called from the thread that owns this slot.
    #[inline]
    pub fn record(&self, stage: Stage, ns: u64) {
        self.stages[stage.index()].record(ns);
    }

    /// Count events the owning worker had to drop because its event
    /// buffer was full — explicit loss accounting instead of silent
    /// backpressure.
    #[inline]
    pub fn note_dropped(&self, n: u64) {
        self.dropped.store(
            self.dropped.load(Ordering::Relaxed).saturating_add(n),
            Ordering::Relaxed,
        );
    }

    /// Events dropped by this slot so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A plain-histogram copy of one stage's distribution.
    pub fn snapshot(&self, stage: Stage) -> Histogram {
        self.stages[stage.index()].snapshot()
    }

    /// Zero every counter in the slot.
    pub fn reset(&self) {
        for h in &self.stages {
            h.reset();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// A fixed-size set of [`StageRecorder`] slots, one per worker (plus,
/// conventionally, one trailing slot for the service/main thread), with
/// snapshot-by-merge at drain end.
pub struct Registry {
    slots: Box<[StageRecorder]>,
}

impl Registry {
    /// Allocate `slots` recorder slots (at least one).
    pub fn new(slots: usize) -> Self {
        let n = slots.max(1);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, StageRecorder::new);
        Registry {
            slots: v.into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The recorder for slot `index`; clamps to the last (service) slot
    /// so an unregistered thread still has somewhere safe to record.
    pub fn recorder(&self, index: usize) -> &StageRecorder {
        let i = index.min(self.slots.len() - 1);
        &self.slots[i]
    }

    /// Merge every slot, in slot order, into one snapshot. Deterministic:
    /// the merge is associative and slot order is fixed, so identical
    /// per-slot contents always produce an identical snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        for slot in self.slots.iter() {
            for stage in Stage::ALL {
                snap.stages[stage.index()].merge(&slot.snapshot(stage));
            }
            snap.dropped_events += slot.dropped();
        }
        snap
    }

    /// Zero every slot, ready for the next drain.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stage_tag_records_into_its_own_histogram() {
        let rec = StageRecorder::new();
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            rec.record(stage, (i as u64 + 1) * 1_000);
        }
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            let h = rec.snapshot(stage);
            assert_eq!(h.count(), 1, "stage {stage}");
            assert_eq!(h.min(), Some((i as u64 + 1) * 1_000), "stage {stage}");
            assert_eq!(h.max(), Some((i as u64 + 1) * 1_000), "stage {stage}");
        }
    }

    #[test]
    fn dropped_counter_accumulates_and_resets() {
        let rec = StageRecorder::new();
        assert_eq!(rec.dropped(), 0);
        rec.note_dropped(3);
        rec.note_dropped(2);
        assert_eq!(rec.dropped(), 5);
        rec.reset();
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn registry_snapshot_merges_all_slots() {
        let reg = Registry::new(3);
        reg.recorder(0).record(Stage::ShardExec, 100);
        reg.recorder(1).record(Stage::ShardExec, 200);
        reg.recorder(2).record(Stage::QueueWait, 50);
        reg.recorder(1).note_dropped(4);
        let snap = reg.snapshot();
        assert_eq!(snap.stage(Stage::ShardExec).count(), 2);
        assert_eq!(snap.stage(Stage::ShardExec).min(), Some(100));
        assert_eq!(snap.stage(Stage::ShardExec).max(), Some(200));
        assert_eq!(snap.stage(Stage::QueueWait).count(), 1);
        assert_eq!(snap.stage(Stage::SettleLatency).count(), 0);
        assert_eq!(snap.dropped_events, 4);
    }

    #[test]
    fn out_of_range_slot_clamps_to_service_slot() {
        let reg = Registry::new(2);
        reg.recorder(usize::MAX).record(Stage::EventFanIn, 7);
        assert_eq!(reg.recorder(1).snapshot(Stage::EventFanIn).count(), 1);
    }

    #[test]
    fn registry_reset_clears_every_slot() {
        let reg = Registry::new(2);
        reg.recorder(0).record(Stage::ShardExec, 10);
        reg.recorder(1).note_dropped(1);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.records_total(), 0);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn concurrent_per_slot_recording_is_exact() {
        let reg = std::sync::Arc::new(Registry::new(4));
        std::thread::scope(|scope| {
            for slot in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                scope.spawn(move || {
                    for v in 0..10_000u64 {
                        reg.recorder(slot).record(Stage::ShardExec, v);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.stage(Stage::ShardExec).count(), 40_000);
        assert_eq!(snap.stage(Stage::ShardExec).min(), Some(0));
        assert_eq!(snap.stage(Stage::ShardExec).max(), Some(9_999));
    }
}
