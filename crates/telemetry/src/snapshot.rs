//! The merged, drain-end view of every recorder slot: one [`Histogram`]
//! per [`Stage`] plus the total dropped-event count. This is the value
//! `DrainStats` carries, `<dir>/telemetry.json` persists, and
//! `latest queue stats` renders.
//!
//! The JSON form serializes exact integer state (counts, sums, sparse
//! buckets) and additionally derived convenience fields (`p50_ns`,
//! `p90_ns`, `p99_ns`, `mean_ns`) for CI gates and humans; deserializing
//! ignores the derived fields and rebuilds from the integers, so
//! equality stays bitwise on integer state.

use serde::{Deserialize, Serialize, Value};

use crate::hist::Histogram;
use crate::stage::Stage;

/// A merged telemetry snapshot; see the [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// One histogram per stage, indexed by [`Stage::index`].
    pub stages: Vec<Histogram>,
    /// Events dropped across all slots because a buffer was full.
    pub dropped_events: u64,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            stages: (0..Stage::COUNT).map(|_| Histogram::new()).collect(),
            dropped_events: 0,
        }
    }
}

impl TelemetrySnapshot {
    /// The distribution for one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Fold another snapshot into this one (element-wise histogram merge
    /// plus dropped-event addition); associative and order-independent.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.merge(theirs);
        }
        self.dropped_events += other.dropped_events;
    }

    /// Total samples across every stage.
    pub fn records_total(&self) -> u64 {
        self.stages.iter().map(|h| h.count()).sum()
    }

    /// Whether no stage recorded anything and nothing was dropped.
    pub fn is_empty(&self) -> bool {
        self.records_total() == 0 && self.dropped_events == 0
    }

    /// Pretty-printed JSON; deterministic for identical snapshots.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parse a snapshot previously written by [`TelemetrySnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

impl Serialize for TelemetrySnapshot {
    fn to_value(&self) -> Value {
        let stages: Vec<(String, Value)> = Stage::ALL
            .into_iter()
            .map(|stage| {
                let hist = self.stage(stage);
                let Value::Map(mut entries) = hist.to_value() else {
                    unreachable!("histograms serialize to objects");
                };
                // Derived fields for CI gates and human readers; ignored on
                // deserialize so equality stays on exact integer state.
                entries.push((
                    "mean_ns".to_string(),
                    hist.mean().map_or(Value::Null, Value::F64),
                ));
                for (key, q) in [("p50_ns", 0.50), ("p90_ns", 0.90), ("p99_ns", 0.99)] {
                    entries.push((
                        key.to_string(),
                        hist.quantile(q).map_or(Value::Null, Value::U64),
                    ));
                }
                (stage.name().to_string(), Value::Map(entries))
            })
            .collect();
        Value::Map(vec![
            (
                "records_total".to_string(),
                Value::U64(self.records_total()),
            ),
            (
                "dropped_events".to_string(),
                Value::U64(self.dropped_events),
            ),
            ("stages".to_string(), Value::Map(stages)),
        ])
    }
}

impl Deserialize for TelemetrySnapshot {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let Value::Map(entries) = value else {
            return Err(serde::Error::custom("telemetry snapshot: expected object"));
        };
        let dropped_events = match entries
            .iter()
            .find(|(k, _)| k == "dropped_events")
            .map(|(_, v)| v)
        {
            Some(Value::U64(n)) => *n,
            Some(Value::I64(n)) if *n >= 0 => *n as u64,
            _ => {
                return Err(serde::Error::custom(
                    "telemetry snapshot: missing `dropped_events`",
                ))
            }
        };
        let Some(Value::Map(stage_entries)) =
            entries.iter().find(|(k, _)| k == "stages").map(|(_, v)| v)
        else {
            return Err(serde::Error::custom("telemetry snapshot: missing `stages`"));
        };
        let mut snap = TelemetrySnapshot {
            stages: (0..Stage::COUNT).map(|_| Histogram::new()).collect(),
            dropped_events,
        };
        for (name, hist_value) in stage_entries {
            let Some(stage) = Stage::from_name(name) else {
                return Err(serde::Error::custom(format!(
                    "telemetry snapshot: unknown stage `{name}`"
                )));
            };
            snap.stages[stage.index()] = Histogram::from_value(hist_value)?;
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            for k in 0..(i as u64 + 1) {
                snap.stages[stage.index()].record(1_000 * (k + 1));
            }
        }
        snap.dropped_events = 3;
        snap
    }

    #[test]
    fn stage_accessor_and_totals() {
        let snap = sample();
        assert_eq!(snap.stage(Stage::QueueWait).count(), 1);
        assert_eq!(snap.stage(Stage::EventFanIn).count(), 6);
        assert_eq!(snap.records_total(), 21);
        assert!(!snap.is_empty());
        assert!(TelemetrySnapshot::default().is_empty());
    }

    #[test]
    fn merge_is_order_independent() {
        let a = sample();
        let mut b = TelemetrySnapshot::default();
        b.stages[Stage::ShardExec.index()].record(77);
        b.dropped_events = 2;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.dropped_events, 5);
        assert_eq!(ab.stage(Stage::ShardExec).count(), 4);
    }

    #[test]
    fn json_round_trip_is_bitwise() {
        let snap = sample();
        let text = snap.to_json();
        let back = TelemetrySnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // Identical snapshots render identical JSON — the property the CI
        // determinism gate compares byte-for-byte.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn json_exposes_derived_quantiles_per_stage() {
        let text = sample().to_json();
        for stage in Stage::ALL {
            assert!(text.contains(&format!("\"{}\"", stage.name())), "{stage}");
        }
        for key in ["p50_ns", "p90_ns", "p99_ns", "mean_ns", "dropped_events"] {
            assert!(text.contains(key), "missing {key}");
        }
    }

    #[test]
    fn deserialize_rejects_unknown_stage() {
        let err = TelemetrySnapshot::from_json(
            r#"{"dropped_events": 0, "stages": {"warp-drive": {"count": 0, "sum": 0, "min": 0, "max": 0, "buckets": []}}}"#,
        );
        assert!(err.is_err());
    }
}
