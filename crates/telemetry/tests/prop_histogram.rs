//! Property tests for the histogram's two load-bearing guarantees:
//! `merge` is associative and order-independent (any partition of the
//! same records produces bitwise-identical state — the determinism-gate
//! property), and reported quantiles stay within the documented
//! relative-error bound of the exact order statistics.

use latest_telemetry::Histogram;
use proptest::prelude::*;

/// Nanosecond samples spanning exact small values through multi-second
/// latencies, with the octave drawn first so large magnitudes are as
/// likely as small ones.
fn sample_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        (0u32..40, 0u64..1_000_000)
            .prop_map(|(shift, offset)| (1u64 << shift).wrapping_add(offset)),
        1..200,
    )
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn to_json(h: &Histogram) -> String {
    serde_json::to_string(h).unwrap()
}

proptest! {
    #[test]
    fn any_partition_merges_to_bitwise_identical_snapshots(
        values in sample_values(),
        cuts in (1usize..5, 0u64..u64::MAX),
    ) {
        let whole = hist_of(&values);

        // Partition the record stream into `parts` interleaved slices
        // using a seed-derived assignment, merge the parts in two
        // different orders, and require bitwise-identical results.
        let (parts, seed) = cuts;
        let mut shards = vec![Histogram::new(); parts];
        for (i, &v) in values.iter().enumerate() {
            let slot = (seed.rotate_left(i as u32) as usize) % parts;
            shards[slot].record(v);
        }

        let mut forward = Histogram::new();
        for shard in &shards {
            forward.merge(shard);
        }
        let mut reverse = Histogram::new();
        for shard in shards.iter().rev() {
            reverse.merge(shard);
        }
        // Associativity: fold pairs first, then combine.
        let mut paired = Histogram::new();
        for pair in shards.chunks(2) {
            let mut acc = Histogram::new();
            for shard in pair {
                acc.merge(shard);
            }
            paired.merge(&acc);
        }

        prop_assert_eq!(&forward, &whole);
        prop_assert_eq!(&reverse, &whole);
        prop_assert_eq!(&paired, &whole);
        prop_assert_eq!(to_json(&forward), to_json(&whole));
        prop_assert_eq!(to_json(&reverse), to_json(&whole));
    }

    #[test]
    fn quantiles_stay_within_the_documented_relative_error(
        values in sample_values(),
        q in 0.0..=1.0f64,
    ) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let got = h.quantile(q).unwrap();
        let err = (got as i128 - exact as i128).unsigned_abs() as f64;
        prop_assert!(
            err <= exact as f64 * Histogram::RELATIVE_ERROR_BOUND + 1.0,
            "q={}: reported {} vs exact {} (err {})", q, got, exact, err
        );
        // The reported quantile also never leaves the observed range.
        prop_assert!(got >= h.min().unwrap() && got <= h.max().unwrap());
    }

    #[test]
    fn exact_counters_survive_any_merge_split(values in sample_values()) {
        let whole = hist_of(&values);
        let (left, right) = values.split_at(values.len() / 2);
        let mut merged = hist_of(left);
        merged.merge(&hist_of(right));
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.min(), values.iter().copied().min());
        prop_assert_eq!(merged.max(), values.iter().copied().max());
    }
}
