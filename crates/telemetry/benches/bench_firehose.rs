//! Firehose bench: prove the record path sustains millions of records/sec
//! single-threaded and scales with worker count, and that drain-end
//! snapshot-by-merge stays cheap.
//!
//! Two modes:
//!
//! * default (`cargo bench -p latest-telemetry`): criterion groups for
//!   the record path, per-worker scaling, and snapshot merge;
//! * `FIREHOSE_OUT=<path>`: one self-timed pass that writes a JSON report
//!   (`records_per_sec_single`, per-worker-count scaling, `merge_ms`) for
//!   the CI throughput gate.

use std::time::Instant;

use criterion::{black_box, Criterion};
use latest_telemetry::{Registry, Stage};

/// Synthetic nanosecond latencies spread across octaves (SplitMix-style
/// scramble, magnitude varied by a shifting window) so the bench touches
/// many buckets instead of hammering one cache line.
#[inline]
fn synth(i: u64) -> u64 {
    let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x >> (x % 48)
}

#[inline]
fn stage_of(i: u64) -> Stage {
    Stage::ALL[(i % Stage::COUNT as u64) as usize]
}

/// Record `n` synthetic samples into slot 0 of a fresh registry; returns
/// records/sec.
fn time_single(n: u64) -> f64 {
    let registry = Registry::new(1);
    let rec = registry.recorder(0);
    let start = Instant::now();
    for i in 0..n {
        rec.record(stage_of(i), synth(i));
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(registry.snapshot());
    n as f64 / secs.max(1e-9)
}

/// Record `n` samples per worker, one worker per slot; returns aggregate
/// records/sec across all workers.
fn time_scaling(workers: usize, n: u64) -> f64 {
    let registry = Registry::new(workers);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for slot in 0..workers {
            let registry = &registry;
            scope.spawn(move || {
                let rec = registry.recorder(slot);
                for i in 0..n {
                    rec.record(stage_of(i), synth(i.wrapping_add(slot as u64)));
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    black_box(registry.snapshot());
    (workers as u64 * n) as f64 / secs.max(1e-9)
}

/// Milliseconds to merge a fully-populated registry into one snapshot.
fn time_merge(slots: usize, n_per_slot: u64) -> f64 {
    let registry = Registry::new(slots);
    for slot in 0..slots {
        let rec = registry.recorder(slot);
        for i in 0..n_per_slot {
            rec.record(stage_of(i), synth(i));
        }
    }
    let start = Instant::now();
    black_box(registry.snapshot());
    start.elapsed().as_secs_f64() * 1e3
}

fn firehose_report(path: &str) {
    // Sized so the CI step finishes in seconds while still long enough to
    // time reliably.
    let single = time_single(4_000_000);
    let worker_counts = [1usize, 2, 4];
    let scaling: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&w| (w, time_scaling(w, 2_000_000)))
        .collect();
    let merge_ms = time_merge(8, 500_000);

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"records_per_sec_single\": {single:.0},\n"));
    out.push_str("  \"scaling\": {\n");
    for (i, (w, rps)) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        out.push_str(&format!("    \"{w}\": {rps:.0}{comma}\n"));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"merge_ms\": {merge_ms:.3}\n"));
    out.push_str("}\n");
    std::fs::write(path, &out).expect("write FIREHOSE_OUT report");
    println!("firehose: single {single:.0} rec/s, merge {merge_ms:.3} ms -> {path}");
}

fn main() {
    if let Ok(path) = std::env::var("FIREHOSE_OUT") {
        firehose_report(&path);
        return;
    }

    let mut c = Criterion::default();
    let mut group = c.benchmark_group("firehose");
    group.bench_function("record_100k_single", |b| {
        let registry = Registry::new(1);
        let rec = registry.recorder(0);
        b.iter(|| {
            for i in 0..100_000u64 {
                rec.record(stage_of(i), synth(i));
            }
        });
    });
    for workers in [2usize, 4] {
        group.bench_function(format!("record_100k_x{workers}"), |b| {
            b.iter(|| black_box(time_scaling(workers, 100_000)));
        });
    }
    group.bench_function("snapshot_merge_8_slots", |b| {
        let registry = Registry::new(8);
        for slot in 0..8 {
            let rec = registry.recorder(slot);
            for i in 0..100_000u64 {
                rec.record(stage_of(i), synth(i));
            }
        }
        b.iter(|| black_box(registry.snapshot()));
    });
    group.finish();
}
