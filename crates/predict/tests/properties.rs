//! Property-based tests for the prediction service: deterministic fitting,
//! exact reproduction of measured pairs, and gate/table invariants.

use latest_predict::{cross_validate, Corpus, CorpusPair, PredictModel, PredictedTable};
use proptest::prelude::*;

/// Synthetic corpora over subsets of a paper-like frequency ladder. Each
/// pair's latency follows a |Δf| law scaled by an arbitrary per-pair factor
/// (so the regression cannot fit exactly), with symmetric sample noise.
fn corpora() -> impl Strategy<Value = Corpus> {
    (
        2usize..5,
        prop::collection::vec(0.5..3.0f64, 30),
        0.01..0.08f64,
    )
        .prop_map(|(n_extra, scales, noise)| {
            let pool = [540u32, 705, 900, 1095, 1260, 1410];
            let freqs = &pool[..2 + n_extra];
            let mut pairs = Vec::new();
            let mut k = 0;
            for &init in freqs {
                for &target in freqs {
                    if init == target {
                        continue;
                    }
                    let scale = scales[k % scales.len()];
                    k += 1;
                    let base = ((init as f64 - target as f64).abs() / 120.0 + 1.5) * scale;
                    pairs.push(CorpusPair {
                        init_mhz: init,
                        target_mhz: target,
                        samples_ms: vec![base * (1.0 - noise), base, base * (1.0 + noise)],
                        runs: 1,
                        outliers_rejected: 0,
                    });
                }
            }
            Corpus {
                device: "prop".to_string(),
                families: vec![],
                runs: 1,
                pairs,
            }
        })
}

proptest! {
    #[test]
    fn fit_is_deterministic_across_reserialisation(corpus in corpora()) {
        let a = PredictModel::fit(&corpus).unwrap();
        let b = PredictModel::fit(&corpus).unwrap();
        prop_assert_eq!(&a, &b);
        let json = a.to_json();
        let round = PredictModel::from_json(&json).unwrap();
        prop_assert_eq!(&round, &a);
        prop_assert_eq!(round.to_json(), json);
    }

    #[test]
    fn measured_pairs_are_reproduced_exactly(corpus in corpora()) {
        let model = PredictModel::fit(&corpus).unwrap();
        for pair in &corpus.pairs {
            let p = model.predict(pair.init_mhz, pair.target_mhz).unwrap();
            prop_assert_eq!(p.value_ms, pair.mean_ms());
            prop_assert_eq!(p.source.as_str(), "measured");
            prop_assert!(p.lo_ms <= p.value_ms && p.value_ms <= p.hi_ms);
        }
    }

    #[test]
    fn the_gate_partitions_the_predicted_table(corpus in corpora(), gate in 0.0..2.0f64) {
        let model = PredictModel::fit(&corpus).unwrap();
        let freqs = corpus.frequencies_mhz();
        let table = PredictedTable::over(&model, &freqs, gate);
        let accepted = table.accepted().count();
        prop_assert_eq!(accepted + table.rejected_pairs().len(), table.entries.len());
        for e in &table.entries {
            prop_assert_eq!(e.accepted, e.rel_width <= gate);
        }
        // The governor sees exactly the accepted pairs.
        prop_assert_eq!(table.to_latency_table().len(), accepted);
        // And the table itself round-trips canonically.
        let round = PredictedTable::from_json(&table.to_json()).unwrap();
        prop_assert_eq!(round.to_json(), table.to_json());
    }

    #[test]
    fn held_out_rows_never_answer_from_the_held_out_cell(corpus in corpora(), k in 2usize..6) {
        let report = cross_validate(&corpus, k).unwrap();
        prop_assert_eq!(report.rows.len(), corpus.pairs.len());
        for row in &report.rows {
            // The pair was held out of its fold's fit, so the answer must
            // come from the cascade's fallback tiers.
            prop_assert_ne!(row.source.as_str(), "measured");
        }
    }
}
