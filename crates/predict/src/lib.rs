//! Prediction service: latency models fitted over the result archive.
//!
//! The [`ResultStore`](latest_core::ResultStore) accumulates (device,
//! frequency-pair) → switching-latency measurements, but the valuable
//! product is the *model*, not the raw table: a governor wants an answer
//! for every pair it might switch between, including the ones nobody ever
//! measured. This crate closes that loop in four layers:
//!
//! * [`corpus`] — assemble training data from every archived run: group by
//!   device and experiment family
//!   ([`RunId::family_of`](latest_core::RunId::family_of)), pool
//!   each pair's outlier-filtered
//!   samples across runs, and reject cross-run stragglers with the same
//!   adaptive DBSCAN filter the measurement pipeline uses per pair;
//! * [`model`] — a per-device [`PredictModel`]: exact grid lookup over
//!   measured pairs, bilinear interpolation between them, and a robust
//!   log-space regression on (|Δf|, direction, target band) features for
//!   everything else, with confidence intervals from residual quantiles.
//!   Fitting is deterministic — the same corpus produces bitwise-identical
//!   model JSON;
//! * [`validate`] — k-fold held-out validation against measured pairs and
//!   closed-loop validation against simulator ground truth, rendered as
//!   predicted-vs-measured scatter and error-heatmap artifacts through
//!   `latest-report`;
//! * [`serve`] — the deployment surface: a [`PredictedTable`] that gates
//!   predictions by confidence and converts into a
//!   [`governor::LatencyTable`](latest_governor::LatencyTable) so the
//!   daemon can run policies over predicted latencies, plus a batch query
//!   path that routes low-confidence pairs back into the measurement queue.

pub mod corpus;
pub mod model;
pub mod serve;
pub mod validate;

pub use corpus::{build_corpora, corpus_for_device, family_matches, Corpus, CorpusPair};
pub use model::{GridCell, PredictModel, Prediction, PredictionSource};
pub use serve::{parse_batch_pairs, serve_batch, BatchOutcome, PredictedPair, PredictedTable};
pub use validate::{
    closed_loop_validate, cross_validate, ClosedLoopReport, ClosedLoopRow, ValidationReport,
    ValidationRow,
};

/// Errors surfaced by the prediction service.
#[derive(Debug)]
pub enum PredictError {
    /// Archive access failed.
    Store(latest_core::StoreError),
    /// No archived runs matched the requested device / family filter.
    EmptyCorpus {
        /// The device filter in effect, if any.
        device: Option<String>,
    },
    /// Too few measured pairs for the requested operation.
    NotEnoughPairs {
        /// Pairs available.
        have: usize,
        /// Pairs required.
        need: usize,
    },
    /// The regression could not be fitted.
    Fit(latest_stats::WlsError),
    /// The device name is not in the registry (closed-loop validation needs
    /// a simulator spec to replay transitions against).
    UnknownDevice(String),
    /// Malformed model / table / batch JSON.
    Json(String),
    /// Simulated platform construction or control failed during closed-loop
    /// validation.
    Platform(String),
    /// Submitting the follow-up measurement campaign failed.
    Queue(latest_queue::QueueError),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::Store(e) => write!(f, "archive: {e}"),
            PredictError::EmptyCorpus { device: Some(d) } => {
                write!(f, "no archived runs for device '{d}' match the filter")
            }
            PredictError::EmptyCorpus { device: None } => {
                write!(f, "the archive holds no runs matching the filter")
            }
            PredictError::NotEnoughPairs { have, need } => {
                write!(f, "corpus has {have} measured pairs, need at least {need}")
            }
            PredictError::Fit(e) => write!(f, "regression fit: {e}"),
            PredictError::UnknownDevice(d) => write!(f, "unknown device '{d}'"),
            PredictError::Json(e) => write!(f, "malformed JSON: {e}"),
            PredictError::Platform(e) => write!(f, "closed-loop platform: {e}"),
            PredictError::Queue(e) => write!(f, "queue: {e}"),
        }
    }
}

impl std::error::Error for PredictError {}

impl From<latest_core::StoreError> for PredictError {
    fn from(e: latest_core::StoreError) -> Self {
        PredictError::Store(e)
    }
}

impl From<latest_stats::WlsError> for PredictError {
    fn from(e: latest_stats::WlsError) -> Self {
        PredictError::Fit(e)
    }
}

impl From<latest_queue::QueueError> for PredictError {
    fn from(e: latest_queue::QueueError) -> Self {
        PredictError::Queue(e)
    }
}

/// Result alias for prediction-service operations.
pub type PredictResult<T> = Result<T, PredictError>;
