//! The model layer: a per-device latency model over the (init, target)
//! frequency plane.
//!
//! A fitted [`PredictModel`] answers a query through a three-tier cascade:
//!
//! 1. **Measured** — the pair is a grid cell: return the corpus mean with
//!    the sample's own 5–95 % quantiles as the interval. Exactness here is
//!    a contract (pinned by property tests): a model never disagrees with
//!    a measurement it was trained on.
//! 2. **Interpolated** — both frequencies lie inside the measured grid:
//!    bilinear interpolation over the surrounding measured cells (corners
//!    on the diagonal or missing from the grid drop out and the weights
//!    renormalise).
//! 3. **Regression** — everything else (extrapolation, sparse corners): a
//!    Huber-robust weighted least-squares fit in log space on features the
//!    related work identifies as explanatory — |Δf|, transition direction,
//!    and the target's position in the frequency band.
//!
//! Intervals for tiers 2–3 come from the regression's residual quantiles
//! ([`latest_stats::quantile()`]): multiplicative in log space, so they widen
//! proportionally with the predicted value.
//!
//! Fitting is deterministic end to end — same corpus ⇒ bitwise-identical
//! model JSON — because every input is sorted, the robust loop runs a fixed
//! iteration count, and serialisation goes through a flat, ordered repr.

use std::collections::BTreeMap;

use latest_stats::{huber_fit, quantile};
use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::{PredictError, PredictResult};

/// One measured cell of the (init, target) grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// Mean of the pooled corpus sample (ms).
    pub mean_ms: f64,
    /// 5 % quantile of the pooled sample (ms).
    pub q05_ms: f64,
    /// 95 % quantile of the pooled sample (ms).
    pub q95_ms: f64,
    /// Pooled sample size.
    pub n: u64,
}

/// Which tier of the cascade answered a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictionSource {
    /// Exact grid hit: the corpus measured this pair.
    Measured,
    /// Bilinear interpolation between measured grid cells.
    Interpolated,
    /// The parametric regression (extrapolation or sparse grid).
    Regression,
}

impl PredictionSource {
    /// Stable lowercase name (used in JSON and CSV).
    pub fn as_str(&self) -> &'static str {
        match self {
            PredictionSource::Measured => "measured",
            PredictionSource::Interpolated => "interpolated",
            PredictionSource::Regression => "regression",
        }
    }
}

impl std::fmt::Display for PredictionSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An answered query: a point estimate with a confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// Point estimate of the switching latency (ms).
    pub value_ms: f64,
    /// Lower confidence bound (ms).
    pub lo_ms: f64,
    /// Upper confidence bound (ms).
    pub hi_ms: f64,
    /// Which cascade tier produced the estimate.
    pub source: PredictionSource,
}

impl Prediction {
    /// Interval width relative to the point estimate — the confidence
    /// measure the serving layer gates on (0 = exact, larger = vaguer).
    pub fn rel_width(&self) -> f64 {
        if self.value_ms > 0.0 {
            (self.hi_ms - self.lo_ms) / self.value_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The regression feature sets, in fallback order: the full set needs
/// enough distinct pairs to be identifiable; tiny corpora degrade to
/// direction-only and finally to a bare intercept rather than failing.
const FEATURE_SETS: [&str; 3] = ["full", "direction", "intercept"];

/// A fitted per-device latency model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(from = "ModelRepr", into = "ModelRepr")]
pub struct PredictModel {
    /// Registry device name the corpus was assembled for.
    pub device: String,
    /// Distinct measured frequencies, ascending.
    pub grid_freqs_mhz: Vec<u32>,
    /// Measured cells keyed by (init, target).
    cells: BTreeMap<(u32, u32), GridCell>,
    /// Which feature set the regression uses (`full`, `direction` or
    /// `intercept`).
    pub feature_set: String,
    /// Regression coefficients in log-latency space.
    pub coefficients: Vec<f64>,
    /// 5 % quantile of the log-space fit residuals.
    pub residual_log_lo: f64,
    /// 95 % quantile of the log-space fit residuals.
    pub residual_log_hi: f64,
    /// Pairs the model was trained on.
    pub trained_pairs: u64,
    /// Total latency samples behind those pairs.
    pub training_samples: u64,
}

/// JSON shape of a [`PredictModel`]: cells as a flat, (init, target)-sorted
/// list (JSON map keys must be strings, so the tuple-keyed map cannot
/// serialise directly — same convention as `LatencyTable`).
#[derive(Serialize, Deserialize)]
struct ModelRepr {
    device: String,
    grid_freqs_mhz: Vec<u32>,
    cells: Vec<GridCell>,
    feature_set: String,
    coefficients: Vec<f64>,
    residual_log_lo: f64,
    residual_log_hi: f64,
    trained_pairs: u64,
    training_samples: u64,
}

impl From<ModelRepr> for PredictModel {
    fn from(repr: ModelRepr) -> Self {
        PredictModel {
            device: repr.device,
            grid_freqs_mhz: repr.grid_freqs_mhz,
            cells: repr
                .cells
                .into_iter()
                .map(|c| ((c.init_mhz, c.target_mhz), c))
                .collect(),
            feature_set: repr.feature_set,
            coefficients: repr.coefficients,
            residual_log_lo: repr.residual_log_lo,
            residual_log_hi: repr.residual_log_hi,
            trained_pairs: repr.trained_pairs,
            training_samples: repr.training_samples,
        }
    }
}

impl From<PredictModel> for ModelRepr {
    fn from(model: PredictModel) -> Self {
        ModelRepr {
            device: model.device,
            grid_freqs_mhz: model.grid_freqs_mhz,
            cells: model.cells.into_values().collect(),
            feature_set: model.feature_set,
            coefficients: model.coefficients,
            residual_log_lo: model.residual_log_lo,
            residual_log_hi: model.residual_log_hi,
            trained_pairs: model.trained_pairs,
            training_samples: model.training_samples,
        }
    }
}

/// Build the regression feature vector for a pair under a feature set.
///
/// The band feature places the *target* frequency within the device's
/// measured range (normalised position, split into thirds) — the related
/// work's observation that slow transitions cluster in particular target
/// bands, not uniformly over Δf.
fn features(set: &str, init_mhz: u32, target_mhz: u32, grid: &[u32]) -> Vec<f64> {
    let delta = (init_mhz as f64 - target_mhz as f64).abs() / 1000.0;
    let up = if target_mhz > init_mhz { 1.0 } else { 0.0 };
    match set {
        "intercept" => vec![1.0],
        "direction" => vec![1.0, delta, up],
        _ => {
            let (lo, hi) = match (grid.first(), grid.last()) {
                (Some(&lo), Some(&hi)) if hi > lo => (lo as f64, hi as f64),
                _ => (0.0, 1.0),
            };
            let t = ((target_mhz as f64 - lo) / (hi - lo)).clamp(0.0, 1.0);
            let mid = if (1.0 / 3.0..2.0 / 3.0).contains(&t) {
                1.0
            } else {
                0.0
            };
            let high = if t >= 2.0 / 3.0 { 1.0 } else { 0.0 };
            vec![1.0, delta, up, mid, high]
        }
    }
}

impl PredictModel {
    /// Fit a model over a corpus. Deterministic: the same corpus yields a
    /// bitwise-identical model (and therefore bitwise-identical JSON).
    pub fn fit(corpus: &Corpus) -> PredictResult<PredictModel> {
        let usable: Vec<_> = corpus
            .pairs
            .iter()
            .filter(|p| p.mean_ms().is_finite() && p.mean_ms() > 0.0)
            .collect();
        if usable.is_empty() {
            return Err(PredictError::EmptyCorpus {
                device: Some(corpus.device.clone()),
            });
        }

        let grid = corpus.frequencies_mhz();
        let mut cells = BTreeMap::new();
        for p in &usable {
            cells.insert(
                (p.init_mhz, p.target_mhz),
                GridCell {
                    init_mhz: p.init_mhz,
                    target_mhz: p.target_mhz,
                    mean_ms: p.mean_ms(),
                    q05_ms: quantile(&p.samples_ms, 0.05),
                    q95_ms: quantile(&p.samples_ms, 0.95),
                    n: p.samples_ms.len() as u64,
                },
            );
        }

        // Log-space regression, weighted by pooled sample count so a pair
        // measured across many runs counts for more than a thin one.
        let ys: Vec<f64> = usable.iter().map(|p| p.mean_ms().ln()).collect();
        let ws: Vec<f64> = usable.iter().map(|p| p.samples_ms.len() as f64).collect();
        let mut fitted = None;
        for set in FEATURE_SETS {
            let rows: Vec<Vec<f64>> = usable
                .iter()
                .map(|p| features(set, p.init_mhz, p.target_mhz, &grid))
                .collect();
            match huber_fit(&rows, &ys, &ws) {
                Ok(fit) => {
                    fitted = Some((set, fit));
                    break;
                }
                Err(_) => continue,
            }
        }
        let (feature_set, fit) =
            fitted.ok_or(PredictError::Fit(latest_stats::WlsError::Underdetermined))?;

        Ok(PredictModel {
            device: corpus.device.clone(),
            grid_freqs_mhz: grid,
            cells,
            feature_set: feature_set.to_string(),
            coefficients: fit.coefficients.clone(),
            residual_log_lo: quantile(&fit.residuals, 0.05),
            residual_log_hi: quantile(&fit.residuals, 0.95),
            trained_pairs: usable.len() as u64,
            training_samples: usable.iter().map(|p| p.samples_ms.len() as u64).sum(),
        })
    }

    /// The measured grid cells, in (init, target) order.
    pub fn cells(&self) -> impl Iterator<Item = &GridCell> + '_ {
        self.cells.values()
    }

    /// The measured cell for one pair, if the corpus covered it.
    pub fn cell(&self, init_mhz: u32, target_mhz: u32) -> Option<&GridCell> {
        self.cells.get(&(init_mhz, target_mhz))
    }

    /// Answer a query through the measured → interpolated → regression
    /// cascade. `None` only for the degenerate self-pair (`init == target`
    /// has no transition to predict).
    pub fn predict(&self, init_mhz: u32, target_mhz: u32) -> Option<Prediction> {
        if init_mhz == target_mhz {
            return None;
        }
        if let Some(cell) = self.cells.get(&(init_mhz, target_mhz)) {
            return Some(Prediction {
                init_mhz,
                target_mhz,
                value_ms: cell.mean_ms,
                lo_ms: cell.q05_ms,
                hi_ms: cell.q95_ms,
                source: PredictionSource::Measured,
            });
        }
        if let Some(value_ms) = self.interpolate(init_mhz, target_mhz) {
            return Some(self.with_residual_interval(
                init_mhz,
                target_mhz,
                value_ms,
                PredictionSource::Interpolated,
            ));
        }
        let x = features(
            &self.feature_set,
            init_mhz,
            target_mhz,
            &self.grid_freqs_mhz,
        );
        let value_ms = x
            .iter()
            .zip(&self.coefficients)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            .exp();
        Some(self.with_residual_interval(
            init_mhz,
            target_mhz,
            value_ms,
            PredictionSource::Regression,
        ))
    }

    fn with_residual_interval(
        &self,
        init_mhz: u32,
        target_mhz: u32,
        value_ms: f64,
        source: PredictionSource,
    ) -> Prediction {
        // Multiplicative interval: residual quantiles live in log space.
        let lo = value_ms * self.residual_log_lo.exp();
        let hi = value_ms * self.residual_log_hi.exp();
        Prediction {
            init_mhz,
            target_mhz,
            value_ms,
            lo_ms: lo.min(value_ms),
            hi_ms: hi.max(value_ms),
            source,
        }
    }

    /// Bilinear interpolation over measured grid cells. `None` when either
    /// frequency falls outside the measured range or no usable corner cell
    /// exists (diagonal corners and unmeasured cells drop out; remaining
    /// weights renormalise).
    fn interpolate(&self, init_mhz: u32, target_mhz: u32) -> Option<f64> {
        let (i0, i1, fi) = bracket(&self.grid_freqs_mhz, init_mhz)?;
        let (t0, t1, ft) = bracket(&self.grid_freqs_mhz, target_mhz)?;
        let corners = [
            (i0, t0, (1.0 - fi) * (1.0 - ft)),
            (i0, t1, (1.0 - fi) * ft),
            (i1, t0, fi * (1.0 - ft)),
            (i1, t1, fi * ft),
        ];
        let mut total_w = 0.0;
        let mut acc = 0.0;
        for (i, t, w) in corners {
            if w <= 0.0 || i == t {
                continue;
            }
            if let Some(cell) = self.cells.get(&(i, t)) {
                total_w += w;
                acc += w * cell.mean_ms;
            }
        }
        if total_w > 0.0 {
            Some(acc / total_w)
        } else {
            None
        }
    }

    /// Canonical JSON (two-space pretty form, trailing newline). Bitwise
    /// stable: same model ⇒ same bytes.
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("model serialises");
        text.push('\n');
        text
    }

    /// Parse a model from JSON.
    pub fn from_json(text: &str) -> PredictResult<PredictModel> {
        serde_json::from_str(text).map_err(|e| PredictError::Json(e.to_string()))
    }
}

/// Bracket `f` within the sorted grid: the two neighbouring grid values and
/// the fractional position between them. `None` outside the grid range.
fn bracket(grid: &[u32], f: u32) -> Option<(u32, u32, f64)> {
    let (&lo, &hi) = (grid.first()?, grid.last()?);
    if f < lo || f > hi {
        return None;
    }
    if let Some(&g) = grid.iter().find(|&&g| g == f) {
        return Some((g, g, 0.0));
    }
    let upper_idx = grid.iter().position(|&g| g > f)?;
    let (a, b) = (grid[upper_idx - 1], grid[upper_idx]);
    let frac = (f - a) as f64 / (b - a) as f64;
    Some((a, b, frac))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusPair;

    fn pair(init: u32, target: u32, samples: Vec<f64>) -> CorpusPair {
        CorpusPair {
            init_mhz: init,
            target_mhz: target,
            samples_ms: samples,
            runs: 1,
            outliers_rejected: 0,
        }
    }

    /// A synthetic 3-frequency corpus with latency = |Δf|/100 + direction.
    fn synthetic_corpus() -> Corpus {
        let freqs = [600u32, 900, 1200];
        let mut pairs = Vec::new();
        for &i in &freqs {
            for &t in &freqs {
                if i == t {
                    continue;
                }
                let base = (i as f64 - t as f64).abs() / 100.0 + if t > i { 2.0 } else { 1.0 };
                pairs.push(pair(i, t, vec![base * 0.95, base, base * 1.05]));
            }
        }
        Corpus {
            device: "synthetic".to_string(),
            families: vec!["run-0".to_string()],
            runs: 1,
            pairs,
        }
    }

    #[test]
    fn measured_pairs_are_reproduced_exactly() {
        let corpus = synthetic_corpus();
        let model = PredictModel::fit(&corpus).unwrap();
        for p in &corpus.pairs {
            let pred = model.predict(p.init_mhz, p.target_mhz).unwrap();
            assert_eq!(pred.source, PredictionSource::Measured);
            assert_eq!(pred.value_ms, p.mean_ms());
            assert!(pred.lo_ms <= pred.value_ms && pred.value_ms <= pred.hi_ms);
        }
    }

    #[test]
    fn self_pair_has_no_prediction() {
        let model = PredictModel::fit(&synthetic_corpus()).unwrap();
        assert!(model.predict(600, 600).is_none());
    }

    #[test]
    fn interior_queries_interpolate_between_cells() {
        let model = PredictModel::fit(&synthetic_corpus()).unwrap();
        // 750 MHz sits halfway between the 600 and 900 grid lines.
        let pred = model.predict(750, 1200).unwrap();
        assert_eq!(pred.source, PredictionSource::Interpolated);
        let lo_cell = model.cell(600, 1200).unwrap().mean_ms;
        let hi_cell = model.cell(900, 1200).unwrap().mean_ms;
        let expected = (lo_cell + hi_cell) / 2.0;
        assert!(
            (pred.value_ms - expected).abs() < 1e-9,
            "got {} want {expected}",
            pred.value_ms
        );
        assert!(pred.lo_ms <= pred.value_ms && pred.value_ms <= pred.hi_ms);
    }

    #[test]
    fn out_of_range_queries_fall_back_to_regression() {
        let model = PredictModel::fit(&synthetic_corpus()).unwrap();
        let pred = model.predict(1500, 600).unwrap();
        assert_eq!(pred.source, PredictionSource::Regression);
        assert!(pred.value_ms > 0.0);
        // The synthetic law says a 900 MHz downward drop costs ~10 ms; the
        // regression should land in a sane neighbourhood even extrapolating.
        assert!(pred.value_ms < 100.0);
    }

    #[test]
    fn fit_is_bitwise_deterministic() {
        let corpus = synthetic_corpus();
        let a = PredictModel::fit(&corpus).unwrap();
        let b = PredictModel::fit(&corpus).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_round_trip_preserves_the_model() {
        let model = PredictModel::fit(&synthetic_corpus()).unwrap();
        let round = PredictModel::from_json(&model.to_json()).unwrap();
        assert_eq!(model, round);
        assert_eq!(model.to_json(), round.to_json());
    }

    #[test]
    fn tiny_corpus_degrades_to_a_simpler_feature_set() {
        // Two pairs cannot identify five coefficients; the fit must degrade
        // deterministically instead of failing.
        let corpus = Corpus {
            device: "tiny".to_string(),
            families: vec![],
            runs: 1,
            pairs: vec![
                pair(600, 900, vec![2.0, 2.1]),
                pair(900, 600, vec![1.0, 1.1]),
            ],
        };
        let model = PredictModel::fit(&corpus).unwrap();
        assert_ne!(model.feature_set, "full");
        assert!(model.predict(600, 900).is_some());
        assert!(model.predict(2000, 100).unwrap().value_ms > 0.0);
    }

    #[test]
    fn bracket_geometry() {
        let grid = [600u32, 900, 1200];
        assert_eq!(bracket(&grid, 600), Some((600, 600, 0.0)));
        assert_eq!(bracket(&grid, 750), Some((600, 900, 0.5)));
        assert_eq!(bracket(&grid, 1200), Some((1200, 1200, 0.0)));
        assert_eq!(bracket(&grid, 599), None);
        assert_eq!(bracket(&grid, 1201), None);
        assert_eq!(bracket(&[], 600), None);
    }
}
