//! The validation layer: does the model deserve to be deployed?
//!
//! Two complementary checks. **Held-out validation** ([`cross_validate`])
//! answers "how well does the model predict pairs it never saw": pairs are
//! dealt into k folds deterministically, each fold's pairs are predicted by
//! a model fitted on the other folds, and the errors aggregate into
//! MAE/MAPE/RMSE plus interval coverage. **Closed-loop validation**
//! ([`closed_loop_validate`]) answers "how well does the model predict what
//! the silicon actually does": replay every grid pair on a fresh
//! [`SimPlatform`] and compare the prediction against the device's recorded
//! ground-truth transitions — the check the paper's methodology can never
//! run on real hardware.
//!
//! Both reports convert into `latest-report` artifacts (scatter, error
//! heatmap, table) for the `latest predict validate` CLI.

use latest_core::SimPlatform;
use latest_gpu_sim::devices::DeviceSpec;
use latest_gpu_sim::freq::FreqMhz;
use latest_report::{prediction_error_heatmap, Heatmap, PredictionRow, PredictionScatter};
use latest_sim_clock::SimDuration;
use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::model::PredictModel;
use crate::{PredictError, PredictResult};

/// One held-out (or ground-truth) comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// The held-out measured mean (ms).
    pub measured_ms: f64,
    /// The model's prediction (ms).
    pub predicted_ms: f64,
    /// Lower confidence bound (ms).
    pub lo_ms: f64,
    /// Upper confidence bound (ms).
    pub hi_ms: f64,
    /// Cascade tier that answered (`measured` never appears: the pair was
    /// held out).
    pub source: String,
}

/// Aggregate held-out validation metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Device validated.
    pub device: String,
    /// Folds used.
    pub folds: u64,
    /// Per-pair comparisons, in (init, target) order.
    pub rows: Vec<ValidationRow>,
    /// Mean absolute error (ms).
    pub mae_ms: f64,
    /// Mean absolute percentage error (fraction, not percent).
    pub mape: f64,
    /// Root-mean-square error (ms).
    pub rmse_ms: f64,
    /// Fraction of held-out means inside the predicted interval.
    pub coverage: f64,
}

impl ValidationReport {
    /// Canonical JSON (two-space pretty form, trailing newline).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("report serialises");
        text.push('\n');
        text
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> PredictResult<ValidationReport> {
        serde_json::from_str(text).map_err(|e| PredictError::Json(e.to_string()))
    }

    /// The predicted-vs-measured scatter artifact.
    pub fn scatter(&self) -> PredictionScatter {
        PredictionScatter::new(
            format!("held-out predicted vs measured — {}", self.device),
            prediction_rows(&self.rows),
        )
    }

    /// The absolute-relative-error heatmap artifact.
    pub fn error_heatmap(&self) -> Heatmap {
        prediction_error_heatmap(
            &prediction_rows(&self.rows),
            &format!("held-out abs rel error [%] — {}", self.device),
        )
    }
}

fn prediction_rows(rows: &[ValidationRow]) -> Vec<PredictionRow> {
    rows.iter()
        .map(|r| PredictionRow {
            init_mhz: r.init_mhz,
            target_mhz: r.target_mhz,
            measured_ms: r.measured_ms,
            predicted_ms: r.predicted_ms,
            lo_ms: r.lo_ms,
            hi_ms: r.hi_ms,
            source: r.source.clone(),
        })
        .collect()
}

fn metrics(rows: &[ValidationRow]) -> (f64, f64, f64, f64) {
    let n = rows.len() as f64;
    if rows.is_empty() {
        return (f64::NAN, f64::NAN, f64::NAN, f64::NAN);
    }
    let mae = rows
        .iter()
        .map(|r| (r.predicted_ms - r.measured_ms).abs())
        .sum::<f64>()
        / n;
    let mape = rows
        .iter()
        .map(|r| ((r.predicted_ms - r.measured_ms) / r.measured_ms).abs())
        .sum::<f64>()
        / n;
    let rmse = (rows
        .iter()
        .map(|r| (r.predicted_ms - r.measured_ms).powi(2))
        .sum::<f64>()
        / n)
        .sqrt();
    let coverage = rows
        .iter()
        .filter(|r| (r.lo_ms..=r.hi_ms).contains(&r.measured_ms))
        .count() as f64
        / n;
    (mae, mape, rmse, coverage)
}

/// K-fold held-out validation. Pairs are assigned to folds by their index
/// in (init, target) order (`index % k`) — deterministic, no RNG — and each
/// fold is predicted by a model fitted on the remaining pairs. `k` is
/// clamped to the pair count; at least two measured pairs are required.
pub fn cross_validate(corpus: &Corpus, k: usize) -> PredictResult<ValidationReport> {
    if corpus.pairs.len() < 2 {
        return Err(PredictError::NotEnoughPairs {
            have: corpus.pairs.len(),
            need: 2,
        });
    }
    let k = k.clamp(2, corpus.pairs.len());

    let mut rows = Vec::new();
    for fold in 0..k {
        let training = Corpus {
            device: corpus.device.clone(),
            families: corpus.families.clone(),
            runs: corpus.runs,
            pairs: corpus
                .pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k != fold)
                .map(|(_, p)| p.clone())
                .collect(),
        };
        let model = PredictModel::fit(&training)?;
        for (_, held_out) in corpus
            .pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
        {
            let p = model
                .predict(held_out.init_mhz, held_out.target_mhz)
                .expect("held-out pairs are never self-pairs");
            rows.push(ValidationRow {
                init_mhz: held_out.init_mhz,
                target_mhz: held_out.target_mhz,
                measured_ms: held_out.mean_ms(),
                predicted_ms: p.value_ms,
                lo_ms: p.lo_ms,
                hi_ms: p.hi_ms,
                source: p.source.as_str().to_string(),
            });
        }
    }
    rows.sort_by_key(|r| (r.init_mhz, r.target_mhz));

    let (mae_ms, mape, rmse_ms, coverage) = metrics(&rows);
    Ok(ValidationReport {
        device: corpus.device.clone(),
        folds: k as u64,
        rows,
        mae_ms,
        mape,
        rmse_ms,
        coverage,
    })
}

/// One ground-truth comparison from the closed loop.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopRow {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// Mean ground-truth switching latency over the replayed transitions
    /// (ms).
    pub truth_ms: f64,
    /// The model's prediction (ms).
    pub predicted_ms: f64,
    /// Prediction interval (ms).
    pub lo_ms: f64,
    /// Prediction interval (ms).
    pub hi_ms: f64,
}

/// Aggregate closed-loop validation metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopReport {
    /// Device replayed.
    pub device: String,
    /// Ground-truth transitions replayed per pair.
    pub reps: u64,
    /// Per-pair comparisons, in (init, target) order.
    pub rows: Vec<ClosedLoopRow>,
    /// Mean absolute error against ground truth (ms).
    pub mae_ms: f64,
    /// Mean absolute percentage error against ground truth.
    pub mape: f64,
}

impl ClosedLoopReport {
    /// Canonical JSON (two-space pretty form, trailing newline).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("report serialises");
        text.push('\n');
        text
    }

    /// The ground-truth-vs-predicted scatter artifact.
    pub fn scatter(&self) -> PredictionScatter {
        PredictionScatter::new(
            format!("closed-loop predicted vs ground truth — {}", self.device),
            self.rows
                .iter()
                .map(|r| PredictionRow {
                    init_mhz: r.init_mhz,
                    target_mhz: r.target_mhz,
                    measured_ms: r.truth_ms,
                    predicted_ms: r.predicted_ms,
                    lo_ms: r.lo_ms,
                    hi_ms: r.hi_ms,
                    source: "ground-truth".to_string(),
                })
                .collect(),
        )
    }
}

/// Closed-loop validation: replay every grid pair on a fresh simulated
/// platform and compare predictions against the device's recorded
/// ground-truth transitions. Each pair is replayed `reps` times under
/// deterministic per-(pair, rep) seeds derived from `seed`.
pub fn closed_loop_validate(
    model: &PredictModel,
    spec: &DeviceSpec,
    reps: u32,
    seed: u64,
) -> PredictResult<ClosedLoopReport> {
    let reps = reps.max(1);
    let mut rows = Vec::new();
    for cell in model.cells() {
        let (init, target) = (cell.init_mhz, cell.target_mhz);
        let mut truths = Vec::new();
        for rep in 0..reps {
            // Pair/rep-addressed seed: stable under reordering.
            let pair_seed = seed ^ ((init as u64) << 40) ^ ((target as u64) << 16) ^ rep as u64;
            let mut platform = SimPlatform::new(spec.clone(), pair_seed)
                .map_err(|e| PredictError::Platform(e.to_string()))?;
            // First lock lands the device at `init`, second is the measured
            // transition; ground truth records both, we take the last.
            platform
                .nvml
                .set_gpu_locked_clocks(FreqMhz(init))
                .map_err(|e| PredictError::Platform(e.to_string()))?;
            // Let the first transition settle so the second starts cleanly
            // from `init`.
            platform.cuda.usleep(SimDuration::from_micros(200_000));
            platform
                .nvml
                .set_gpu_locked_clocks(FreqMhz(target))
                .map_err(|e| PredictError::Platform(e.to_string()))?;
            let gt = platform
                .last_ground_truth()
                .expect("transition just requested");
            truths.push(gt.switching_latency().as_millis_f64());
        }
        let truth_ms = truths.iter().sum::<f64>() / truths.len() as f64;
        let p = model
            .predict(init, target)
            .expect("grid cells are never self-pairs");
        rows.push(ClosedLoopRow {
            init_mhz: init,
            target_mhz: target,
            truth_ms,
            predicted_ms: p.value_ms,
            lo_ms: p.lo_ms,
            hi_ms: p.hi_ms,
        });
    }
    if rows.is_empty() {
        return Err(PredictError::EmptyCorpus {
            device: Some(model.device.clone()),
        });
    }
    let n = rows.len() as f64;
    let mae_ms = rows
        .iter()
        .map(|r| (r.predicted_ms - r.truth_ms).abs())
        .sum::<f64>()
        / n;
    let mape = rows
        .iter()
        .map(|r| ((r.predicted_ms - r.truth_ms) / r.truth_ms).abs())
        .sum::<f64>()
        / n;
    Ok(ClosedLoopReport {
        device: model.device.clone(),
        reps: reps as u64,
        rows,
        mae_ms,
        mape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusPair;

    fn corpus(freqs: &[u32]) -> Corpus {
        let mut pairs = Vec::new();
        for &i in freqs {
            for &t in freqs {
                if i == t {
                    continue;
                }
                let base = (i as f64 - t as f64).abs() / 200.0 + 1.5;
                pairs.push(CorpusPair {
                    init_mhz: i,
                    target_mhz: t,
                    samples_ms: vec![base * 0.97, base * 0.99, base, base * 1.01, base * 1.03],
                    runs: 1,
                    outliers_rejected: 0,
                });
            }
        }
        Corpus {
            device: "synthetic".to_string(),
            families: vec![],
            runs: 1,
            pairs,
        }
    }

    #[test]
    fn held_out_error_is_bounded_on_a_lawful_corpus() {
        // The corpus follows an affine law in |Δf| — exactly what the
        // regression can express, so held-out error must be small.
        let report = cross_validate(&corpus(&[500, 750, 1000, 1250]), 4).unwrap();
        assert_eq!(report.rows.len(), 12);
        assert_eq!(report.folds, 4);
        // No held-out prediction may claim to be a measurement.
        assert!(report.rows.iter().all(|r| r.source != "measured"));
        assert!(
            report.mape < 0.25,
            "held-out MAPE {:.3} out of bounds",
            report.mape
        );
        assert!(report.mae_ms.is_finite() && report.rmse_ms >= report.mae_ms);
    }

    #[test]
    fn cross_validation_is_deterministic() {
        let c = corpus(&[500, 750, 1000]);
        let a = cross_validate(&c, 3).unwrap();
        let b = cross_validate(&c, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn too_few_pairs_is_an_error() {
        let mut c = corpus(&[500, 750]);
        c.pairs.truncate(1);
        assert!(matches!(
            cross_validate(&c, 5),
            Err(PredictError::NotEnoughPairs { have: 1, need: 2 })
        ));
    }

    #[test]
    fn report_artifacts_render() {
        use latest_report::{render_to_string, Format};
        let report = cross_validate(&corpus(&[500, 750, 1000]), 3).unwrap();
        let scatter = report.scatter();
        for format in Format::ALL {
            assert!(!render_to_string(&scatter, format).unwrap().is_empty());
        }
        let hm = report.error_heatmap();
        assert_eq!(hm.n_rows(), 3);
        let round = ValidationReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, round);
    }

    #[test]
    fn closed_loop_tracks_ground_truth_on_the_real_device_model() {
        use latest_gpu_sim::devices;
        // Train on actual simulator behaviour: run a reduced campaign and
        // fit on its archive, then replay ground truth on the same device.
        let spec = latest_core::CampaignSpec::builder("a100")
            .frequencies_mhz(&[540, 1095])
            .measurements(6, 10)
            .rse_threshold(0.5)
            .seed(17)
            .build()
            .unwrap();
        let dir =
            std::env::temp_dir().join(format!("latest_predict_closed_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = latest_core::ResultStore::open(&dir).unwrap();
        let result = spec.clone().into_session().unwrap().run().unwrap();
        store.put(&spec, &result).unwrap();
        let corpus = crate::corpus_for_device(&store, "a100", None).unwrap();
        let model = PredictModel::fit(&corpus).unwrap();

        let device = devices::DeviceRegistry::builtin().get("a100").unwrap();
        let report = closed_loop_validate(&model, &device, 3, 99).unwrap();
        assert_eq!(report.rows.len(), corpus.pairs.len());
        assert!(report.rows.iter().all(|r| r.truth_ms > 0.0));
        // The model was trained on measurements of this same silicon; the
        // closed loop must agree to within a loose factor.
        assert!(
            report.mape < 0.5,
            "closed-loop MAPE {:.3} out of bounds",
            report.mape
        );

        let again = closed_loop_validate(&model, &device, 3, 99).unwrap();
        assert_eq!(report, again);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
