//! The corpus layer: turn an archive of runs into per-device training data.
//!
//! Every archived run contributes its outlier-filtered per-pair samples
//! (through the same [`LatencyView`]/`PairView` projections every other
//! consumer uses). Runs are grouped by the *device* their spec names and by
//! experiment family ([`RunId::family_of`] — same spec up to the seed), so
//! re-runs of one experiment pool naturally. After pooling, each pair's
//! combined sample passes once more through the adaptive DBSCAN outlier
//! filter: a run measured under a disturbance regime can contribute
//! stragglers that are inliers within that run but outliers across the
//! corpus.
//!
//! Assembly is deterministic: runs are visited in run-id order, pairs are
//! kept in `(init, target)` order, and samples are sorted ascending.

use std::collections::{BTreeMap, BTreeSet};

use latest_cluster::{adaptive_outlier_filter, AdaptiveConfig};
use latest_core::{LatencyView, ResultStore, RunId};

use crate::{PredictError, PredictResult};

/// Pooled training sample for one ordered frequency pair.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusPair {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// Pooled, cross-run-filtered latencies (ms), sorted ascending.
    pub samples_ms: Vec<f64>,
    /// Number of archived runs contributing samples to this pair.
    pub runs: u64,
    /// Samples dropped by the cross-run outlier pass.
    pub outliers_rejected: u64,
}

impl CorpusPair {
    /// Mean of the pooled sample (NaN when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            return f64::NAN;
        }
        self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
    }
}

/// Training data for one device, assembled from the archive.
#[derive(Clone, Debug, PartialEq)]
pub struct Corpus {
    /// Registry device name the runs were specified against (kept as the
    /// spec-level name, not the resolved marketing name, so low-confidence
    /// pairs can be resubmitted as campaign specs).
    pub device: String,
    /// Experiment families contributing runs, sorted.
    pub families: Vec<String>,
    /// Archived runs contributing.
    pub runs: u64,
    /// Per-pair pooled samples, sorted by `(init, target)`.
    pub pairs: Vec<CorpusPair>,
}

impl Corpus {
    /// Distinct frequencies appearing in any pair, ascending.
    pub fn frequencies_mhz(&self) -> Vec<u32> {
        let mut freqs: BTreeSet<u32> = BTreeSet::new();
        for p in &self.pairs {
            freqs.insert(p.init_mhz);
            freqs.insert(p.target_mhz);
        }
        freqs.into_iter().collect()
    }

    /// The pooled sample for one ordered pair.
    pub fn pair(&self, init_mhz: u32, target_mhz: u32) -> Option<&CorpusPair> {
        self.pairs
            .iter()
            .find(|p| p.init_mhz == init_mhz && p.target_mhz == target_mhz)
    }

    /// Total pooled samples across all pairs.
    pub fn total_samples(&self) -> u64 {
        self.pairs.iter().map(|p| p.samples_ms.len() as u64).sum()
    }
}

/// Does a family id match a CLI-style prefix? Accepts the prefix with or
/// without the `run-` sigil, so `latest list-runs --family 3fa9` and
/// `--family run-3fa9` mean the same thing.
pub fn family_matches(family: &RunId, prefix: &str) -> bool {
    let id = family.as_str();
    id.starts_with(prefix) || id.trim_start_matches("run-").starts_with(prefix)
}

/// Assemble one corpus per device from every archived run, optionally
/// restricted to families matching `family_prefix`. Devices come back in
/// name order; devices with no usable pairs are omitted.
pub fn build_corpora(
    store: &ResultStore,
    family_prefix: Option<&str>,
) -> PredictResult<Vec<Corpus>> {
    let mut runs = store.list()?;
    runs.sort_by(|a, b| a.run_id.cmp(&b.run_id));

    // device -> (families, run count, pair -> (samples, contributing runs))
    type PairAcc = BTreeMap<(u32, u32), (Vec<f64>, u64)>;
    let mut by_device: BTreeMap<String, (BTreeSet<String>, u64, PairAcc)> = BTreeMap::new();

    for run in &runs {
        let family = RunId::family_of(&run.spec);
        if let Some(prefix) = family_prefix {
            if !family_matches(&family, prefix) {
                continue;
            }
        }
        let entry = by_device.entry(run.spec.device.clone()).or_default();
        entry.0.insert(family.as_str().to_string());
        entry.1 += 1;
        let view = LatencyView::of(&run.result).completed();
        for pair in view.pairs() {
            if let Some(filtered) = pair.filtered_ms() {
                if filtered.is_empty() {
                    continue;
                }
                let acc = entry
                    .2
                    .entry((pair.init_mhz(), pair.target_mhz()))
                    .or_default();
                acc.0.extend_from_slice(filtered);
                acc.1 += 1;
            }
        }
    }

    let mut corpora = Vec::new();
    for (device, (families, run_count, pair_acc)) in by_device {
        let mut pairs = Vec::new();
        for ((init, target), (pooled, contributing)) in pair_acc {
            let (mut samples, rejected) =
                match adaptive_outlier_filter(&pooled, &AdaptiveConfig::default()) {
                    // Cross-run pass: keep the filter's inliers.
                    Some(outcome) => {
                        let inliers = outcome.inliers(&pooled);
                        let rejected = (pooled.len() - inliers.len()) as u64;
                        (inliers, rejected)
                    }
                    // Too small / degenerate for DBSCAN: keep everything,
                    // matching the per-pair filter's own behaviour.
                    None => (pooled, 0),
                };
            if samples.is_empty() {
                continue;
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in latency sample"));
            pairs.push(CorpusPair {
                init_mhz: init,
                target_mhz: target,
                samples_ms: samples,
                runs: contributing,
                outliers_rejected: rejected,
            });
        }
        if pairs.is_empty() {
            continue;
        }
        corpora.push(Corpus {
            device,
            families: families.into_iter().collect(),
            runs: run_count,
            pairs,
        });
    }
    Ok(corpora)
}

/// The corpus for one device (by registry name), with an optional family
/// prefix filter. Errors when the archive holds nothing matching.
pub fn corpus_for_device(
    store: &ResultStore,
    device: &str,
    family_prefix: Option<&str>,
) -> PredictResult<Corpus> {
    build_corpora(store, family_prefix)?
        .into_iter()
        .find(|c| c.device == device)
        .ok_or_else(|| PredictError::EmptyCorpus {
            device: Some(device.to_string()),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_core::spec::CampaignSpec;

    fn tiny_spec(seed: u64) -> CampaignSpec {
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[540, 1095])
            .seed(seed)
            .measurements(4, 6)
            .rse_threshold(0.5)
            .build()
            .unwrap()
    }

    fn temp_store(tag: &str) -> (std::path::PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!(
            "latest_predict_corpus_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (dir.clone(), ResultStore::open(dir).unwrap())
    }

    #[test]
    fn pools_across_seeds_within_one_family() {
        let (dir, store) = temp_store("pool");
        for seed in [11, 12] {
            let spec = tiny_spec(seed);
            let result = spec.clone().into_session().unwrap().run().unwrap();
            store.put(&spec, &result).unwrap();
        }

        let corpora = build_corpora(&store, None).unwrap();
        assert_eq!(corpora.len(), 1);
        let corpus = &corpora[0];
        assert_eq!(corpus.device, "a100");
        assert_eq!(corpus.runs, 2);
        // Seeds differ, family doesn't.
        assert_eq!(corpus.families.len(), 1);
        // 2 frequencies => 2 ordered pairs, each fed by both runs.
        assert_eq!(corpus.pairs.len(), 2);
        for pair in &corpus.pairs {
            assert_eq!(pair.runs, 2, "{}->{}", pair.init_mhz, pair.target_mhz);
            assert!(pair.samples_ms.len() >= 8);
            assert!(pair.samples_ms.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(corpus.frequencies_mhz(), vec![540, 1095]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn family_filter_excludes_other_experiments() {
        let (dir, store) = temp_store("family");
        let spec_a = tiny_spec(1);
        let result_a = spec_a.clone().into_session().unwrap().run().unwrap();
        store.put(&spec_a, &result_a).unwrap();

        let mut spec_b = tiny_spec(1);
        spec_b.description = "another family".to_string();
        let result_b = spec_b.clone().into_session().unwrap().run().unwrap();
        store.put(&spec_b, &result_b).unwrap();

        let family_a = RunId::family_of(&spec_a);
        assert_ne!(family_a, RunId::family_of(&spec_b));

        let all = build_corpora(&store, None).unwrap();
        assert_eq!(all[0].runs, 2);

        // A full-id prefix and a bare-hex prefix both select just family A.
        for prefix in [
            family_a.as_str().to_string(),
            family_a.as_str().trim_start_matches("run-")[..8].to_string(),
        ] {
            let filtered = build_corpora(&store, Some(&prefix)).unwrap();
            assert_eq!(filtered.len(), 1, "prefix {prefix}");
            assert_eq!(filtered[0].runs, 1);
            assert_eq!(filtered[0].families, vec![family_a.as_str().to_string()]);
        }

        assert!(matches!(
            corpus_for_device(&store, "quadro", None),
            Err(PredictError::EmptyCorpus { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
