//! The serving layer: deploy a fitted model to consumers.
//!
//! Two consumers exist today. The governor daemon wants a
//! [`LatencyTable`] covering every pair it
//! might switch between: [`PredictedTable::over`] materialises one from the
//! model, *confidence-gated* — pairs whose interval is too wide relative to
//! their estimate are marked rejected and stay out of the converted table,
//! so the latency-aware policy's unknown-pair refusal becomes a refusal of
//! low-confidence predictions only. Batch clients submit pair lists:
//! [`serve_batch`] answers every pair it can and routes the low-confidence
//! remainder back into the measurement [`JobQueue`]
//! as a follow-up campaign, so model-serving traffic and measurement
//! traffic share one service.

use latest_core::{CampaignSpec, FreqSelection, ScenarioSpec};
use latest_governor::{LatencyTable, PairLatency};
use latest_queue::{JobQueue, SubmitOptions};
use serde::{Deserialize, Serialize};

use crate::model::PredictModel;
use crate::{PredictError, PredictResult};

/// One served prediction, with its confidence verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictedPair {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// Point estimate (ms).
    pub value_ms: f64,
    /// Lower confidence bound (ms).
    pub lo_ms: f64,
    /// Upper confidence bound (ms).
    pub hi_ms: f64,
    /// Interval width relative to the estimate.
    pub rel_width: f64,
    /// Cascade tier that produced the estimate (`measured`,
    /// `interpolated` or `regression`).
    pub source: String,
    /// Whether the pair passed the confidence gate.
    pub accepted: bool,
}

/// A confidence-gated prediction table over a frequency set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictedTable {
    /// Registry device name of the underlying model.
    pub device: String,
    /// The gate: maximum accepted interval width relative to the estimate.
    pub max_rel_width: f64,
    /// Every ordered pair over the frequency set, accepted or not, in
    /// (init, target) order.
    pub entries: Vec<PredictedPair>,
}

impl PredictedTable {
    /// Predict every ordered pair over `freqs` (diagonal excluded) and gate
    /// each by `max_rel_width`. Frequencies are deduplicated and sorted so
    /// the table layout is deterministic regardless of argument order.
    pub fn over(model: &PredictModel, freqs: &[u32], max_rel_width: f64) -> PredictedTable {
        let mut sorted: Vec<u32> = freqs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut entries = Vec::new();
        for &init in &sorted {
            for &target in &sorted {
                let Some(p) = model.predict(init, target) else {
                    continue;
                };
                let rel_width = p.rel_width();
                entries.push(PredictedPair {
                    init_mhz: init,
                    target_mhz: target,
                    value_ms: p.value_ms,
                    lo_ms: p.lo_ms,
                    hi_ms: p.hi_ms,
                    rel_width,
                    source: p.source.as_str().to_string(),
                    accepted: rel_width <= max_rel_width,
                });
            }
        }
        PredictedTable {
            device: model.device.clone(),
            max_rel_width,
            entries,
        }
    }

    /// The entries that passed the confidence gate.
    pub fn accepted(&self) -> impl Iterator<Item = &PredictedPair> + '_ {
        self.entries.iter().filter(|e| e.accepted)
    }

    /// Entries that failed the gate, as bare pairs (measurement candidates).
    pub fn rejected_pairs(&self) -> Vec<(u32, u32)> {
        self.entries
            .iter()
            .filter(|e| !e.accepted)
            .map(|e| (e.init_mhz, e.target_mhz))
            .collect()
    }

    /// Convert into the governor's [`LatencyTable`]. Each accepted pair
    /// becomes a three-point sample `[lo, value, hi]`, so the daemon's
    /// expected/tail queries and the transition replay see the predicted
    /// distribution, not just a point. Rejected pairs stay absent — to the
    /// latency-aware policy they are unknown, exactly as unmeasured pairs
    /// are in a measured table.
    pub fn to_latency_table(&self) -> LatencyTable {
        let mut table = LatencyTable::new(self.device.clone());
        for e in self.accepted() {
            table.insert(PairLatency::new(
                e.init_mhz,
                e.target_mhz,
                vec![e.lo_ms, e.value_ms, e.hi_ms],
            ));
        }
        table
    }

    /// Canonical JSON (two-space pretty form, trailing newline).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("table serialises");
        text.push('\n');
        text
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> PredictResult<PredictedTable> {
        serde_json::from_str(text).map_err(|e| PredictError::Json(e.to_string()))
    }
}

/// Outcome of a batch query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// One answer per queried pair, in query order (self-pairs dropped).
    pub answers: Vec<PredictedPair>,
    /// Pairs that failed the confidence gate.
    pub low_confidence: Vec<Vec<u32>>,
    /// Id of the follow-up measurement job, when one was submitted.
    pub submitted_job: Option<String>,
}

impl BatchOutcome {
    /// Canonical JSON (two-space pretty form, trailing newline).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("outcome serialises");
        text.push('\n');
        text
    }
}

/// Answer a batch of pair queries from the model, gating each by
/// `max_rel_width`. When `queue` is given along with a template campaign
/// spec, the low-confidence pairs are resubmitted as one measurement
/// campaign (the template with its frequency list replaced by the union of
/// the uncertain frequencies) — the same worker pool that serves measured
/// campaigns picks it up, and the next `fit` folds the new runs in.
pub fn serve_batch(
    model: &PredictModel,
    pairs: &[(u32, u32)],
    max_rel_width: f64,
    queue: Option<(&JobQueue, &CampaignSpec)>,
) -> PredictResult<BatchOutcome> {
    let mut answers = Vec::new();
    let mut low_confidence = Vec::new();
    for &(init, target) in pairs {
        let Some(p) = model.predict(init, target) else {
            continue;
        };
        let rel_width = p.rel_width();
        let accepted = rel_width <= max_rel_width;
        if !accepted {
            low_confidence.push(vec![init, target]);
        }
        answers.push(PredictedPair {
            init_mhz: init,
            target_mhz: target,
            value_ms: p.value_ms,
            lo_ms: p.lo_ms,
            hi_ms: p.hi_ms,
            rel_width,
            source: p.source.as_str().to_string(),
            accepted,
        });
    }

    let mut submitted_job = None;
    if let (Some((queue, template)), false) = (queue, low_confidence.is_empty()) {
        let mut freqs: Vec<u32> = low_confidence.iter().flatten().copied().collect();
        freqs.sort_unstable();
        freqs.dedup();
        let mut spec = template.clone();
        spec.frequencies = FreqSelection::List(freqs);
        spec.description = format!(
            "predict follow-up: {} low-confidence pair(s) of {}",
            low_confidence.len(),
            model.device
        );
        let job = queue.submit(ScenarioSpec::Campaign(spec), SubmitOptions::default())?;
        submitted_job = Some(format!("job-{}", job.id.0));
    }

    Ok(BatchOutcome {
        answers,
        low_confidence,
        submitted_job,
    })
}

/// Parse a batch query file: JSON of the form
/// `{"pairs": [[init, target], ...]}`.
pub fn parse_batch_pairs(text: &str) -> PredictResult<Vec<(u32, u32)>> {
    #[derive(Deserialize)]
    struct Batch {
        pairs: Vec<Vec<u32>>,
    }
    let batch: Batch = serde_json::from_str(text).map_err(|e| PredictError::Json(e.to_string()))?;
    batch
        .pairs
        .iter()
        .map(|p| match p.as_slice() {
            [init, target] => Ok((*init, *target)),
            other => Err(PredictError::Json(format!(
                "each pair must be [init, target], got {} element(s)",
                other.len()
            ))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusPair};

    fn corpus() -> Corpus {
        let freqs = [600u32, 900, 1200, 1500];
        let mut pairs = Vec::new();
        for &i in &freqs {
            for &t in &freqs {
                if i == t {
                    continue;
                }
                // A per-pair factor no (|Δf|, direction, band) feature can
                // express, so the regression keeps honest residuals and its
                // extrapolations stay wide.
                let wiggle = 1.0 + 0.2 * (((i * 7 + t * 13) / 100 % 5) as f64 - 2.0);
                let base = ((i as f64 - t as f64).abs() / 100.0 + 1.0) * wiggle;
                pairs.push(CorpusPair {
                    init_mhz: i,
                    target_mhz: t,
                    samples_ms: vec![base * 0.98, base, base * 1.02],
                    runs: 1,
                    outliers_rejected: 0,
                });
            }
        }
        Corpus {
            device: "a100".to_string(),
            families: vec![],
            runs: 1,
            pairs,
        }
    }

    #[test]
    fn gated_table_converts_to_governor_table() {
        let model = PredictModel::fit(&corpus()).unwrap();
        let table = PredictedTable::over(&model, &[600, 900, 1200, 750], 0.5);
        // 4 frequencies => 12 ordered pairs predicted.
        assert_eq!(table.entries.len(), 12);
        // Measured pairs are tight and must pass the gate.
        assert!(table
            .entries
            .iter()
            .filter(|e| e.source == "measured")
            .all(|e| e.accepted));

        let latency = table.to_latency_table();
        assert_eq!(latency.device_name, "a100");
        assert_eq!(latency.len(), table.accepted().count());
        // The governor sees the predicted interval as the sample.
        let measured = table.accepted().next().unwrap();
        let pair = latency
            .pair(
                latest_gpu_sim::freq::FreqMhz(measured.init_mhz),
                latest_gpu_sim::freq::FreqMhz(measured.target_mhz),
            )
            .unwrap();
        assert_eq!(pair.latencies_ms.len(), 3);
    }

    #[test]
    fn a_strict_gate_rejects_vague_predictions() {
        let model = PredictModel::fit(&corpus()).unwrap();
        let loose = PredictedTable::over(&model, &[600, 750, 900, 1200], f64::INFINITY);
        let strict = PredictedTable::over(&model, &[600, 750, 900, 1200], 0.0);
        assert_eq!(loose.accepted().count(), loose.entries.len());
        // A zero-width gate keeps only pairs with degenerate intervals.
        assert!(strict.accepted().count() < loose.accepted().count());
        assert!(!strict.rejected_pairs().is_empty());
    }

    #[test]
    fn predicted_table_json_round_trips() {
        let model = PredictModel::fit(&corpus()).unwrap();
        let table = PredictedTable::over(&model, &[600, 900], 0.5);
        let round = PredictedTable::from_json(&table.to_json()).unwrap();
        assert_eq!(table, round);
        assert_eq!(table.to_json(), round.to_json());
    }

    #[test]
    fn batch_serving_submits_follow_up_measurement() {
        let model = PredictModel::fit(&corpus()).unwrap();
        let dir = std::env::temp_dir().join(format!("latest_predict_serve_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let queue = JobQueue::open(&dir).unwrap();
        let template = latest_core::CampaignSpec::builder("a100")
            .frequencies_mhz(&[600, 900])
            .measurements(4, 6)
            .rse_threshold(0.5)
            .build()
            .unwrap();

        // One confident (measured) pair, one vague (regression, far outside
        // the grid) pair under a tight gate.
        let outcome = serve_batch(
            &model,
            &[(600, 900), (1410, 540)],
            0.3,
            Some((&queue, &template)),
        )
        .unwrap();
        assert_eq!(outcome.answers.len(), 2);
        assert!(outcome.answers[0].accepted);
        assert!(!outcome.answers[1].accepted);
        assert_eq!(outcome.low_confidence, vec![vec![1410, 540]]);

        let job_id = outcome.submitted_job.expect("follow-up submitted");
        let jobs = queue.jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(format!("job-{}", jobs[0].id.0), job_id);
        match &jobs[0].spec {
            ScenarioSpec::Campaign(spec) => {
                assert_eq!(spec.frequencies, FreqSelection::List(vec![540, 1410]));
                assert!(spec.description.contains("low-confidence"));
            }
            other => panic!("expected campaign spec, got {other:?}"),
        }

        // All-confident batches submit nothing.
        let quiet = serve_batch(&model, &[(600, 900)], 0.3, Some((&queue, &template))).unwrap();
        assert!(quiet.submitted_job.is_none());
        assert_eq!(queue.jobs().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_pairs_parse_and_reject_malformed() {
        let pairs = parse_batch_pairs(r#"{"pairs": [[600, 900], [900, 600]]}"#).unwrap();
        assert_eq!(pairs, vec![(600, 900), (900, 600)]);
        assert!(parse_batch_pairs(r#"{"pairs": [[600]]}"#).is_err());
        assert!(parse_batch_pairs("not json").is_err());
    }
}
