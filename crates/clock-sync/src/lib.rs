//! IEEE 1588-style host↔device timer synchronisation.
//!
//! Phase two of the methodology requires placing the *host-side* timestamp of
//! the frequency-change call onto the *device* timeline ("the CPU and ACC
//! timers are first synchronized using the IEEE 1588 standard" — Sec. V-B,
//! and line 6 of Algorithm 2: `t_s = clock_gettime() - cpu_sync + acc_sync`).
//!
//! The transport primitive is a two-way exchange: read the host clock, obtain
//! one device timestamp somewhere inside the round trip, read the host clock
//! again. Exactly like PTP's offset estimation, the device stamp is assumed
//! to sit at the midpoint of the round trip; the half-width of the round trip
//! bounds the error. Running many exchanges and keeping the narrowest ones
//! (min-filtering, the standard PTP trick) tightens the bound to the
//! best-case transport jitter plus the device timer's ~1 µs quantisation.
//!
//! The module is transport-agnostic: anything implementing [`TimestampProbe`]
//! can be synchronised — the CUDA façade in production, synthetic probes in
//! tests (where the true offset is known and the estimate must cover it).

use latest_sim_clock::{SimDuration, SimTime};

/// One two-way timestamp exchange: `(host_before, device_stamp, host_after)`.
pub trait TimestampProbe {
    /// Perform one exchange.
    fn exchange(&mut self) -> (SimTime, SimTime, SimTime);
}

impl<F> TimestampProbe for F
where
    F: FnMut() -> (SimTime, SimTime, SimTime),
{
    fn exchange(&mut self) -> (SimTime, SimTime, SimTime) {
        self()
    }
}

/// Result of a synchronisation run: the affine map from host to device time
/// (offset only — drift over a single benchmark run is sub-microsecond and
/// absorbed by the error bound).
#[derive(Clone, Copy, Debug)]
pub struct SyncResult {
    /// Estimated `device_time - host_time` (ns).
    pub offset_ns: i64,
    /// Half-width of the best exchange plus one device-timer tick: the
    /// worst-case error of `offset_ns`.
    pub uncertainty_ns: u64,
    /// Number of exchanges performed.
    pub rounds: usize,
    /// Round-trip width of the best exchange (ns).
    pub best_round_trip_ns: u64,
}

impl SyncResult {
    /// Map a host timestamp onto the device timeline — the
    /// `clock_gettime() - cpu_sync + acc_sync` of Algorithm 2.
    pub fn host_to_device(&self, host: SimTime) -> SimTime {
        host.offset_by(self.offset_ns)
    }

    /// Map a device timestamp onto the host timeline.
    pub fn device_to_host(&self, device: SimTime) -> SimTime {
        device.offset_by(-self.offset_ns)
    }
}

/// Configuration of a synchronisation run.
#[derive(Clone, Copy, Debug)]
pub struct SyncConfig {
    /// Number of exchanges (PTP rounds). More rounds → better chance of a
    /// narrow round trip surviving the min-filter.
    pub rounds: usize,
    /// How many of the narrowest exchanges to average. Averaging a few
    /// near-minimal rounds reduces quantisation bias without readmitting
    /// wide (asymmetric) ones.
    pub keep_best: usize,
    /// The device timer's read quantisation, added to the error bound.
    pub device_resolution: SimDuration,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            rounds: 64,
            keep_best: 4,
            device_resolution: SimDuration::from_micros(1),
        }
    }
}

/// Synchronise over `probe` with the given configuration.
///
/// Panics if `config.rounds == 0`.
pub fn synchronize(probe: &mut dyn TimestampProbe, config: &SyncConfig) -> SyncResult {
    assert!(
        config.rounds > 0,
        "synchronisation needs at least one round"
    );
    let mut exchanges: Vec<(u64, i64)> = Vec::with_capacity(config.rounds);
    for _ in 0..config.rounds {
        let (before, stamp, after) = probe.exchange();
        debug_assert!(after >= before, "host clock went backwards");
        let width = after.saturating_since(before).as_nanos();
        // Midpoint assumption: device stamp corresponds to (before+after)/2.
        let midpoint_ns = (before.as_nanos() + after.as_nanos()) / 2;
        let offset = stamp.as_nanos() as i64 - midpoint_ns as i64;
        exchanges.push((width, offset));
    }
    exchanges.sort_by_key(|&(w, _)| w);
    let keep = config.keep_best.clamp(1, exchanges.len());
    let offset_ns = exchanges[..keep]
        .iter()
        .map(|&(_, o)| o as i128)
        .sum::<i128>()
        / keep as i128;
    let best_round_trip_ns = exchanges[0].0;
    SyncResult {
        offset_ns: offset_ns as i64,
        uncertainty_ns: best_round_trip_ns / 2 + config.device_resolution.as_nanos(),
        rounds: config.rounds,
        best_round_trip_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_sim_clock::{ClockView, SharedClock};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A synthetic probe over a skewed device clock with asymmetric jitter.
    struct FakeProbe {
        clock: SharedClock,
        device: ClockView,
        rng: ChaCha8Rng,
        out_us: (f64, f64),
        back_us: (f64, f64),
    }

    impl TimestampProbe for FakeProbe {
        fn exchange(&mut self) -> (SimTime, SimTime, SimTime) {
            let before = self.clock.now();
            let out: f64 = self.rng.gen_range(self.out_us.0..self.out_us.1);
            let at = self
                .clock
                .advance(SimDuration::from_nanos((out * 1e3) as u64));
            let stamp = self.device.project(at);
            let back: f64 = self.rng.gen_range(self.back_us.0..self.back_us.1);
            let after = self
                .clock
                .advance(SimDuration::from_nanos((back * 1e3) as u64));
            (before, stamp, after)
        }
    }

    fn probe_with_offset(offset_ns: i64, seed: u64) -> FakeProbe {
        let clock = SharedClock::new();
        clock.advance(SimDuration::from_millis(100));
        FakeProbe {
            device: ClockView::skewed(clock.clone(), offset_ns, 0.0, SimDuration::from_micros(1)),
            clock,
            rng: ChaCha8Rng::seed_from_u64(seed),
            out_us: (6.0, 20.0),
            back_us: (4.0, 15.0),
        }
    }

    #[test]
    fn recovers_known_offset_within_bound() {
        for &true_offset in &[0i64, 5_000_000, -3_000_000, 123_456_789] {
            let mut probe = probe_with_offset(true_offset, 11);
            let r = synchronize(&mut probe, &SyncConfig::default());
            let err = (r.offset_ns - true_offset).unsigned_abs();
            assert!(
                err <= r.uncertainty_ns,
                "offset {true_offset}: err {err} > bound {}",
                r.uncertainty_ns
            );
            // With 6-20/4-15 us legs the error must stay in the few-us range.
            assert!(err < 12_000, "err {err} ns too large");
        }
    }

    #[test]
    fn more_rounds_do_not_hurt() {
        let mut errs = Vec::new();
        for &rounds in &[1usize, 8, 64, 256] {
            let mut probe = probe_with_offset(7_777_777, 5);
            let cfg = SyncConfig {
                rounds,
                keep_best: 4.min(rounds),
                ..Default::default()
            };
            let r = synchronize(&mut probe, &cfg);
            errs.push((rounds, (r.offset_ns - 7_777_777).unsigned_abs()));
        }
        // 256 rounds must beat (or match) a single round.
        let e1 = errs[0].1;
        let e256 = errs[3].1;
        assert!(e256 <= e1, "errors: {errs:?}");
    }

    #[test]
    fn host_device_mapping_roundtrips() {
        let mut probe = probe_with_offset(42_000_000, 2);
        let r = synchronize(&mut probe, &SyncConfig::default());
        let host = SimTime::from_millis(500);
        let dev = r.host_to_device(host);
        assert_eq!(r.device_to_host(dev), host);
        let delta = dev.signed_delta_ns(host);
        assert!((delta - 42_000_000).abs() < 15_000, "delta {delta}");
    }

    #[test]
    fn uncertainty_reflects_round_trip() {
        let mut probe = probe_with_offset(0, 3);
        let r = synchronize(&mut probe, &SyncConfig::default());
        // Round trips are 10-35 us; the best should be near 10 us, so the
        // bound should be ~(best/2 + 1 us) < 20 us.
        assert!(r.uncertainty_ns < 20_000, "bound {}", r.uncertainty_ns);
        assert!(r.best_round_trip_ns >= 10_000 - 2_000);
    }

    #[test]
    #[should_panic]
    fn zero_rounds_panics() {
        let mut probe = probe_with_offset(0, 4);
        synchronize(
            &mut probe,
            &SyncConfig {
                rounds: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn closure_probe_works() {
        // The blanket impl for closures: a perfect, jitter-free transport.
        let mut t = 0u64;
        let mut probe = move || {
            t += 10_000;
            let before = SimTime::from_nanos(t);
            let stamp = SimTime::from_nanos(t + 5_000 + 1_000_000); // +1 ms offset
            let after = SimTime::from_nanos(t + 10_000);
            (before, stamp, after)
        };
        let r = synchronize(
            &mut probe,
            &SyncConfig {
                rounds: 8,
                keep_best: 2,
                device_resolution: SimDuration::ZERO,
            },
        );
        assert_eq!(r.offset_ns, 1_000_000);
    }
}
