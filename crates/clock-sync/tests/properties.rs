//! Property-based tests for the IEEE 1588 synchroniser: for *any* true
//! offset, transport delay and jitter, the estimate must cover the truth
//! within its self-reported uncertainty.

use latest_clock_sync::{synchronize, SyncConfig, SyncResult, TimestampProbe};
use latest_sim_clock::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A synthetic transport: symmetric base delay with bounded jitter on each
/// leg, device clock at a fixed known offset, quantised reads.
struct SyntheticProbe {
    now_ns: u64,
    true_offset_ns: i64,
    base_delay_ns: u64,
    jitter_ns: u64,
    resolution_ns: u64,
    rng: ChaCha8Rng,
}

impl TimestampProbe for SyntheticProbe {
    fn exchange(&mut self) -> (SimTime, SimTime, SimTime) {
        let leg1 = self.base_delay_ns + self.rng.gen_range(0..=self.jitter_ns);
        let leg2 = self.base_delay_ns + self.rng.gen_range(0..=self.jitter_ns);
        let before = SimTime::from_nanos(self.now_ns);
        let stamp_global = self.now_ns + leg1;
        let device_raw = (stamp_global as i64 + self.true_offset_ns) as u64;
        let stamp = SimTime::from_nanos(device_raw - device_raw % self.resolution_ns);
        let after = SimTime::from_nanos(stamp_global + leg2);
        self.now_ns = stamp_global + leg2 + 10_000; // pause between rounds
        (before, stamp, after)
    }
}

fn run_sync(
    true_offset_ns: i64,
    base_delay_ns: u64,
    jitter_ns: u64,
    resolution_ns: u64,
    seed: u64,
    rounds: usize,
) -> SyncResult {
    let mut probe = SyntheticProbe {
        now_ns: 1_000_000_000,
        true_offset_ns,
        base_delay_ns,
        jitter_ns,
        resolution_ns,
        rng: ChaCha8Rng::seed_from_u64(seed),
    };
    let config = SyncConfig {
        rounds,
        keep_best: 4,
        device_resolution: SimDuration::from_nanos(resolution_ns),
    };
    synchronize(&mut probe, &config)
}

proptest! {
    #[test]
    fn estimate_covers_truth_within_reported_uncertainty(
        true_offset_ns in -1_000_000_000i64..1_000_000_000,
        base_delay_ns in 100u64..50_000,
        jitter_ns in 0u64..20_000,
        resolution_ns in 1u64..2_000,
        seed in 0u64..500,
    ) {
        let r = run_sync(true_offset_ns, base_delay_ns, jitter_ns, resolution_ns, seed, 64);
        let err = (r.offset_ns - true_offset_ns).unsigned_abs();
        // The quantised device stamp can sit a full resolution below the
        // true time; allow it on top of the reported uncertainty.
        prop_assert!(
            err <= r.uncertainty_ns + resolution_ns,
            "err {err} ns vs uncertainty {} (+res {resolution_ns})",
            r.uncertainty_ns
        );
    }

    #[test]
    fn uncertainty_reflects_transport_width(
        base_delay_ns in 100u64..20_000,
        jitter_ns in 0u64..5_000,
        seed in 0u64..200,
    ) {
        let r = run_sync(0, base_delay_ns, jitter_ns, 1_000, seed, 64);
        // Best round trip is at least two base legs, and the uncertainty is
        // at least its half-width.
        prop_assert!(r.best_round_trip_ns >= 2 * base_delay_ns);
        prop_assert!(r.uncertainty_ns >= r.best_round_trip_ns / 2);
        prop_assert_eq!(r.rounds, 64);
    }

    #[test]
    fn more_rounds_never_hurt_much(
        true_offset_ns in -1_000_000i64..1_000_000,
        seed in 0u64..100,
    ) {
        // Min-filtering: with more rounds the kept exchanges can only get
        // narrower, so the uncertainty must be non-increasing.
        let few = run_sync(true_offset_ns, 5_000, 10_000, 1_000, seed, 8);
        let many = run_sync(true_offset_ns, 5_000, 10_000, 1_000, seed, 128);
        prop_assert!(many.uncertainty_ns <= few.uncertainty_ns);
    }

    #[test]
    fn mapping_round_trips(host_ns in 1_000_000u64..u64::MAX / 4, offset in -1_000_000i64..1_000_000) {
        let r = SyncResult {
            offset_ns: offset,
            uncertainty_ns: 0,
            rounds: 1,
            best_round_trip_ns: 0,
        };
        let host = SimTime::from_nanos(host_ns);
        prop_assert_eq!(r.device_to_host(r.host_to_device(host)), host);
    }
}
